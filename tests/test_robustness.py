"""Robustness fuzzing: hostile inputs must fail with the library's own
typed errors, never with stray exceptions.

A tool meant to sit in a compiler workflow gets fed malformed programs
and truncated packets constantly; `ReproError` subclasses are its error
contract.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.exceptions import ReproError
from repro.p4.dsl import parse_program
from repro.sim import BehavioralSwitch
from tests.conftest import build_toy_program, toy_config


class TestDslParserTotality:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=200))
    @example("table t {")
    @example("header_type h_t { fields { f : 0; } }")
    @example("action a() { modify_field(x, ); }")
    @example("// only a comment")
    @example("")
    def test_arbitrary_text_never_crashes(self, source):
        try:
            parse_program(source, "fuzz")
        except ReproError:
            pass  # DslSyntaxError / P4ValidationError / P4SemanticsError

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=120))
    def test_binary_garbage_never_crashes(self, blob):
        try:
            parse_program(blob.decode("latin-1"), "fuzz")
        except ReproError:
            pass


class TestSimulatorTotality:
    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=120))
    @example(b"")
    @example(b"\x00" * 14)
    @example(b"\xff" * 64)
    def test_arbitrary_bytes_never_crash(self, data):
        switch = BehavioralSwitch(build_toy_program(), toy_config())
        try:
            result = switch.process(data)
        except ReproError:
            return  # SimulationError on truncated packets is the contract
        # Successfully parsed garbage must still produce a coherent result.
        assert isinstance(result.egress_port, int)
        assert isinstance(result.output_bytes, bytes)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.binary(min_size=34, max_size=80), min_size=1,
                 max_size=10)
    )
    def test_state_survives_malformed_packets(self, blobs):
        """A truncated packet mid-trace must not corrupt the switch: later
        well-formed packets still process normally."""
        from repro.packets.craft import udp_packet

        switch = BehavioralSwitch(build_toy_program(), toy_config())
        for blob in blobs:
            try:
                switch.process(blob)
            except ReproError:
                pass
        result = switch.process(udp_packet("1.1.1.1", "10.0.0.9", 5, 53))
        assert result.dropped  # the ACL still fires


class TestConfigTotality:
    @settings(max_examples=100, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(["fib", "acl", "ghost"]),
            st.lists(
                st.tuples(
                    st.integers(-5, 1 << 20),
                    st.sampled_from(["fwd", "deny", "nope"]),
                ),
                max_size=3,
            ),
            max_size=3,
        )
    )
    def test_config_validation_total(self, raw):
        from repro.sim import RuntimeConfig

        program = build_toy_program()
        config = RuntimeConfig()
        for table, entries in raw.items():
            for value, action in entries:
                config.add_entry(table, [value], action, [])
        try:
            config.validate(program)
        except ReproError:
            pass
