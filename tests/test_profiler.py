"""Tests for phase 1 — profile construction (§3.1, Ex. 1 annotations,
Table 1)."""

import pytest

from repro.core.profiler import Profiler, profile_program
from repro.packets.craft import udp_packet
from tests.conftest import TRACE_SIZE, build_toy_program, toy_config


class TestToyProfile:
    @pytest.fixture(scope="class")
    def profile(self):
        trace = [
            udp_packet("1.1.1.1", "10.0.0.9", 5, 53),   # fib hit, acl hit
            udp_packet("1.1.1.1", "10.0.0.9", 5, 80),   # fib hit, acl miss
            udp_packet("1.1.1.1", "99.0.0.9", 5, 53),   # default route
            udp_packet("1.1.1.1", "99.0.0.9", 5, 80),
        ]
        return profile_program(build_toy_program(), toy_config(), trace)

    def test_totals(self, profile):
        assert profile.total_packets == 4

    def test_hit_rates(self, profile):
        assert profile.hit_rate("fib") == 1.0
        assert profile.hit_rate("acl") == 0.5

    def test_apply_vs_hit(self, profile):
        assert profile.apply_rate("acl") == 1.0

    def test_action_counts(self, profile):
        assert profile.action_counts[("acl", "deny")] == 2
        assert profile.action_counts[("fib", "fwd")] == 4

    def test_nonexclusive_sets_observed(self, profile):
        assert any(
            {("fib", "fwd"), ("acl", "deny")} <= group
            for group in profile.nonexclusive_sets
        )

    def test_actions_coapplied(self, profile):
        assert profile.actions_coapplied(("fib", "fwd"), ("acl", "deny"))

    def test_action_coapplied_with_table(self, profile):
        assert profile.action_coapplied_with_table(("fib", "fwd"), "acl")

    def test_unknown_table_rates_are_zero(self, profile):
        assert profile.hit_rate("ghost") == 0.0
        assert profile.apply_rate("ghost") == 0.0
        assert profile.traversal_rate(["ghost"]) == 0.0

    def test_apply_sets_partition_the_trace(self, profile):
        # Every packet lands in exactly one applied-table set.
        assert sum(profile.apply_sets.values()) == profile.total_packets
        assert profile.apply_sets[frozenset({"fib", "acl"})] == 4

    def test_traversal_rate_is_union_over_packets(self, profile):
        assert profile.traversal_rate(["fib"]) == 1.0
        assert profile.traversal_rate(["acl"]) == 1.0
        # Union, not sum: every packet traverses both tables once.
        assert profile.traversal_rate(["fib", "acl"]) == 1.0
        assert profile.traversal_rate([]) == 0.0


class TestFirewallProfile:
    """Ex. 1's annotated hit rates, §2.2 / Table 1."""

    def test_ipv4_hit_rate_is_total(self, firewall_profile):
        assert firewall_profile.hit_rate("IPv4") == 1.0

    def test_acl_udp_hit_rate(self, firewall_profile):
        assert firewall_profile.hit_rate("ACL_UDP") == pytest.approx(
            0.08, abs=0.005
        )

    def test_acl_dhcp_hit_rate(self, firewall_profile):
        assert firewall_profile.hit_rate("ACL_DHCP") == pytest.approx(
            0.14, abs=0.005
        )

    def test_sketch_rates_low(self, firewall_profile):
        for table in ("Sketch_1", "Sketch_2", "Sketch_Min"):
            assert 0 < firewall_profile.hit_rate(table) < 0.06

    def test_dns_drop_rarest(self, firewall_profile):
        dd = firewall_profile.hit_rate("DNS_Drop")
        assert 0 < dd < firewall_profile.hit_rate("Sketch_1")

    def test_sketch_tables_identical_rates(self, firewall_profile):
        assert firewall_profile.hit_counts["Sketch_1"] == (
            firewall_profile.hit_counts["Sketch_2"]
        )

    def test_table1_sets_present(self, firewall_profile):
        """The paper's Table 1, by table membership of hit-action sets."""
        table_sets = {
            frozenset(pair[0] for pair in group)
            for group in firewall_profile.hit_action_sets()
        }
        assert frozenset({"IPv4", "ACL_UDP"}) in table_sets
        assert frozenset({"IPv4", "ACL_DHCP"}) in table_sets
        assert (
            frozenset({"IPv4", "Sketch_1", "Sketch_2", "Sketch_Min"})
            in table_sets
        )
        assert (
            frozenset(
                {"IPv4", "Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop"}
            )
            in table_sets
        )

    def test_acl_actions_never_coapplied(self, firewall_profile):
        """The paper's key phase-2 observation: the two ACL drop actions
        never fire on the same packet."""
        assert not firewall_profile.actions_coapplied(
            ("ACL_UDP", "acl_udp_drop"), ("ACL_DHCP", "acl_dhcp_drop")
        )

    def test_ipv4_and_acl_udp_do_coapply(self, firewall_profile):
        assert firewall_profile.actions_coapplied(
            ("IPv4", "ipv4_forward"), ("ACL_UDP", "acl_udp_drop")
        )

    def test_decisions_recorded_per_packet(self, firewall_profile):
        assert len(firewall_profile.decisions) == TRACE_SIZE


class TestProfileComparison:
    def test_profile_equals_itself_across_runs(
        self, firewall_program, firewall_config, firewall_trace
    ):
        """Profiling is deterministic: two runs produce identical
        profiles (the foundation of §3.3's verification)."""
        p1 = Profiler(firewall_program, firewall_config).profile(
            firewall_trace
        )
        p2 = Profiler(firewall_program, firewall_config).profile(
            firewall_trace
        )
        assert p1.same_behavior_as(p2)
        assert p1.behavior_diff(p2) == []

    def test_behavior_diff_reports_hit_changes(self):
        trace_a = [udp_packet("1.1.1.1", "10.0.0.9", 5, 53)]
        trace_b = [udp_packet("1.1.1.1", "10.0.0.9", 5, 80)]
        program, config = build_toy_program(), toy_config()
        pa = profile_program(program, config, trace_a)
        pb = profile_program(program, config, trace_b)
        assert not pa.same_behavior_as(pb)
        reasons = pa.behavior_diff(pb)
        assert any("acl" in r for r in reasons)
