"""The exec-compiled whole-pipeline fast path (repro/sim/fastpath.py).

Pins the specializer's contract (DESIGN.md §12):

* For every bundled program — stateless, stateful, and controller-heavy
  alike — the fast path's per-packet :class:`SwitchResult` stream and
  controller queue are bit-identical to the uncached reference
  interpreter's (the relaxation being *value* identity: hit results of
  one flow share their header dicts).
* The columnar batch sweep (``process_many``) matches scalar
  ``process`` calls packet for packet.
* Closure lifecycle: stateful flows never get closures; closures
  survive conservative register flushes but are dropped by
  ``reset_state`` and by config mutations; the install budget honours
  ``flow_cache_capacity``.
* Knob resolution (``enable_fastpath`` / ``$P2GO_FASTPATH``),
  :func:`can_specialize` refusals and the cached-engine fallback.
* Flow-sharded profiling (``Profiler.profile_trace(workers=N)``) and
  the ``P2GO(fastpath=)`` knob change speed only, never results.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pipeline import P2GO
from repro.core.profiler import Profiler
from repro.core.report import render_report
from repro.p4.dsl import print_program
from repro.programs import (
    cgnat,
    ddos_mitigation,
    enterprise,
    example_firewall,
    failure_detection,
    load_balancer,
    nat_gre,
    sourceguard,
    telemetry,
)
from repro.sim import BehavioralSwitch
from repro.sim.fastpath import (
    FASTPATH_ENV,
    can_specialize,
    compile_key_of,
    resolve_fastpath,
    shard_trace_by_flow,
)
from repro.traffic.generators import dns_stream, udp_background

PROGRAM_MODULES = {
    "cgnat": cgnat,
    "ddos_mitigation": ddos_mitigation,
    "enterprise": enterprise,
    "example_firewall": example_firewall,
    "failure_detection": failure_detection,
    "load_balancer": load_balancer,
    "nat_gre": nat_gre,
    "sourceguard": sourceguard,
    "telemetry": telemetry,
}


def _fresh_config(module, program):
    try:
        return module.runtime_config(program)
    except TypeError:
        return module.runtime_config()


def _config(module, program, fastpath):
    config = _fresh_config(module, program)
    config.enable_fastpath = fastpath
    return config


def _reference_config(module, program):
    config = _fresh_config(module, program)
    config.enable_flow_cache = False
    config.enable_compiled_tables = False
    config.enable_fastpath = False
    return config


def _fingerprint(result):
    return (
        result.output_bytes,
        result.headers,
        sorted(result.valid),
        result.steps,
        result.forwarding_decision(),
        result.controller_reason,
    )


def _firewall_switch(**overrides):
    program = example_firewall.build_program()
    config = example_firewall.runtime_config()
    config.enable_fastpath = True
    for name, value in overrides.items():
        setattr(config, name, value)
    return BehavioralSwitch(program, config), config


# ----------------------------------------------------------------------
# Bit-identity: fast path vs the uncached reference interpreter.


@pytest.mark.parametrize("name", sorted(PROGRAM_MODULES))
def test_fastpath_bit_identical_to_reference(name):
    module = PROGRAM_MODULES[name]
    program = module.build_program()
    trace = module.make_trace(800)

    fast = BehavioralSwitch(program, _config(module, program, True))
    reference = BehavioralSwitch(
        program, _reference_config(module, program)
    )
    fast_results = fast.process_many(trace)
    reference_results = reference.process_many(trace)

    assert fast._fastpath is not None, fast.fastpath_reason
    assert len(fast_results) == len(reference_results)
    for got, want in zip(fast_results, reference_results):
        assert _fingerprint(got) == _fingerprint(want)
    assert fast.controller_queue == reference.controller_queue


def test_columnar_batch_matches_scalar_processing():
    program = example_firewall.build_program()
    trace = example_firewall.make_trace(600)

    batched, _ = _firewall_switch()
    scalar, _ = _firewall_switch()
    batch_results = batched.process_many(trace)
    scalar_results = [
        scalar.process(*(p if isinstance(p, tuple) else (p,)))
        for p in trace
    ]

    for got, want in zip(batch_results, scalar_results):
        assert _fingerprint(got) == _fingerprint(want)
    assert batched.controller_queue == scalar.controller_queue


def test_writes_to_unextracted_headers_survive_closure_replay():
    """Fuzz find (seed 29): an action writing a field of a header that
    is *invalid* on the taken parse path must still materialize that
    header's field dict on ``result.headers`` (the interpreter creates
    it in the PHV; the header stays invalid and is never deparsed).
    The compiled closure used to drop such writes entirely."""
    from repro.p4 import (
        Apply,
        FieldRef,
        ModifyField,
        ParamRef,
        ProgramBuilder,
        Seq,
    )
    from repro.sim.runtime import RuntimeConfig

    b = ProgramBuilder("ghost_write")
    b.header_type("h0_t", [("nxt", 8), ("f0", 32)])
    b.header("h0", "h0_t")
    b.header_type("h2_t", [("f0", 16)])
    b.header("h2", "h2_t")
    b.parser_state(
        "start", extracts=["h0"], select="h0.nxt",
        transitions={20: "parse_h2"},
    )
    b.parser_state("parse_h2", extracts=["h2"])
    b.parser_start("start")
    b.action(
        "ghost",
        [ModifyField(FieldRef("h2", "f0"), ParamRef("value"))],
        parameters=["value"],
    )
    b.table(
        "t0",
        keys=[(FieldRef("h0", "f0"), "exact")],
        actions=["ghost"],
        default_action="ghost",
        default_action_args=(49,),
        size=16,
    )
    b.ingress(Seq([Apply("t0")]))
    program = b.build()

    # Two packets of one flow (same key bytes, h0.nxt != 20 so h2 is
    # never extracted) with different payload lengths: the first misses
    # and installs the closure, the second replays through it.
    head = bytes([0xFF]) + (0x11223344).to_bytes(4, "big")
    trace = [head, head + b"\xaa\xbb"]

    fast_config = RuntimeConfig()
    fast_config.enable_fastpath = True
    reference_config = RuntimeConfig()
    reference_config.enable_flow_cache = False
    reference_config.enable_compiled_tables = False
    reference_config.enable_fastpath = False

    fast = BehavioralSwitch(program, fast_config)
    reference = BehavioralSwitch(program, reference_config)
    fast_results = fast.process_many(trace)
    reference_results = reference.process_many(trace)

    for got, want in zip(fast_results, reference_results):
        assert _fingerprint(got) == _fingerprint(want)
        assert got.headers["h2"] == {"f0": 49}
        assert "h2" not in got.valid
        # The invalid header is never deparsed: bytes pass through.
    assert [r.output_bytes for r in fast_results] == trace


def test_engine_specializes_and_installs_closures():
    switch, _ = _firewall_switch()
    switch.process_many(example_firewall.make_stateless_trace(400, flows=8))

    stats = switch._fastpath.stats()
    assert stats["specialized"] is True
    assert stats["leaves"] > 0
    assert stats["closures"] > 0
    assert stats["specialize_seconds"] > 0.0
    assert switch.perf.cache_hits > 0


# ----------------------------------------------------------------------
# Closure lifecycle.


def test_stateful_flows_never_get_closures():
    """Register-touching traversals have no flow verdict to compile, so
    the fast path serves none of them — yet the drops stay exact."""
    program = example_firewall.build_program()
    src = example_firewall.HEAVY_DNS_SRC
    dst = example_firewall.HEAVY_DNS_DST
    trace = dns_stream(src, dst, example_firewall.DNS_QUERY_THRESHOLD + 40)

    config = example_firewall.runtime_config()
    config.enable_fastpath = True
    switch = BehavioralSwitch(program, config)
    results = switch.process_many(trace)

    assert switch._fastpath.closures == 0
    assert switch.perf.cache_hits == 0
    assert not results[0].dropped
    assert results[-1].dropped


def test_closures_survive_conservative_register_flush():
    """The deliberate divergence from the cached engine
    (``test_profiling_engine.test_stateful_traversal_flushes_cached_
    verdicts``): a closure is a pure function of the flow key on a
    register-free traversal, so a conservative mid-run flush need not
    drop it — the packet after the flush is still a fast-path hit."""
    switch, _ = _firewall_switch()
    rng = random.Random(3)
    stateless = udp_background(1, rng, dst_ports=(4000,))[0]
    dns = dns_stream(0x0A000001, 0xC0A80001, 1)[0]

    switch.process(stateless)
    switch.process(stateless)
    assert switch.perf.cache_hits == 1

    switch.process(dns)  # flushes the flow cache…
    assert switch.perf.cache_invalidations == 1

    switch.process(stateless)  # …but the closure still answers
    assert switch.perf.cache_hits == 2
    assert switch.perf.cache_misses == 2


def test_reset_state_drops_closures():
    switch, _ = _firewall_switch()
    trace = example_firewall.make_stateless_trace(100, flows=8)
    switch.process_many(trace)
    assert switch._fastpath.closures > 0

    switch.reset_state()
    assert switch._fastpath.closures == 0
    assert switch.perf.packets == 0

    first = trace[0] if isinstance(trace[0], bytes) else trace[0][0]
    switch.process(first)
    assert switch.perf.cache_hits == 0
    assert switch.perf.cache_misses == 1


def test_config_mutation_invalidates_closures():
    switch, config = _firewall_switch()
    rng = random.Random(5)
    packet = udp_background(1, rng, dst_ports=(4000,))[0]

    assert not switch.process(packet).dropped
    switch.process(packet)
    assert switch.perf.cache_hits == 1  # served by a closure

    config.add_entry("ACL_UDP", [4000], "acl_udp_drop")
    assert switch.process(packet).dropped  # stale closure would forward


def test_closure_budget_honours_flow_cache_capacity():
    switch, _ = _firewall_switch(flow_cache_capacity=4)
    switch.process_many(example_firewall.make_stateless_trace(400, flows=64))
    assert 0 < switch._fastpath.closures <= 4


# ----------------------------------------------------------------------
# Knob resolution, eligibility, fallback.


def test_resolve_fastpath_explicit_beats_environment(monkeypatch):
    monkeypatch.setenv(FASTPATH_ENV, "on")
    assert resolve_fastpath(False) is False
    assert resolve_fastpath(True) is True
    assert resolve_fastpath(None) is True
    monkeypatch.setenv(FASTPATH_ENV, "0")
    assert resolve_fastpath(None) is False
    monkeypatch.delenv(FASTPATH_ENV)
    assert resolve_fastpath(None) is False
    for spelling in ("1", "true", "YES", " On "):
        monkeypatch.setenv(FASTPATH_ENV, spelling)
        assert resolve_fastpath(None) is True


def test_can_specialize_requires_parser_and_flow_cache():
    program = example_firewall.build_program()
    config = example_firewall.runtime_config()
    assert can_specialize(program, config) is None

    config.enable_flow_cache = False
    assert "flow cache" in can_specialize(program, config)

    config = example_firewall.runtime_config()
    program.parser = None
    assert "parser" in can_specialize(program, config)


def test_refused_program_falls_back_to_cached_engine():
    """``enable_fastpath=True`` on an ineligible config must degrade to
    the cached engine, not fail — with the reason recorded."""
    switch, _ = _firewall_switch(enable_flow_cache=False)
    assert switch._fastpath is None
    assert "flow cache" in switch.fastpath_reason

    program = example_firewall.build_program()
    trace = example_firewall.make_stateless_trace(100, flows=4)
    reference = BehavioralSwitch(
        program, _reference_config(example_firewall, program)
    )
    for got, want in zip(
        switch.process_many(trace), reference.process_many(trace)
    ):
        assert _fingerprint(got) == _fingerprint(want)


def test_fastpath_off_by_default(monkeypatch):
    # Must hold on the CI leg that exports $P2GO_FASTPATH=on: the test
    # pins the *default* (no knob, no env), so clear the environment.
    monkeypatch.delenv(FASTPATH_ENV, raising=False)
    program = example_firewall.build_program()
    switch = BehavioralSwitch(program, example_firewall.runtime_config())
    assert switch._fastpath is None
    assert switch.fastpath_reason == "disabled"


# ----------------------------------------------------------------------
# Flow sharding + parallel profiling.


def test_shard_trace_by_flow_partitions_whole_flows():
    program = nat_gre.build_program()
    packets = nat_gre.make_trace(500)
    shards = shard_trace_by_flow(program, packets, 4)

    assert shards is not None
    flat = sorted(i for shard in shards for i in shard)
    assert flat == list(range(len(packets)))  # a true partition

    key_of = compile_key_of(program)
    owner = {}
    for shard_id, indices in enumerate(shards):
        for i in indices:
            entry = packets[i]
            data, port = entry if isinstance(entry, tuple) else (entry, 0)
            key = key_of(data, port)
            assert owner.setdefault(key, shard_id) == shard_id, (
                "flow split across shards"
            )


def test_sharded_profile_identical_to_serial():
    program = nat_gre.build_program()
    trace = nat_gre.make_trace(600)
    serial, _ = Profiler(program, nat_gre.runtime_config()).profile_trace(
        trace
    )
    sharded, perf = Profiler(
        program, nat_gre.runtime_config()
    ).profile_trace(trace, workers=3)

    assert serial.same_behavior_as(sharded), serial.behavior_diff(sharded)
    assert serial.decisions == sharded.decisions
    assert serial._hit_pairs == sharded._hit_pairs
    # apply_sets is deliberately outside same_behavior_as (it feeds the
    # drift detector's traversal union, not the optimizer) — pin the
    # shard merge explicitly.
    assert serial.apply_sets == sharded.apply_sets
    assert perf.packets == len(trace)


def test_sharded_profile_falls_back_for_stateful_programs():
    """Registers make cross-flow order observable, so the firewall must
    take the serial path (and still produce the serial profile)."""
    program = example_firewall.build_program()
    trace = example_firewall.make_trace(500)
    serial, _ = Profiler(
        program, example_firewall.runtime_config()
    ).profile_trace(trace)
    sharded, _ = Profiler(
        program, example_firewall.runtime_config()
    ).profile_trace(trace, workers=4)
    assert serial.same_behavior_as(sharded)


# ----------------------------------------------------------------------
# Pipeline + report integration.


def test_p2go_fastpath_knob_changes_speed_only(monkeypatch):
    monkeypatch.delenv(FASTPATH_ENV, raising=False)
    program = example_firewall.build_program()
    trace = example_firewall.make_trace(400)

    on = P2GO(
        program,
        example_firewall.runtime_config(),
        trace,
        example_firewall.TARGET,
        phases=(2,),
        fastpath=True,
    ).run()
    off = P2GO(
        program,
        example_firewall.runtime_config(),
        trace,
        example_firewall.TARGET,
        phases=(2,),
        fastpath=False,
    ).run()

    assert on.fastpath is True and on.fastpath_reason is None
    assert off.fastpath is False and off.fastpath_reason == "disabled"
    assert print_program(on.optimized_program) == print_program(
        off.optimized_program
    )
    assert on.initial_profile.same_behavior_as(off.initial_profile)
    assert "fast path:            engaged" in render_report(on)
    assert "fast path:" not in render_report(off)


def test_p2go_fastpath_defers_to_environment(monkeypatch):
    monkeypatch.setenv(FASTPATH_ENV, "on")
    program = example_firewall.build_program()
    result = P2GO(
        program,
        example_firewall.runtime_config(),
        example_firewall.make_trace(300),
        example_firewall.TARGET,
        phases=(2,),
    ).run()
    assert result.fastpath is True
