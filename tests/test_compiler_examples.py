"""The compiler's answers on the four evaluation programs.

These are the "before" columns of the paper's Tables 2 and 3 — the stage
counts everything downstream is measured against.
"""

import pytest

from repro.programs import (
    example_firewall,
    failure_detection,
    nat_gre,
    sourceguard,
)
from repro.target import compile_program


class TestExampleFirewall:
    """Ex. 1 / Table 2 row 1: 8 stages, FIB spanning two."""

    @pytest.fixture(scope="class")
    def result(self, firewall_program):
        return compile_program(firewall_program, example_firewall.TARGET)

    def test_eight_stages(self, result):
        assert result.stages_used == 8

    def test_fits_target(self, result):
        assert result.fits

    def test_fib_spans_first_two_stages(self, result):
        stage_map = result.stage_map()
        assert stage_map[0] == ["IPv4"]
        assert stage_map[1] == ["IPv4"]

    def test_table_order_matches_paper(self, result):
        stage_map = result.stage_map()
        order = [tables[0] for tables in stage_map[1:]]
        assert order == [
            "IPv4", "ACL_UDP", "ACL_DHCP",
            "Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop",
        ]

    def test_sketch_rows_in_separate_stages(self, result):
        """§2.1: the two arrays' cumulative size exceeds one stage."""
        placements = result.allocation.placements
        assert (
            placements["Sketch_1"].first_stage
            != placements["Sketch_2"].first_stage
        )

    def test_summary_renders(self, result):
        text = result.summary()
        assert "stages used: 8" in text
        assert "fits" in text


class TestNatGre:
    def test_four_stages(self):
        result = compile_program(nat_gre.build_program(), nat_gre.TARGET)
        assert result.stages_used == 4


class TestSourceguard:
    def test_five_stages(self):
        result = compile_program(
            sourceguard.build_program(), sourceguard.TARGET
        )
        assert result.stages_used == 5

    def test_bloom_arrays_fill_own_stages(self):
        result = compile_program(
            sourceguard.build_program(), sourceguard.TARGET
        )
        placements = result.allocation.placements
        assert (
            placements["sg_bf1"].first_stage
            != placements["sg_bf2"].first_stage
        )


class TestFailureDetection:
    def test_four_stages(self):
        result = compile_program(
            failure_detection.build_program(), failure_detection.TARGET
        )
        assert result.stages_used == 4

    def test_alarm_last(self):
        result = compile_program(
            failure_detection.build_program(), failure_detection.TARGET
        )
        assert result.stage_map()[3] == ["FailureAlarm"]
