"""The fleet coordinator / run-orchestration layer (ISSUE 8).

Pins the fleet contract of :mod:`repro.core.fleet`: per-switch results
canonically identical to N independent ``P2GO.run()`` invocations for
any coordinator worker count, deterministic merge in submission order,
cross-switch probe reuse through the one shared store (>0 on a cold
fabric whose families repeat), and a warm second fleet that executes
nothing at all.
"""

import pytest

from repro.core.fleet import (
    DEFAULT_FAMILIES,
    FleetResult,
    build_fabric,
    run_fleet,
    switch_fingerprint,
)
from repro.core.pipeline import P2GO
from repro.core.report import render_fleet_report
from repro.core.session import trace_fingerprint

#: Small per-switch traces: the fabric below runs ~15 pipeline phases.
PACKETS = 160

#: 6 switches over the 4 default families: enterprise and nat_gre each
#: appear twice, which is what cold cross-switch reuse needs.
FABRIC_SIZE = 6


@pytest.fixture(scope="module")
def fabric():
    return build_fabric(FABRIC_SIZE, seed=5, packets=PACKETS)


@pytest.fixture(scope="module")
def independent(fabric):
    """The baseline: each switch as its own storeless P2GO run."""
    return [
        P2GO(
            spec.program,
            spec.config,
            spec.trace,
            spec.target,
            store=False,
        ).run()
        for spec in fabric
    ]


@pytest.fixture(scope="module")
def fleet_parallel(fabric, tmp_path_factory):
    """One cold fleet over a shared store on a 3-worker process pool."""
    root = tmp_path_factory.mktemp("fleet") / "store"
    return run_fleet(fabric, store=root, workers=3)


class TestBuildFabric:
    def test_rejects_empty_fabric(self):
        with pytest.raises(ValueError):
            build_fabric(0)

    def test_rejects_no_families(self):
        with pytest.raises(ValueError):
            build_fabric(4, families=())

    def test_cycles_families_in_order(self, fabric):
        names = [spec.name for spec in fabric]
        assert names == [
            f"sw{i:02d}-{DEFAULT_FAMILIES[i % len(DEFAULT_FAMILIES)]}"
            for i in range(FABRIC_SIZE)
        ]

    def test_same_family_switches_share_program_not_trace(self, fabric):
        first, second = fabric[0], fabric[4]  # both enterprise
        assert first.program.name == second.program.name
        assert trace_fingerprint(first.trace) != trace_fingerprint(
            second.trace
        )

    def test_fabric_is_seed_deterministic(self, fabric):
        again = build_fabric(FABRIC_SIZE, seed=5, packets=PACKETS)
        assert [trace_fingerprint(s.trace) for s in again] == [
            trace_fingerprint(s.trace) for s in fabric
        ]


class TestEquivalence:
    """Sharing changes who pays for a probe, never the outcome."""

    def test_parallel_fleet_matches_independent_runs(
        self, fleet_parallel, independent
    ):
        assert [
            switch_fingerprint(s.result) for s in fleet_parallel.switches
        ] == [switch_fingerprint(r) for r in independent]

    def test_profiles_match_independent_runs(
        self, fleet_parallel, independent
    ):
        for switch, baseline in zip(fleet_parallel.switches, independent):
            assert switch.result.initial_profile.same_behavior_as(
                baseline.initial_profile
            )

    def test_serial_fleet_matches_parallel_fleet(
        self, fabric, fleet_parallel, tmp_path
    ):
        serial = run_fleet(fabric, store=tmp_path / "store", workers=1)
        assert [
            switch_fingerprint(s.result) for s in serial.switches
        ] == [
            switch_fingerprint(s.result) for s in fleet_parallel.switches
        ]

    def test_results_merge_in_submission_order(
        self, fabric, fleet_parallel
    ):
        assert [s.name for s in fleet_parallel.switches] == [
            spec.name for spec in fabric
        ]


class TestSharedStoreReuse:
    def test_cold_fleet_reuses_probes_across_switches(
        self, fleet_parallel
    ):
        agg = fleet_parallel.aggregate()
        assert agg["probe_disk_hits"] > 0
        assert agg["disk_reuse_rate"] > 0
        # Reuse means the fabric executed strictly fewer probes than it
        # asked for, over and above what each switch's own memo caught.
        assert agg["probe_executions"] < agg["probe_calls"]

    def test_leases_resolve_as_hits_not_duplicates(self, fleet_parallel):
        agg = fleet_parallel.aggregate()
        assert agg["lease_claims"] == agg["probe_executions"]
        assert agg["lease_wait_hits"] == agg["lease_waits"]
        assert agg["leases_reaped"] == 0

    def test_warm_second_fleet_executes_nothing(
        self, fabric, fleet_parallel
    ):
        warm = run_fleet(
            fabric, store=fleet_parallel.store_root, workers=3
        )
        agg = warm.aggregate()
        assert agg["probe_executions"] == 0
        assert agg["probe_disk_hits"] > 0
        assert [
            switch_fingerprint(s.result) for s in warm.switches
        ] == [
            switch_fingerprint(s.result) for s in fleet_parallel.switches
        ]

    def test_storeless_fleet_has_no_reuse_and_no_leases(self, fabric):
        fleet = run_fleet(fabric[:2], store=False, workers=1)
        assert fleet.store_root is None
        assert fleet.lease_probes is False
        agg = fleet.aggregate()
        assert agg["probe_disk_hits"] == 0
        assert agg["lease_claims"] == 0
        assert all(
            s.result.store_stats is None for s in fleet.switches
        )


class TestAggregateAndReport:
    def test_aggregate_totals_are_sums(self, fleet_parallel):
        agg = fleet_parallel.aggregate()
        assert agg["switches"] == FABRIC_SIZE
        assert agg["stages_before"] == sum(
            s.result.stages_before for s in fleet_parallel.switches
        )
        assert agg["stages_after"] == sum(
            s.result.stages_after for s in fleet_parallel.switches
        )
        assert agg["stages_reclaimed"] == (
            agg["stages_before"] - agg["stages_after"]
        )
        assert agg["stages_reclaimed"] > 0

    def test_aggregate_is_cached(self, fleet_parallel):
        assert fleet_parallel.aggregate() is fleet_parallel.aggregate()

    def test_report_names_every_switch(self, fleet_parallel):
        report = render_fleet_report(fleet_parallel)
        for switch in fleet_parallel.switches:
            assert switch.name in report
        assert "stages reclaimed:" in report
        assert "cross-switch reuse" in report
        assert "leases:" in report
        assert str(fleet_parallel.store_root) in report

    def test_storeless_report_omits_store_lines(self, fabric):
        fleet = run_fleet(fabric[:1], store=False, workers=1)
        report = render_fleet_report(fleet)
        assert "leases:" not in report
        assert "shared store:" not in report

    def test_fleet_result_round_trips_aggregate_to_json(
        self, fleet_parallel
    ):
        import json

        payload = json.dumps(fleet_parallel.aggregate())
        assert json.loads(payload)["switches"] == FABRIC_SIZE


class TestFleetResultShape:
    def test_wall_clock_and_per_switch_seconds(self, fleet_parallel):
        assert fleet_parallel.wall_seconds > 0
        assert all(s.seconds > 0 for s in fleet_parallel.switches)

    def test_is_fleet_result(self, fleet_parallel):
        assert isinstance(fleet_parallel, FleetResult)
        assert fleet_parallel.workers == 3
        assert fleet_parallel.lease_probes is True
