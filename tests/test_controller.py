"""Tests for the software controller and end-to-end offload equivalence."""

import pytest

from repro.controller import (
    OffloadController,
    compare_behavior,
    compare_with_offload,
    segment_program,
)
from repro.core.phase_offload import (
    enumerate_candidates,
    make_offloaded_program,
)
from repro.programs import example_firewall, failure_detection


def dns_candidate(program):
    return next(
        c
        for c in enumerate_candidates(program)
        if set(c.tables) == {"Sketch_1", "Sketch_2", "Sketch_Min",
                             "DNS_Drop"}
    )


class TestSegmentProgram:
    def test_segment_keeps_parser_and_registers(self, firewall_program):
        candidate = dns_candidate(firewall_program)
        seg = segment_program(firewall_program, candidate.subtree)
        assert seg.parser is not None
        assert "dns_cms_row0" in seg.registers
        assert set(seg.tables_in_control_order()) == set(candidate.tables)

    def test_segment_validates(self, firewall_program):
        candidate = dns_candidate(firewall_program)
        segment_program(firewall_program, candidate.subtree).validate()


class TestOffloadControllerFirewall:
    def test_controller_reproduces_dns_drops(
        self, firewall_program, firewall_config, firewall_trace
    ):
        """Phase-4 contract, end to end: switch+controller == original."""
        candidate = dns_candidate(firewall_program)
        optimized = make_offloaded_program(firewall_program, candidate)
        remaining = [
            t for t in optimized.tables if t not in candidate.tables
        ]
        report = compare_with_offload(
            firewall_program,
            firewall_config,
            optimized,
            firewall_config.restricted_to(remaining),
            candidate,
            firewall_trace,
        )
        assert report.equivalent
        assert report.redirected > 0

    def test_controller_stats(self, firewall_program, firewall_config):
        from repro.packets.craft import dns_query

        candidate = dns_candidate(firewall_program)
        controller = OffloadController(
            firewall_program, candidate, firewall_config
        )
        heavy_src = example_firewall.HEAVY_DNS_SRC
        heavy_dst = example_firewall.HEAVY_DNS_DST
        for i in range(200):
            controller.handle_packet(dns_query(heavy_src, heavy_dst, i))
        assert controller.stats.packets_processed == 200
        # Queries 128..200 exceed the threshold and are dropped.
        assert controller.stats.packets_dropped == 200 - 127

    def test_controller_reset(self, firewall_program, firewall_config):
        from repro.packets.craft import dns_query

        candidate = dns_candidate(firewall_program)
        controller = OffloadController(
            firewall_program, candidate, firewall_config
        )
        controller.handle_packet(dns_query("10.0.0.1", "10.0.0.2"))
        controller.reset()
        assert controller.stats.packets_processed == 0
        snapshot = controller.register_snapshot()
        assert all(
            all(v == 0 for v in cells) for cells in snapshot.values()
        )


class TestOffloadControllerFailureDetection:
    def test_alarm_notifications_counted(self):
        program = failure_detection.build_program()
        config = failure_detection.runtime_config()
        trace = failure_detection.make_trace(2000)
        candidate = next(
            c
            for c in enumerate_candidates(program)
            if set(c.tables) == {"cms_0", "cms_1", "FailureAlarm"}
        )
        optimized = make_offloaded_program(program, candidate)
        remaining = [
            t for t in optimized.tables if t not in candidate.tables
        ]
        report = compare_with_offload(
            program,
            config,
            optimized,
            config.restricted_to(remaining),
            candidate,
            trace,
        )
        assert report.equivalent
        # Redirected = the retransmission share, a few percent.
        assert 0 < report.redirected < len(trace) * 0.08


class TestCompareBehavior:
    def test_identical_programs_equivalent(
        self, firewall_program, firewall_config, firewall_trace
    ):
        report = compare_behavior(
            firewall_program,
            firewall_config,
            firewall_program,
            firewall_config,
            firewall_trace[:500],
        )
        assert report.equivalent
        assert report.total == 500

    def test_detects_divergence(self, firewall_program, firewall_config,
                                firewall_trace):
        loose = firewall_config.clone()
        loose.entries["ACL_UDP"] = []  # remove the UDP ACL rules
        report = compare_behavior(
            firewall_program,
            firewall_config,
            firewall_program,
            loose,
            firewall_trace[:500],
        )
        assert not report.equivalent
