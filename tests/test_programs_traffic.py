"""Tests for the example programs' traces and runtime configurations."""

import pytest

from repro.packets import headers as hdr
from repro.packets.packet import unpack_fields
from repro.programs import (
    example_firewall,
    failure_detection,
    nat_gre,
    sourceguard,
)
from repro.sim import BehavioralSwitch
from repro.sim.hashing import compute_hash
from repro.traffic.generators import find_partner_flow, ip_pair_key


class TestConfigsValidate:
    def test_all_configs_validate(self):
        cases = [
            (example_firewall.build_program(),
             example_firewall.runtime_config()),
            (nat_gre.build_program(), nat_gre.runtime_config()),
            (failure_detection.build_program(),
             failure_detection.runtime_config()),
        ]
        program = sourceguard.build_program()
        cases.append((program, sourceguard.runtime_config(program)))
        for program, config in cases:
            config.validate(program)


class TestFirewallTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return example_firewall.make_trace(4000)

    def test_total_size(self, trace):
        assert len(trace) == pytest.approx(4000, abs=50)

    def test_deterministic(self):
        a = example_firewall.make_trace(1000)
        b = example_firewall.make_trace(1000)
        pay = lambda t: [p if isinstance(p, bytes) else p[0] for p in t]
        assert pay(a) == pay(b)

    def test_dhcp_share(self, trace):
        dhcp = [p for p in trace if isinstance(p, tuple)]
        # 14% untrusted + 1% trusted DHCP.
        assert len(dhcp) == pytest.approx(0.15 * len(trace), rel=0.05)

    def test_blocked_udp_share(self, trace):
        blocked = 0
        for entry in trace:
            data = entry[0] if isinstance(entry, tuple) else entry
            ip = unpack_fields(hdr.IPV4, data[14:])
            if ip["protocol"] != hdr.IPPROTO_UDP:
                continue
            udp = unpack_fields(hdr.UDP, data[34:])
            if udp["dstPort"] in example_firewall.BLOCKED_UDP_PORTS:
                blocked += 1
        assert blocked == pytest.approx(0.08 * len(trace), rel=0.05)

    def test_partner_flows_at_tail(self, trace):
        tail = trace[-4:]
        flow_a, flow_b = example_firewall.partner_flows()
        srcs = set()
        for entry in tail:
            data = entry[0] if isinstance(entry, tuple) else entry
            srcs.add(unpack_fields(hdr.IPV4, data[14:])["srcAddr"])
        assert srcs == {flow_a, flow_b}


class TestPartnerFlowEngineering:
    """The §2.2 phase-3 collision, verified hash-by-hash."""

    def test_flow_a_collides_only_when_row0_shrinks(self):
        heavy = ip_pair_key(
            example_firewall.HEAVY_DNS_SRC, example_firewall.HEAVY_DNS_DST
        )
        flow_a, _ = example_firewall.partner_flows()
        key = ip_pair_key(flow_a, example_firewall.HEAVY_DNS_DST)
        reduced = example_firewall.REDUCED_SKETCH_CELLS
        full = example_firewall.SKETCH_CELLS
        assert compute_hash("crc32_a", key, reduced) == compute_hash(
            "crc32_a", heavy, reduced
        )
        assert compute_hash("crc32_a", key, full) != compute_hash(
            "crc32_a", heavy, full
        )
        assert compute_hash("crc32_b", key, full) == compute_hash(
            "crc32_b", heavy, full
        )

    def test_flow_b_mirrors_for_row1(self):
        heavy = ip_pair_key(
            example_firewall.HEAVY_DNS_SRC, example_firewall.HEAVY_DNS_DST
        )
        _, flow_b = example_firewall.partner_flows()
        key = ip_pair_key(flow_b, example_firewall.HEAVY_DNS_DST)
        reduced = example_firewall.REDUCED_SKETCH_CELLS
        full = example_firewall.SKETCH_CELLS
        assert compute_hash("crc32_b", key, reduced) == compute_hash(
            "crc32_b", heavy, reduced
        )
        assert compute_hash("crc32_b", key, full) != compute_hash(
            "crc32_b", heavy, full
        )
        assert compute_hash("crc32_a", key, full) == compute_hash(
            "crc32_a", heavy, full
        )

    def test_find_partner_flow_raises_when_impossible(self):
        from repro.exceptions import ReproError
        import repro.traffic.generators as gen

        original = gen.MAX_COLLISION_TRIALS
        gen.MAX_COLLISION_TRIALS = 10
        try:
            with pytest.raises(ReproError):
                find_partner_flow(
                    heavy_key=ip_pair_key(1, 2),
                    collide_algo="crc32_a",
                    collide_size=1_000_000,
                    collide_full_size=2_000_000,
                    other_algo="crc32_b",
                    other_size=2_000_000,
                    dst=2,
                    src_start=100,
                )
        finally:
            gen.MAX_COLLISION_TRIALS = original


class TestNatGreTrace:
    def test_no_packet_uses_both_features(self):
        """The trace property phase 2 exploits: no NAT'd tunnel packets."""
        program = nat_gre.build_program()
        switch = BehavioralSwitch(program, nat_gre.runtime_config())
        for result in switch.process_trace(nat_gre.make_trace(1000)):
            hits = set(result.hit_tables())
            assert not ({"nat", "gre_term"} <= hits)

    def test_both_features_exercised(self):
        program = nat_gre.build_program()
        switch = BehavioralSwitch(program, nat_gre.runtime_config())
        results = switch.process_trace(nat_gre.make_trace(1000))
        assert any("nat" in r.hit_tables() for r in results)
        assert any("gre_term" in r.hit_tables() for r in results)

    def test_gre_decap_removes_header(self):
        program = nat_gre.build_program()
        switch = BehavioralSwitch(program, nat_gre.runtime_config())
        results = switch.process_trace(nat_gre.make_trace(500))
        decapped = [
            r for r in results if "gre_term" in r.hit_tables()
        ]
        assert decapped
        for r in decapped:
            assert "gre" not in {
                h for h in r.valid
                if not program.headers[h].metadata
            }


class TestSourceguardTrace:
    def test_spoofed_traffic_dropped_legit_forwarded(self):
        program = sourceguard.build_program()
        config = sourceguard.runtime_config(program)
        switch = BehavioralSwitch(program, config)
        results = switch.process_trace(sourceguard.make_trace(1000))
        dropped = sum(1 for r in results if r.dropped)
        # ~5% spoofed traffic (Bloom filters never false-negative, so
        # every legitimate client passes).
        assert dropped == pytest.approx(0.05 * len(results), rel=0.2)

    def test_no_false_negatives_for_assigned_ips(self):
        from repro.packets.craft import udp_packet

        program = sourceguard.build_program()
        config = sourceguard.runtime_config(program)
        switch = BehavioralSwitch(program, config)
        for ip in sourceguard.ASSIGNED_CLIENT_IPS:
            result = switch.process(
                udp_packet(ip, "10.0.9.1", 1234, 9000)
            )
            assert not result.dropped


class TestFailureDetectionTrace:
    def test_retransmission_share(self):
        program = failure_detection.build_program()
        switch = BehavioralSwitch(
            program, failure_detection.runtime_config()
        )
        results = switch.process_trace(failure_detection.make_trace(2000))
        cms = sum(1 for r in results if "cms_0" in r.executed_tables())
        assert cms == pytest.approx(0.03 * len(results), rel=0.25)

    def test_alarms_rarer_than_retransmissions(self):
        program = failure_detection.build_program()
        switch = BehavioralSwitch(
            program, failure_detection.runtime_config()
        )
        results = switch.process_trace(failure_detection.make_trace(2000))
        cms = sum(1 for r in results if "cms_0" in r.executed_tables())
        alarms = sum(1 for r in results if r.to_controller)
        assert 0 < alarms < cms

    def test_alarm_reason_code(self):
        program = failure_detection.build_program()
        switch = BehavioralSwitch(
            program, failure_detection.runtime_config()
        )
        results = switch.process_trace(failure_detection.make_trace(2000))
        reasons = {
            r.controller_reason for r in results if r.to_controller
        }
        assert reasons == {failure_detection.ALARM_REASON}
