"""Unit + property tests for packet packing and crafting."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import PacketError
from repro.packets import headers as hdr
from repro.packets.craft import (
    dhcp_packet,
    dns_query,
    gre_packet,
    plain_ipv4_packet,
    tcp_packet,
    udp_packet,
)
from repro.packets.packet import concat_headers, pack_fields, unpack_fields


class TestAddressConversions:
    def test_ip_round_trip(self):
        assert hdr.int_to_ip(hdr.ip_to_int("192.168.1.7")) == "192.168.1.7"

    def test_ip_to_int_value(self):
        assert hdr.ip_to_int("10.0.0.1") == 0x0A000001

    def test_bad_ip_rejected(self):
        with pytest.raises(ValueError):
            hdr.ip_to_int("10.0.0")
        with pytest.raises(ValueError):
            hdr.ip_to_int("10.0.0.999")

    def test_int_to_ip_rejects_wide(self):
        with pytest.raises(ValueError):
            hdr.int_to_ip(1 << 32)

    def test_mac_to_int(self):
        assert hdr.mac_to_int("00:00:00:00:00:01") == 1
        with pytest.raises(ValueError):
            hdr.mac_to_int("00:01")

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_ip_round_trip_property(self, value):
        assert hdr.ip_to_int(hdr.int_to_ip(value)) == value


class TestPackUnpack:
    def test_ethernet_byte_width(self):
        assert hdr.ETHERNET.byte_width == 14
        assert hdr.IPV4.byte_width == 20
        assert hdr.UDP.byte_width == 8
        assert hdr.TCP.byte_width == 20

    def test_round_trip_ipv4(self):
        values = {
            "version": 4,
            "ihl": 5,
            "ttl": 64,
            "protocol": 17,
            "srcAddr": hdr.ip_to_int("10.0.0.1"),
            "dstAddr": hdr.ip_to_int("10.0.0.2"),
        }
        data = pack_fields(hdr.IPV4, values)
        assert len(data) == 20
        out = unpack_fields(hdr.IPV4, data)
        for key, value in values.items():
            assert out[key] == value

    def test_missing_fields_default_zero(self):
        out = unpack_fields(hdr.UDP, pack_fields(hdr.UDP, {}))
        assert all(v == 0 for v in out.values())

    def test_unknown_field_rejected(self):
        with pytest.raises(PacketError):
            pack_fields(hdr.UDP, {"ghost": 1})

    def test_oversized_value_rejected(self):
        with pytest.raises(PacketError):
            pack_fields(hdr.UDP, {"srcPort": 1 << 16})

    def test_unpack_short_buffer_rejected(self):
        with pytest.raises(PacketError):
            unpack_fields(hdr.IPV4, b"\x00" * 10)

    @given(
        st.fixed_dictionaries(
            {
                "srcPort": st.integers(0, 0xFFFF),
                "dstPort": st.integers(0, 0xFFFF),
                "length": st.integers(0, 0xFFFF),
                "checksum": st.integers(0, 0xFFFF),
            }
        )
    )
    def test_udp_round_trip_property(self, values):
        assert unpack_fields(hdr.UDP, pack_fields(hdr.UDP, values)) == values

    def test_sub_byte_fields_pack_msb_first(self):
        data = pack_fields(hdr.IPV4, {"version": 4, "ihl": 5})
        assert data[0] == 0x45  # the classic IPv4 first byte

    def test_concat_headers_appends_payload(self):
        data = concat_headers([(hdr.UDP, {"srcPort": 1})], b"xyz")
        assert data.endswith(b"xyz")
        assert len(data) == 8 + 3


class TestCrafting:
    def test_udp_packet_structure(self):
        pkt = udp_packet("10.0.0.1", "10.0.0.2", 1234, 53, b"hi")
        assert len(pkt) == 14 + 20 + 8 + 2
        eth = unpack_fields(hdr.ETHERNET, pkt)
        assert eth["etherType"] == hdr.ETHERTYPE_IPV4
        ip = unpack_fields(hdr.IPV4, pkt[14:])
        assert ip["protocol"] == hdr.IPPROTO_UDP
        udp = unpack_fields(hdr.UDP, pkt[34:])
        assert udp["dstPort"] == 53

    def test_dns_query_has_dns_prefix(self):
        pkt = dns_query("10.0.0.1", "8.8.8.8", query_id=77)
        dns = unpack_fields(hdr.DNS, pkt[42:])
        assert dns["id"] == 77
        assert dns["qdcount"] == 1

    def test_dhcp_server_ports(self):
        pkt = dhcp_packet("172.16.0.1")
        udp = unpack_fields(hdr.UDP, pkt[34:])
        assert udp["srcPort"] == hdr.UDP_PORT_DHCP_SERVER
        assert udp["dstPort"] == hdr.UDP_PORT_DHCP_CLIENT

    def test_dhcp_client_ports(self):
        pkt = dhcp_packet("10.0.0.5", from_server=False)
        udp = unpack_fields(hdr.UDP, pkt[34:])
        assert udp["srcPort"] == hdr.UDP_PORT_DHCP_CLIENT
        assert udp["dstPort"] == hdr.UDP_PORT_DHCP_SERVER

    def test_tcp_packet_flags_and_seq(self):
        pkt = tcp_packet("10.0.0.1", "10.0.0.2", 1000, 443, seq=42,
                         flags=hdr.TCP_FLAG_SYN)
        tcp = unpack_fields(hdr.TCP, pkt[34:])
        assert tcp["seqNo"] == 42
        assert tcp["flags"] == hdr.TCP_FLAG_SYN

    def test_gre_packet_protocol(self):
        pkt = gre_packet("1.1.1.1", "2.2.2.2")
        ip = unpack_fields(hdr.IPV4, pkt[14:])
        assert ip["protocol"] == hdr.IPPROTO_GRE
        gre = unpack_fields(hdr.GRE, pkt[34:])
        assert gre["protocol"] == hdr.ETHERTYPE_IPV4

    def test_gre_packet_with_inner(self):
        pkt = gre_packet("1.1.1.1", "2.2.2.2", inner_src="10.0.0.1",
                         inner_dst="10.0.0.2")
        inner = unpack_fields(hdr.IPV4, pkt[38:])
        assert inner["dstAddr"] == hdr.ip_to_int("10.0.0.2")

    def test_gre_packet_inner_requires_both(self):
        with pytest.raises(PacketError):
            gre_packet("1.1.1.1", "2.2.2.2", inner_src="10.0.0.1")

    def test_plain_ipv4_protocol(self):
        pkt = plain_ipv4_packet("1.2.3.4", "5.6.7.8", protocol=6)
        ip = unpack_fields(hdr.IPV4, pkt[14:])
        assert ip["protocol"] == 6
