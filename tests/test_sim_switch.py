"""Behavioural tests for the switch simulator."""

import pytest

from repro.exceptions import SimulationError
from repro.p4 import (
    AddToField,
    Apply,
    BinOp,
    Const,
    Drop,
    FieldRef,
    If,
    MinOf,
    ModifyField,
    ProgramBuilder,
    RegisterRead,
    RegisterWrite,
    HashFields,
    RegisterSize,
    SendToController,
    Seq,
    SetEgressPort,
    ValidExpr,
)
from repro.p4.types import CPU_PORT, DROP_PORT
from repro.packets import headers as hdr
from repro.packets.craft import dns_query, plain_ipv4_packet, udp_packet
from repro.sim import BehavioralSwitch, RuntimeConfig
from repro.sim.parser_engine import deparse_packet, parse_packet
from tests.conftest import build_toy_program, toy_config


@pytest.fixture
def switch():
    return BehavioralSwitch(build_toy_program(), toy_config())


class TestForwarding:
    def test_lpm_forwarding(self, switch):
        result = switch.process(udp_packet("1.1.1.1", "10.2.3.4", 10, 20))
        assert result.egress_port == 3
        assert not result.dropped

    def test_default_route(self, switch):
        result = switch.process(udp_packet("1.1.1.1", "99.2.3.4", 10, 20))
        assert result.egress_port == 1

    def test_acl_drop(self, switch):
        result = switch.process(udp_packet("1.1.1.1", "10.2.3.4", 10, 53))
        assert result.dropped
        assert result.egress_port == DROP_PORT

    def test_non_ipv4_skips_everything(self, switch):
        pkt = udp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        # Corrupt the ethertype so parsing stops at ethernet.
        pkt = pkt[:12] + b"\x86\xdd" + pkt[14:]
        result = switch.process(pkt)
        assert result.executed_tables() == []
        assert result.egress_port == 0

    def test_non_udp_skips_acl(self, switch):
        result = switch.process(plain_ipv4_packet("1.1.1.1", "10.0.0.1"))
        assert result.executed_tables() == ["fib"]

    def test_steps_record_hits_and_misses(self, switch):
        result = switch.process(udp_packet("1.1.1.1", "10.2.3.4", 10, 20))
        steps = {s.table: s.hit for s in result.steps}
        assert steps == {"fib": True, "acl": False}

    def test_ingress_port_metadata(self, switch):
        result = switch.process(
            udp_packet("1.1.1.1", "10.2.3.4", 10, 20), ingress_port=7
        )
        assert result.headers["standard_metadata"]["ingress_port"] == 7

    def test_trace_with_per_packet_ports(self, switch):
        pkt = udp_packet("1.1.1.1", "10.2.3.4", 10, 20)
        results = switch.process_trace([pkt, (pkt, 9)])
        assert results[0].headers["standard_metadata"]["ingress_port"] == 0
        assert results[1].headers["standard_metadata"]["ingress_port"] == 9


class TestHitMissBranches:
    def build(self, on_hit=None, on_miss=None):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 16)]).header("h", "h_t")
        b.parser_state("start", extracts=["h"])
        b.metadata("m", [("mark", 8)])
        b.action("mark1", [ModifyField(FieldRef("m", "mark"), Const(1))])
        b.action("mark2", [ModifyField(FieldRef("m", "mark"), Const(2))])
        b.table("t", keys=[("h.f", "exact")], actions=["mark1"])
        b.table("t_hit", keys=[], actions=[], default_action="mark1")
        b.table("t_miss", keys=[], actions=[], default_action="mark2")
        b.ingress(
            Apply(
                "t",
                on_hit=Apply("t_hit") if on_hit else None,
                on_miss=Apply("t_miss") if on_miss else None,
            )
        )
        return b.build()

    def test_on_hit_taken(self):
        program = self.build(on_hit=True, on_miss=True)
        cfg = RuntimeConfig().add_entry("t", [5], "mark1")
        sw = BehavioralSwitch(program, cfg)
        from repro.packets.packet import pack_fields

        result = sw.process(pack_fields(program.header_types["h_t"], {"f": 5}))
        assert result.executed_tables() == ["t", "t_hit"]

    def test_on_miss_taken(self):
        program = self.build(on_hit=True, on_miss=True)
        cfg = RuntimeConfig().add_entry("t", [5], "mark1")
        sw = BehavioralSwitch(program, cfg)
        from repro.packets.packet import pack_fields

        result = sw.process(pack_fields(program.header_types["h_t"], {"f": 6}))
        assert result.executed_tables() == ["t", "t_miss"]


class TestStatefulProcessing:
    def build_counter_program(self):
        b = ProgramBuilder("counter")
        b.header_type("h_t", [("key", 16)]).header("h", "h_t")
        b.parser_state("start", extracts=["h"])
        b.metadata("m", [("idx", 32), ("count", 32), ("low", 32)])
        b.register("reg", width=32, size=8)
        b.action(
            "bump",
            [
                HashFields(
                    FieldRef("m", "idx"), "crc32",
                    (FieldRef("h", "key"),), RegisterSize("reg"),
                ),
                RegisterRead(FieldRef("m", "count"), "reg", FieldRef("m", "idx")),
                AddToField(FieldRef("m", "count"), Const(1)),
                RegisterWrite("reg", FieldRef("m", "idx"), FieldRef("m", "count")),
                MinOf(FieldRef("m", "low"), FieldRef("m", "count"), Const(3)),
            ],
        )
        b.table("counter", keys=[], actions=[], default_action="bump")
        b.action("alert", [SendToController(5)])
        b.table("alarm", keys=[], actions=[], default_action="alert")
        b.ingress(
            Seq(
                [
                    Apply("counter"),
                    If(
                        BinOp(">=", FieldRef("m", "count"), Const(3)),
                        Apply("alarm"),
                    ),
                ]
            )
        )
        return b.build()

    def test_state_accumulates_across_packets(self):
        from repro.packets.packet import pack_fields

        program = self.build_counter_program()
        sw = BehavioralSwitch(program)
        pkt = pack_fields(program.header_types["h_t"], {"key": 42})
        counts = [
            sw.process(pkt).headers["m"]["count"] for _ in range(4)
        ]
        assert counts == [1, 2, 3, 4]

    def test_threshold_triggers_controller(self):
        from repro.packets.packet import pack_fields

        program = self.build_counter_program()
        sw = BehavioralSwitch(program)
        pkt = pack_fields(program.header_types["h_t"], {"key": 42})
        results = [sw.process(pkt) for _ in range(4)]
        assert [r.to_controller for r in results] == [
            False, False, True, True,
        ]
        assert results[2].controller_reason == 5
        assert results[2].egress_port == CPU_PORT
        assert len(sw.controller_queue) == 2

    def test_min_of(self):
        from repro.packets.packet import pack_fields

        program = self.build_counter_program()
        sw = BehavioralSwitch(program)
        pkt = pack_fields(program.header_types["h_t"], {"key": 1})
        assert sw.process(pkt).headers["m"]["low"] == 1  # min(1, 3)
        sw.process(pkt)
        sw.process(pkt)
        assert sw.process(pkt).headers["m"]["low"] == 3  # min(4, 3)

    def test_reset_state(self):
        from repro.packets.packet import pack_fields

        program = self.build_counter_program()
        sw = BehavioralSwitch(program)
        pkt = pack_fields(program.header_types["h_t"], {"key": 42})
        for _ in range(3):
            sw.process(pkt)
        sw.reset_state()
        assert sw.process(pkt).headers["m"]["count"] == 1
        assert sw.controller_queue == []

    def test_register_inits_applied_and_reapplied(self):
        from repro.packets.packet import pack_fields

        program = self.build_counter_program()
        cfg = RuntimeConfig().init_register(
            "reg",
            __import__("repro.sim.hashing", fromlist=["compute_hash"])
            .compute_hash("crc32", ((42, 16),), 8),
            10,
        )
        sw = BehavioralSwitch(program, cfg)
        pkt = pack_fields(program.header_types["h_t"], {"key": 42})
        assert sw.process(pkt).headers["m"]["count"] == 11
        sw.reset_state()
        assert sw.process(pkt).headers["m"]["count"] == 11


class TestDeparsing:
    def test_output_preserves_unmodified_packet(self, switch):
        pkt = udp_packet("1.1.1.1", "10.2.3.4", 10, 20, b"payload")
        result = switch.process(pkt)
        assert result.output_bytes == pkt

    def test_parse_deparse_identity(self):
        program = build_toy_program()
        pkt = dns_query("10.0.0.1", "8.8.8.8")
        parsed = parse_packet(program, pkt)
        out = deparse_packet(
            program, parsed.headers, parsed.valid, parsed.payload
        )
        assert out == pkt

    def test_too_short_packet_rejected(self, switch):
        with pytest.raises(SimulationError):
            switch.process(b"\x00" * 4)
