"""Tests for §6's online profiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.online import AlertKind, OnlineProfiler
from repro.core.profiler import profile_program
from repro.core.session import OptimizationContext
from repro.exceptions import OptimizationError
from repro.packets.craft import dhcp_packet, tcp_packet, udp_packet
from repro.programs import example_firewall as fw
from repro.traffic.generators import dns_stream
from tests.conftest import build_toy_program, toy_config


@pytest.fixture
def online(firewall_program, firewall_config, firewall_profile):
    return OnlineProfiler(
        firewall_program,
        firewall_config,
        baseline=firewall_profile,
        window=500,
        hit_rate_tolerance=0.15,
    )


class TestBasics:
    def test_forwards_packets(self, online):
        result = online.process(
            udp_packet("10.0.0.1", "192.168.1.1", 1234, 9999)
        )
        assert not result.dropped
        assert online.packets_seen == 1

    def test_window_hit_rate(self, online):
        for _ in range(10):
            online.process(udp_packet("10.0.0.1", "192.168.1.1", 1, 137))
        assert online.window_hit_rate("ACL_UDP") == 1.0
        assert online.window_hit_rate("IPv4") == 1.0
        assert online.window_hit_rate("DNS_Drop") == 0.0

    def test_window_evicts_old_packets(
        self, firewall_program, firewall_config
    ):
        online = OnlineProfiler(
            firewall_program, firewall_config, window=5
        )
        for _ in range(5):
            online.process(udp_packet("10.0.0.1", "192.168.1.1", 1, 137))
        for _ in range(5):
            online.process(udp_packet("10.0.0.1", "192.168.1.1", 1, 9999))
        assert online.window_hit_rate("ACL_UDP") == 0.0

    def test_invalid_window_rejected(self, firewall_program,
                                     firewall_config):
        with pytest.raises(ValueError):
            OnlineProfiler(firewall_program, firewall_config, window=0)

    def test_snapshot_covers_all_tables(self, online):
        online.process(udp_packet("10.0.0.1", "192.168.1.1", 1, 9999))
        snap = online.snapshot()
        assert set(snap) == set(online.program.tables)


class TestAlerts:
    def test_no_alerts_on_profiled_traffic(self, online, firewall_trace):
        for entry in firewall_trace[:800]:
            data, port = (
                entry if isinstance(entry, tuple) else (entry, 0)
            )
            online.process(data, port)
        assert online.alerts == []

    def test_new_combination_alert(
        self, firewall_program, firewall_config, firewall_profile
    ):
        """A packet firing both ACL drops — the removed dependency
        manifesting live — raises an alert immediately."""
        config = firewall_config.clone()
        config.add_entry("ACL_UDP", [68], "acl_udp_drop")
        online = OnlineProfiler(
            firewall_program, config, baseline=firewall_profile,
            window=100,
        )
        online.process(
            dhcp_packet("172.16.0.1"),
            ingress_port=fw.UNTRUSTED_INGRESS_PORTS[0],
        )
        kinds = {a.kind for a in online.alerts}
        assert AlertKind.NEW_ACTION_COMBINATION in kinds
        alert = next(
            a for a in online.alerts
            if a.kind is AlertKind.NEW_ACTION_COMBINATION
        )
        assert "ACL_UDP" in alert.subject
        assert "ACL_DHCP" in alert.subject

    def test_hit_rate_drift_alert(self, online):
        """A DNS flood pushes the sketch tables' windowed hit rate far
        above baseline once the window fills."""
        for pkt in dns_stream(fw.HEAVY_DNS_SRC, fw.HEAVY_DNS_DST, 600):
            online.process(pkt)
        drifted = {
            a.subject for a in online.alerts
            if a.kind is AlertKind.HIT_RATE_DRIFT
        }
        assert "Sketch_1" in drifted

    def test_alert_fires_once_per_episode(self, online):
        for pkt in dns_stream(fw.HEAVY_DNS_SRC, fw.HEAVY_DNS_DST, 700):
            online.process(pkt)
        sketch_alerts = [
            a for a in online.alerts
            if a.kind is AlertKind.HIT_RATE_DRIFT
            and a.subject == "Sketch_1"
        ]
        assert len(sketch_alerts) == 1

    def test_alert_callback_invoked(
        self, firewall_program, firewall_config, firewall_profile
    ):
        received = []
        config = firewall_config.clone()
        config.add_entry("ACL_UDP", [68], "acl_udp_drop")
        online = OnlineProfiler(
            firewall_program,
            config,
            baseline=firewall_profile,
            alert_callback=received.append,
        )
        online.process(
            dhcp_packet("172.16.0.1"),
            ingress_port=fw.UNTRUSTED_INGRESS_PORTS[0],
        )
        assert received
        assert received[0].kind is AlertKind.NEW_ACTION_COMBINATION

    def test_no_baseline_no_alerts(self, firewall_program,
                                   firewall_config):
        online = OnlineProfiler(firewall_program, firewall_config)
        for pkt in dns_stream(fw.HEAVY_DNS_SRC, fw.HEAVY_DNS_DST, 100):
            online.process(pkt)
        assert online.alerts == []

    def test_single_hit_sighting_does_not_suppress_later_multi_hit(self):
        """A combination first decoded on a packet where only ONE table
        actually hit (the other pair came from a default-action miss)
        must not be marked seen: the identical pair set arriving later
        as a genuine multi-table hit still has to alert."""
        program = build_toy_program()
        config = toy_config()
        # Make the ACL's *default* the same action its entry fires, so
        # a miss sighting and a genuine hit decode to identical pairs.
        config.set_default("acl", "deny")
        # Baseline traffic never applies the ACL (no UDP), so the
        # {fib.fwd, acl.deny} combination is unseen at start.
        baseline = profile_program(
            program,
            config,
            [tcp_packet("1.1.1.1", "10.0.0.9", 5, 80)] * 4,
        )
        online = OnlineProfiler(
            program, config, baseline=baseline, window=100
        )

        # Sighting 1: acl applied but *misses* — (acl, deny) comes from
        # the default action, only fib hit.  Not alert-worthy, and must
        # not poison the seen set.
        online.process(udp_packet("1.1.1.1", "10.0.0.9", 5, 9999))
        assert online.alerts == []

        # Sighting 2: the same pair set, now from a genuine two-table
        # hit (the acl entry matched).  This is the first real
        # co-firing and must alert.
        online.process(udp_packet("1.1.1.1", "10.0.0.9", 5, 53))
        kinds = [a.kind for a in online.alerts]
        assert kinds == [AlertKind.NEW_ACTION_COMBINATION]
        assert "acl" in online.alerts[0].subject
        assert "fib" in online.alerts[0].subject


class TestReoptimizeStateGuard:
    """A shared session must come back unscathed when a re-run dies."""

    @pytest.fixture
    def shared(self, firewall_program, firewall_config):
        baseline = fw.make_trace(300, seed=0)
        session = OptimizationContext(
            firewall_program, firewall_config, baseline, fw.TARGET
        )
        online = OnlineProfiler(
            firewall_program, firewall_config, session=session
        )
        yield session, online, baseline
        session.close()

    def test_restores_trace_on_invalid_phases(self, shared):
        session, online, baseline = shared
        prior_key = session.trace_key
        with pytest.raises(ValueError):
            online.reoptimize(fw.make_trace(200, seed=3), phases=(9,))
        assert session.trace == baseline
        assert session.trace_key == prior_key

    def test_restores_state_on_midphase_failure(
        self, shared, firewall_program, firewall_config, monkeypatch
    ):
        from repro.core.phase_dependencies import DependencyRemovalPass

        def boom(self, *args, **kwargs):
            raise OptimizationError("injected mid-phase failure")

        monkeypatch.setattr(DependencyRemovalPass, "run", boom)
        session, online, baseline = shared
        prior_key = session.trace_key
        with pytest.raises(OptimizationError):
            online.reoptimize(fw.make_trace(200, seed=3), phases=(2,))
        assert session.trace == baseline
        assert session.trace_key == prior_key
        assert session.program is firewall_program
        assert session.config is firewall_config

    def test_success_rekeys_session_on_new_trace(self, shared):
        session, online, _baseline = shared
        drifted = fw.make_trace(200, seed=3)
        result = online.reoptimize(drifted, phases=(2,))
        assert result.optimized_program is not None
        # On success the new state stays — that *is* the re-key.
        assert session.trace == drifted


class _ToyTraffic:
    """Packet kinds with known per-packet hit sets on the toy program."""

    PACKETS = {
        "fib_only": udp_packet("1.1.1.1", "10.0.0.9", 5, 9999),
        "fib_acl": udp_packet("1.1.1.1", "10.0.0.9", 5, 53),
        "no_udp": tcp_packet("1.1.1.1", "10.0.0.9", 5, 80),
    }
    HITS = {
        "fib_only": frozenset({"fib"}),
        "fib_acl": frozenset({"fib", "acl"}),
        "no_udp": frozenset({"fib"}),
    }


class TestWindowAccountingProperties:
    """The streaming ``_hit_counts`` bookkeeping must always equal a
    brute-force recount over the last ``window`` packets."""

    program = build_toy_program()
    config = toy_config()

    @given(
        kinds=st.lists(
            st.sampled_from(sorted(_ToyTraffic.PACKETS)),
            min_size=1,
            max_size=60,
        ),
        window=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_hit_counts_match_brute_force_recount(self, kinds, window):
        online = OnlineProfiler(
            self.program, self.config, window=window
        )
        for kind in kinds:
            online.process(_ToyTraffic.PACKETS[kind])

        recent = kinds[-window:]
        expected = {}
        for kind in recent:
            for table in _ToyTraffic.HITS[kind]:
                expected[table] = expected.get(table, 0) + 1

        for table in self.program.tables:
            assert online._hit_counts.get(table, 0) == expected.get(
                table, 0
            )
            assert online.window_hit_rate(table) == expected.get(
                table, 0
            ) / len(recent)
        # snapshot() is just window_hit_rate over every table.
        assert online.snapshot() == {
            table: online.window_hit_rate(table)
            for table in self.program.tables
        }
