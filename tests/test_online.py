"""Tests for §6's online profiler."""

import pytest

from repro.core.online import AlertKind, OnlineProfiler
from repro.packets.craft import dhcp_packet, udp_packet
from repro.programs import example_firewall as fw
from repro.traffic.generators import dns_stream


@pytest.fixture
def online(firewall_program, firewall_config, firewall_profile):
    return OnlineProfiler(
        firewall_program,
        firewall_config,
        baseline=firewall_profile,
        window=500,
        hit_rate_tolerance=0.15,
    )


class TestBasics:
    def test_forwards_packets(self, online):
        result = online.process(
            udp_packet("10.0.0.1", "192.168.1.1", 1234, 9999)
        )
        assert not result.dropped
        assert online.packets_seen == 1

    def test_window_hit_rate(self, online):
        for _ in range(10):
            online.process(udp_packet("10.0.0.1", "192.168.1.1", 1, 137))
        assert online.window_hit_rate("ACL_UDP") == 1.0
        assert online.window_hit_rate("IPv4") == 1.0
        assert online.window_hit_rate("DNS_Drop") == 0.0

    def test_window_evicts_old_packets(
        self, firewall_program, firewall_config
    ):
        online = OnlineProfiler(
            firewall_program, firewall_config, window=5
        )
        for _ in range(5):
            online.process(udp_packet("10.0.0.1", "192.168.1.1", 1, 137))
        for _ in range(5):
            online.process(udp_packet("10.0.0.1", "192.168.1.1", 1, 9999))
        assert online.window_hit_rate("ACL_UDP") == 0.0

    def test_invalid_window_rejected(self, firewall_program,
                                     firewall_config):
        with pytest.raises(ValueError):
            OnlineProfiler(firewall_program, firewall_config, window=0)

    def test_snapshot_covers_all_tables(self, online):
        online.process(udp_packet("10.0.0.1", "192.168.1.1", 1, 9999))
        snap = online.snapshot()
        assert set(snap) == set(online.program.tables)


class TestAlerts:
    def test_no_alerts_on_profiled_traffic(self, online, firewall_trace):
        for entry in firewall_trace[:800]:
            data, port = (
                entry if isinstance(entry, tuple) else (entry, 0)
            )
            online.process(data, port)
        assert online.alerts == []

    def test_new_combination_alert(
        self, firewall_program, firewall_config, firewall_profile
    ):
        """A packet firing both ACL drops — the removed dependency
        manifesting live — raises an alert immediately."""
        config = firewall_config.clone()
        config.add_entry("ACL_UDP", [68], "acl_udp_drop")
        online = OnlineProfiler(
            firewall_program, config, baseline=firewall_profile,
            window=100,
        )
        online.process(
            dhcp_packet("172.16.0.1"),
            ingress_port=fw.UNTRUSTED_INGRESS_PORTS[0],
        )
        kinds = {a.kind for a in online.alerts}
        assert AlertKind.NEW_ACTION_COMBINATION in kinds
        alert = next(
            a for a in online.alerts
            if a.kind is AlertKind.NEW_ACTION_COMBINATION
        )
        assert "ACL_UDP" in alert.subject
        assert "ACL_DHCP" in alert.subject

    def test_hit_rate_drift_alert(self, online):
        """A DNS flood pushes the sketch tables' windowed hit rate far
        above baseline once the window fills."""
        for pkt in dns_stream(fw.HEAVY_DNS_SRC, fw.HEAVY_DNS_DST, 600):
            online.process(pkt)
        drifted = {
            a.subject for a in online.alerts
            if a.kind is AlertKind.HIT_RATE_DRIFT
        }
        assert "Sketch_1" in drifted

    def test_alert_fires_once_per_episode(self, online):
        for pkt in dns_stream(fw.HEAVY_DNS_SRC, fw.HEAVY_DNS_DST, 700):
            online.process(pkt)
        sketch_alerts = [
            a for a in online.alerts
            if a.kind is AlertKind.HIT_RATE_DRIFT
            and a.subject == "Sketch_1"
        ]
        assert len(sketch_alerts) == 1

    def test_alert_callback_invoked(
        self, firewall_program, firewall_config, firewall_profile
    ):
        received = []
        config = firewall_config.clone()
        config.add_entry("ACL_UDP", [68], "acl_udp_drop")
        online = OnlineProfiler(
            firewall_program,
            config,
            baseline=firewall_profile,
            alert_callback=received.append,
        )
        online.process(
            dhcp_packet("172.16.0.1"),
            ingress_port=fw.UNTRUSTED_INGRESS_PORTS[0],
        )
        assert received
        assert received[0].kind is AlertKind.NEW_ACTION_COMBINATION

    def test_no_baseline_no_alerts(self, firewall_program,
                                   firewall_config):
        online = OnlineProfiler(firewall_program, firewall_config)
        for pkt in dns_stream(fw.HEAVY_DNS_SRC, fw.HEAVY_DNS_DST, 100):
            online.process(pkt)
        assert online.alerts == []
