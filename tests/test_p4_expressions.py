"""Unit tests for repro.p4.expressions."""

import pytest

from repro.exceptions import P4SemanticsError
from repro.p4.expressions import (
    BinOp,
    Const,
    FieldRef,
    LAnd,
    LNot,
    LOr,
    ParamRef,
    RegisterSize,
    ValidExpr,
    coerce_operand,
    fields_read,
    headers_tested_valid,
    params_used,
    registers_referenced,
)


class TestFieldRef:
    def test_parse(self):
        ref = FieldRef.parse("ipv4.dstAddr")
        assert ref == FieldRef("ipv4", "dstAddr")
        assert ref.path == "ipv4.dstAddr"

    def test_parse_rejects_no_dot(self):
        with pytest.raises(P4SemanticsError):
            FieldRef.parse("ipv4")

    def test_parse_rejects_two_dots(self):
        with pytest.raises(P4SemanticsError):
            FieldRef.parse("a.b.c")

    def test_parse_rejects_empty_component(self):
        with pytest.raises(P4SemanticsError):
            FieldRef.parse(".field")

    def test_hashable_and_equal(self):
        assert {FieldRef("a", "b")} == {FieldRef.parse("a.b")}


class TestConst:
    def test_negative_rejected(self):
        with pytest.raises(P4SemanticsError):
            Const(-1)

    def test_str(self):
        assert str(Const(7)) == "7"


class TestBinOp:
    def test_unknown_op_rejected(self):
        with pytest.raises(P4SemanticsError):
            BinOp("**", Const(1), Const(2))

    def test_is_comparison(self):
        assert BinOp(">=", Const(1), Const(2)).is_comparison
        assert not BinOp("+", Const(1), Const(2)).is_comparison


class TestFieldsRead:
    def test_field_ref(self):
        assert fields_read(FieldRef("a", "b")) == {FieldRef("a", "b")}

    def test_leaves_read_nothing(self):
        assert fields_read(Const(1)) == frozenset()
        assert fields_read(ParamRef("p")) == frozenset()
        assert fields_read(RegisterSize("r")) == frozenset()
        assert fields_read(ValidExpr("h")) == frozenset()

    def test_nested(self):
        expr = LAnd(
            BinOp(">=", FieldRef("m", "count"), Const(128)),
            LOr(ValidExpr("dns"), LNot(FieldRef("m", "flag"))),
        )
        assert fields_read(expr) == {
            FieldRef("m", "count"),
            FieldRef("m", "flag"),
        }


class TestHeadersTestedValid:
    def test_valid_expr(self):
        assert headers_tested_valid(ValidExpr("udp")) == {"udp"}

    def test_negated(self):
        assert headers_tested_valid(LNot(ValidExpr("udp"))) == {"udp"}

    def test_combined(self):
        expr = LAnd(ValidExpr("a"), LOr(ValidExpr("b"), Const(1)))
        assert headers_tested_valid(expr) == {"a", "b"}


class TestParamsUsed:
    def test_param(self):
        assert params_used(ParamRef("port")) == {"port"}

    def test_nested(self):
        expr = BinOp("+", ParamRef("a"), BinOp("-", ParamRef("b"), Const(1)))
        assert params_used(expr) == {"a", "b"}


class TestRegistersReferenced:
    def test_register_size(self):
        assert registers_referenced(RegisterSize("cms")) == {"cms"}

    def test_nested(self):
        expr = BinOp("&", RegisterSize("r1"), LNot(RegisterSize("r2")))
        assert registers_referenced(expr) == {"r1", "r2"}


class TestCoerceOperand:
    def test_int(self):
        assert coerce_operand(5) == Const(5)

    def test_dotted_string(self):
        assert coerce_operand("ipv4.ttl") == FieldRef("ipv4", "ttl")

    def test_bare_string(self):
        assert coerce_operand("port") == ParamRef("port")

    def test_passthrough(self):
        expr = ValidExpr("udp")
        assert coerce_operand(expr) is expr
