"""Tests for the continuous-optimization service (repro/core/serve.py).

The acceptance scenario: a scripted traffic-mix shift mid-feed must
complete at least one full detect -> warm reoptimize -> equivalence-
gated swap cycle with zero dropped/misprocessed packets, and post-swap
alerts must be keyed to the new baseline.
"""

import threading

import pytest

from repro.core.report import render_serve_report
from repro.core.serve import (
    ContinuousOptimizer,
    GeneratorFeed,
    LineFeed,
    SocketFeed,
    TraceFeed,
    format_packet_line,
    parse_packet_line,
    serve_forever,
)
from repro.packets.craft import udp_packet
from repro.programs import example_firewall as fw

BASELINE_PACKETS = 3000
SCENARIO_PACKETS = 1600
WINDOW = 400
TOLERANCE = 0.15


@pytest.fixture(scope="module")
def drift_serve():
    """One sync-mode daemon run over the canonical drift scenario.

    Module-scoped: the run is deterministic and every test reads it."""
    optimizer = ContinuousOptimizer(
        fw.build_program(),
        fw.runtime_config(),
        fw.make_trace(BASELINE_PACKETS, seed=0),
        fw.TARGET,
        window=WINDOW,
        hit_rate_tolerance=TOLERANCE,
        workers=0,
    )
    feed = GeneratorFeed.firewall_drift(
        total=SCENARIO_PACKETS, seed=0, shift_at=0.5
    )
    result = optimizer.run(feed, max_packets=SCENARIO_PACKETS)
    return optimizer, result


class TestDriftScenario:
    def test_full_cycle_completes(self, drift_serve):
        """>= 1 detect -> warm reoptimize -> gated swap cycle."""
        _optimizer, result = drift_serve
        stats = result.stats
        assert stats.drift_alerts >= 1
        assert stats.reoptimizations >= 1
        assert stats.swaps >= 1
        assert result.promotions
        assert len(stats.swap_seconds) == stats.swaps
        assert all(s > 0 for s in stats.swap_seconds)

    def test_no_dropped_or_misprocessed_packets(self, drift_serve):
        _optimizer, result = drift_serve
        stats = result.stats
        assert stats.packets_in == SCENARIO_PACKETS
        assert stats.packets_processed == SCENARIO_PACKETS
        assert stats.misprocessed == 0

    def test_promotions_pass_the_gate(self, drift_serve):
        _optimizer, result = drift_serve
        assert result.stats.rejected_promotions == 0
        for event in result.stats.events:
            assert event.promoted
            assert event.gate_mismatches == 0
            assert event.gate_packets == WINDOW

    def test_serving_program_is_last_promotion(self, drift_serve):
        _optimizer, result = drift_serve
        assert result.current is result.promotions[-1]
        assert result.program is result.current.optimized_program
        # The service actually optimized something.
        assert (
            result.current.stages_after < result.current.stages_before
        )

    def test_reoptimizations_ran_warm(self, drift_serve):
        """The shared session answered re-run probes from the memo —
        strictly fewer executions than calls."""
        _optimizer, result = drift_serve
        counters = result.session_counters
        assert counters.compile_hits > 0
        assert counters.compile_executions < counters.compile_calls

    def test_post_swap_monitor_keyed_to_new_baseline(self, drift_serve):
        """After a swap the monitoring side is rebound: a fresh
        instrumented monitor whose baseline is the *reoptimize-window*
        profile, with its drift window reset."""
        optimizer, result = drift_serve
        monitor = optimizer._monitor
        # The final monitor was rebuilt at the last swap, not at start:
        # it has seen only post-swap packets.
        assert monitor.packets_seen < result.stats.packets_processed
        # Its baseline is the drift-time observation, not the startup
        # one: the sketch tables' rates differ by far more than the
        # serve tolerance (the flood is what triggered the swap).
        startup = result.initial.initial_profile
        assert (
            abs(
                monitor.baseline.hit_rate("Sketch_1")
                - startup.hit_rate("Sketch_1")
            )
            > TOLERANCE
        )
        # And against that new baseline, the continued flood raised no
        # unresolved drift alert episode on the sketch tables.
        assert not {"Sketch_1", "Sketch_2", "Sketch_Min"} & set(
            monitor._drifting
        )

    def test_report_renders(self, drift_serve):
        _optimizer, result = drift_serve
        report = render_serve_report(result)
        assert "misprocessed" in report
        assert "promoted" in report
        assert "swap latency" in report
        assert str(result.stats.swaps) in report

    def test_stats_as_dict_round_trips_counts(self, drift_serve):
        _optimizer, result = drift_serve
        data = result.stats.as_dict()
        assert data["swaps"] == result.stats.swaps
        assert data["misprocessed"] == 0
        assert len(data["events"]) == result.stats.reoptimizations
        assert data["events"][0]["promoted"] is True


class TestPromotionGate:
    def test_non_equivalent_candidate_rejected(self, monkeypatch):
        """A re-optimization whose result changes forwarding decisions
        must be rejected by the gate — the old program keeps serving
        and no swap is recorded."""
        from repro.core.online import OnlineProfiler

        def sabotage(self, trace, **kwargs):
            # A "re-optimization" that would drop every IPv4 packet:
            # behaviourally wrong, so the gate must refuse it.
            result = real_reoptimize(self, trace, **kwargs)
            bad_config = result.final_config.clone()
            bad_config.entries["IPv4"] = []
            bad_config.set_default("IPv4", "ipv4_drop", [])
            result.final_config = bad_config
            return result

        real_reoptimize = OnlineProfiler.reoptimize
        monkeypatch.setattr(OnlineProfiler, "reoptimize", sabotage)

        optimizer = ContinuousOptimizer(
            fw.build_program(),
            fw.runtime_config(),
            fw.make_trace(2000, seed=0),
            fw.TARGET,
            window=300,
            hit_rate_tolerance=TOLERANCE,
            workers=0,
        )
        feed = GeneratorFeed.firewall_drift(
            total=1200, seed=0, shift_at=0.5
        )
        result = optimizer.run(feed, max_packets=1200)
        stats = result.stats
        assert stats.reoptimizations >= 1
        assert stats.rejected_promotions == stats.reoptimizations
        assert stats.swaps == 0
        assert result.promotions == []
        assert result.current is result.initial
        assert result.program is result.initial.optimized_program
        assert stats.events and not stats.events[0].promoted
        assert stats.events[0].gate_mismatches > 0
        # Rejection never interrupts serving.
        assert stats.packets_processed == 1200
        assert stats.misprocessed == 0


class TestAsyncMode:
    def test_traffic_flows_while_reoptimizing(self):
        """workers >= 1: the feed keeps draining while the worker
        re-optimizes, and the in-flight cycle is drained at feed end,
        so the swap still lands."""
        optimizer = ContinuousOptimizer(
            fw.build_program(),
            fw.runtime_config(),
            fw.make_trace(2000, seed=0),
            fw.TARGET,
            window=300,
            hit_rate_tolerance=TOLERANCE,
            workers=1,
        )
        feed = GeneratorFeed.firewall_drift(
            total=1600, seed=0, shift_at=0.4
        )
        result = optimizer.run(feed)
        stats = result.stats
        assert stats.packets_processed == 1600
        assert stats.misprocessed == 0
        assert stats.swaps >= 1
        # The under-traffic throughput samples exist iff packets were
        # processed while a cycle was in flight; either way the counts
        # balance.
        assert stats.packets_in == stats.packets_processed


class TestServeStore:
    def test_persistent_store_attaches(self, tmp_path):
        result = serve_forever(
            fw.build_program(),
            fw.runtime_config(),
            fw.make_trace(2000, seed=0),
            TraceFeed(fw.make_trace(300, seed=5)),
            target=fw.TARGET,
            window=200,
            workers=0,
            store=tmp_path / "store",
            max_packets=300,
        )
        assert result.store_stats is not None
        assert result.store_stats["compile_entries"] > 0
        assert result.stats.packets_processed == 300
        assert result.stats.misprocessed == 0


class TestFeeds:
    def test_packet_line_round_trip(self):
        plain = udp_packet("10.0.0.1", "192.168.1.1", 1234, 53)
        with_port = (plain, 7)
        for packet in (plain, with_port):
            assert parse_packet_line(format_packet_line(packet)) == packet

    def test_parse_skips_blanks_and_comments(self):
        assert parse_packet_line("") is None
        assert parse_packet_line("   ") is None
        assert parse_packet_line("# comment") is None

    def test_trace_feed_repeats(self):
        trace = [udp_packet("10.0.0.1", "192.168.1.1", 1, 80)] * 3
        feed = TraceFeed(trace, repeat=2)
        assert list(feed.packets()) == trace * 2
        assert "x 2" in feed.describe()
        with pytest.raises(ValueError):
            TraceFeed(trace, repeat=0)

    def test_generator_feed_segments(self):
        feed = GeneratorFeed.firewall_drift(total=200, seed=1)
        packets = list(feed.packets())
        assert len(packets) == sum(
            len(seg) for _name, seg in feed.segments
        )
        assert [name for name, _seg in feed.segments] == [
            "steady", "flood",
        ]
        # Deterministic in the seed.
        again = GeneratorFeed.firewall_drift(total=200, seed=1)
        assert list(again.packets()) == packets
        with pytest.raises(ValueError):
            GeneratorFeed.firewall_drift(total=100, shift_at=1.5)

    def test_line_feed_from_file(self, tmp_path):
        packets = [
            udp_packet("10.0.0.1", "192.168.1.1", 1, 80),
            (udp_packet("10.0.0.2", "192.168.1.2", 2, 53), 4),
        ]
        path = tmp_path / "feed.txt"
        path.write_text(
            "# header comment\n"
            + "\n".join(format_packet_line(p) for p in packets)
            + "\n\n"
        )
        assert list(LineFeed(path).packets()) == packets
        assert list(LineFeed(str(path)).packets()) == packets

    def test_line_feed_from_stream(self):
        packets = [udp_packet("10.0.0.3", "192.168.1.3", 3, 80)]
        lines = [format_packet_line(p) + "\n" for p in packets]
        assert list(LineFeed(iter(lines)).packets()) == packets

    def test_socket_feed_streams_a_connection(self):
        packets = [
            udp_packet("10.0.0.1", "192.168.1.1", 1, 80),
            (udp_packet("10.0.0.2", "192.168.1.2", 2, 53), 9),
        ]
        feed = SocketFeed(accept_timeout=10.0)
        host, port = feed.address

        def writer():
            import socket

            with socket.create_connection((host, port)) as conn:
                payload = "".join(
                    format_packet_line(p) + "\n" for p in packets
                )
                conn.sendall(payload.encode())

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        received = list(feed.packets())
        thread.join(timeout=5)
        assert received == packets


class TestBounds:
    def test_max_packets_bounds_an_endless_feed(self):
        optimizer = ContinuousOptimizer(
            fw.build_program(),
            fw.runtime_config(),
            fw.make_trace(2000, seed=0),
            fw.TARGET,
            window=200,
            workers=0,
        )
        endless = TraceFeed(fw.make_trace(100, seed=2), repeat=1000)
        result = optimizer.run(endless, max_packets=250)
        assert result.stats.packets_in == 250
        assert result.stats.packets_processed == 250

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ContinuousOptimizer(
                fw.build_program(),
                fw.runtime_config(),
                fw.make_trace(100, seed=0),
                fw.TARGET,
                workers=-1,
            )
