"""The fuzz subsystem: generator, oracle axes, shrinker, repro files.

Three layers of assurance:

* the generator's programs are well-formed (round-trip the DSL, compile
  on the default target) and seeded generation is deterministic;
* one full seeded iteration across all six oracle axes passes — the
  tier-1 smoke the CI quick leg extends to 25 seeds;
* mutation testing: a deliberately broken "pass" is caught by the
  behaviour axis, shrunk to a minimal case, and the written repro file
  replays — while the shrinker refuses to drift from the original
  failure onto unrelated crashes.

Plus the pinned regression for the soundness bug the fuzzer found in
phase 2 (see ``test_phase2_relocation_respects_hit_coapplication``).
"""

import json
import random

import pytest

from repro.controller.equivalence import compare_behavior
from repro.core.phase_dependencies import find_removal_candidates
from repro.core.pipeline import P2GO
from repro.core.profiler import Profile, profile_program
from repro.fuzz import (
    ALL_AXES,
    break_optimizer,
    generate_case,
    load_repro,
    remove_table,
    replay_repro,
    run_axes,
    run_campaign,
    run_one,
    shrink_case,
    write_repro,
)
from repro.fuzz.generator import generate_program
from repro.p4 import (
    Apply,
    Const,
    Drop,
    FieldRef,
    ModifyField,
    ProgramBuilder,
    Seq,
)
from repro.packets.craft import udp_packet
from repro.sim.runtime import RuntimeConfig
from repro.target.compiler import compile_program
from repro.target.model import DEFAULT_TARGET
from tests.test_dsl_roundtrip import assert_round_trips

#: Small traces keep the oracle tests fast (a full pipeline run per axis).
FAST_TRACE = 30


# ----------------------------------------------------------------------
# Generator properties


@pytest.mark.parametrize("seed", range(50))
def test_generated_program_round_trips(seed):
    """Satellite property: printer -> parser is lossless on 50 seeded
    fuzz-generated programs."""
    program, _pools, _plans = generate_program(
        random.Random(seed), f"fuzz_{seed}"
    )
    assert_round_trips(program)


@pytest.mark.parametrize("seed", (0, 11, 29))
def test_generated_case_compiles_and_simulates(seed):
    case = generate_case(seed, trace_packets=FAST_TRACE)
    case.program.validate()
    case.config.validate(case.program)
    result = compile_program(case.program, DEFAULT_TARGET)
    assert result.fits
    profile = profile_program(case.program, case.config, case.trace)
    assert profile.total_packets == len(case.trace)


def test_generation_is_deterministic():
    a = generate_case(42, trace_packets=FAST_TRACE)
    b = generate_case(42, trace_packets=FAST_TRACE)
    from repro.p4.dsl import print_program

    assert print_program(a.program) == print_program(b.program)
    assert a.trace == b.trace
    assert a.config.entries == b.config.entries


def test_different_seeds_differ():
    a = generate_case(1, trace_packets=FAST_TRACE)
    b = generate_case(2, trace_packets=FAST_TRACE)
    from repro.p4.dsl import print_program

    assert (
        print_program(a.program) != print_program(b.program)
        or a.trace != b.trace
    )


# ----------------------------------------------------------------------
# Oracle axes


def test_one_seed_all_axes_smoke(tmp_path):
    """Tier-1 smoke: one seeded iteration passes all six axes."""
    failures = run_one(0, store_root=str(tmp_path))
    assert failures == []


def test_unknown_axis_rejected():
    with pytest.raises(ValueError, match="unknown axes"):
        run_axes(generate_case(0, trace_packets=FAST_TRACE), axes=("bogus",))


def test_shrink_requires_a_failing_case():
    case = generate_case(0, trace_packets=FAST_TRACE)
    with pytest.raises(ValueError, match="does not fail"):
        shrink_case(case, axes=("behavior",))


# ----------------------------------------------------------------------
# Mutation testing: the harness catches a broken pass end to end


def test_broken_pass_is_caught_and_shrunk(tmp_path):
    case = generate_case(3)
    failures = run_axes(case, axes=("behavior",), mutator=break_optimizer)
    assert failures and failures[0].axis == "behavior"

    small, failure = shrink_case(
        case, axes=("behavior",), mutator=break_optimizer
    )
    # Minimal repro: the shrinker gets down to one table and one packet
    # (pinned loosely so legitimate shrinker changes don't churn it).
    assert len(small.program.tables) <= 2
    assert len(small.trace) <= 3
    assert failure.axis == "behavior"
    assert small.program.tables  # never shrunk into a different bug

    path = write_repro(
        tmp_path / "repro.json", small, failure, axes=("behavior",)
    )
    loaded, axes = load_repro(path)
    assert axes == ["behavior"]
    assert sorted(loaded.program.tables) == sorted(small.program.tables)
    assert loaded.trace == small.trace
    # The repro still fails under the broken pass...
    assert run_axes(loaded, axes, mutator=break_optimizer)
    # ...and passes under the real optimizer.
    assert replay_repro(path) == []


def test_repro_file_is_self_contained(tmp_path):
    case = generate_case(5, trace_packets=FAST_TRACE)
    failures = run_axes(case, axes=("behavior",), mutator=break_optimizer)
    if not failures:
        pytest.skip("seed 5 does not expose the sabotage on a short trace")
    path = write_repro(tmp_path / "r.json", case, failures[0])
    payload = json.loads(path.read_text())
    assert set(payload) >= {
        "seed", "axes", "failure", "program", "config", "trace", "target",
    }
    assert payload["failure"]["axis"] == "behavior"


def test_campaign_reports_and_continues(tmp_path):
    result = run_campaign(
        base_seed=3,
        iterations=2,
        axes=("behavior",),
        mutator=break_optimizer,
        repro_dir=tmp_path,
    )
    assert result.iterations == 2
    assert not result.ok
    for record in result.failures:
        assert record.repro_path is not None
        assert record.repro_path.exists()
        assert record.shrunk_tables >= 1


def test_campaign_time_budget_stops_early():
    result = run_campaign(
        base_seed=0,
        iterations=10_000,
        time_budget=0.0,
        axes=("behavior",),
        trace_packets=FAST_TRACE,
    )
    assert result.iterations == 0


# ----------------------------------------------------------------------
# Shrinker surgery


def test_remove_table_prunes_orphans():
    case = generate_case(7, trace_packets=FAST_TRACE)
    victim = sorted(case.program.tables)[0]
    reduced = remove_table(case, victim)
    assert reduced is not None
    assert victim not in reduced.program.tables
    reduced.program.validate()
    reduced.config.validate(reduced.program)
    # Actions referenced by no table are gone (except NoAction).
    referenced = {"NoAction"}
    for table in reduced.program.tables.values():
        referenced.update(table.actions)
        referenced.add(table.default_action)
    assert set(reduced.program.actions) <= referenced


# ----------------------------------------------------------------------
# The bug the fuzzer found: phase 2 relocation vs hit co-application


def _relocation_bug_fixture():
    """A two-table program where the pre-fix phase 2 changed behaviour.

    ``t_src`` and ``t_dst`` carry a static write-write (ACTION)
    dependency through ``dscp``.  The trace never co-applies the two
    conflicting actions — ``t_dst``'s only entry never matches — so the
    dependency is unmanifested.  But every packet that *hits* ``t_src``
    also traverses ``t_dst``, whose default drops; relocating ``t_dst``
    into ``t_src``'s miss branch would un-drop all of them.
    """
    b = ProgramBuilder("reloc_bug")
    b.header_type("ipv4_t", [("dscp", 8), ("srcAddr", 32), ("dstAddr", 32)])
    b.header("ipv4", "ipv4_t")
    b.parser_state("start", extracts=["ipv4"])
    b.parser_start("start")
    b.action("mark_a", [ModifyField(FieldRef("ipv4", "dscp"), Const(7))])
    b.action("mark_b", [ModifyField(FieldRef("ipv4", "dscp"), Const(9))])
    b.action("drop_b", [Drop()])
    b.table(
        "t_src", keys=[("ipv4.dstAddr", "exact")], actions=["mark_a"],
        size=8,
    )
    b.table(
        "t_dst", keys=[("ipv4.srcAddr", "exact")], actions=["mark_b"],
        default_action="drop_b", size=8,
    )
    b.ingress(Seq([Apply("t_src"), Apply("t_dst")]))
    program = b.build()

    cfg = RuntimeConfig()
    cfg.add_entry("t_src", [0xC0A80001], "mark_a")
    cfg.add_entry("t_dst", [0xDEADBEEF], "mark_b")  # never matches

    from repro.packets.packet import pack_fields
    from repro.packets import headers as hdr  # noqa: F401

    trace = []
    for i in range(12):
        trace.append(
            pack_fields(
                program.header_types["ipv4_t"],
                {"dscp": 0, "srcAddr": 0x0A000001 + i,
                 "dstAddr": 0xC0A80001},
            )
        )
    return program, cfg, trace


def test_phase2_relocation_respects_hit_coapplication():
    """Pinned regression: the fuzz campaign's first real find.

    Before the fix, ``find_removal_candidates`` proposed relocating
    ``t_dst`` under ``t_src``'s miss branch because the static
    dependency's action pair never co-applied — ignoring that the
    rewrite also suppresses ``t_dst``'s *default* on every src-hit
    packet (here: a drop).
    """
    program, cfg, trace = _relocation_bug_fixture()
    profile = profile_program(program, cfg, trace)
    assert profile.hit_coapplied_with_table("t_src", "t_dst")

    compiled = compile_program(program, DEFAULT_TARGET)
    candidates = find_removal_candidates(compiled, profile)
    assert not any(
        c.dependency.src == "t_src" and c.dependency.dst == "t_dst"
        for c in candidates
    )

    # End to end: the full pipeline preserves behaviour on this trace.
    result = P2GO(program, cfg.clone(), trace, DEFAULT_TARGET,
                  phases=(2, 3)).run()
    report = compare_behavior(
        program, cfg.clone(),
        result.optimized_program, result.final_config.clone(),
        trace,
    )
    assert report.equivalent


def test_hit_coapplied_with_table_unit():
    profile = Profile(
        program_name="p",
        total_packets=2,
        apply_counts={"a": 2, "b": 2},
        hit_counts={"a": 1},
        action_counts={("a", "hit_act"): 1, ("b", "dflt"): 2},
        nonexclusive_sets={
            frozenset({("a", "hit_act"), ("b", "dflt")}),
            frozenset({("b", "dflt")}),
        },
    )
    profile._hit_pairs = {("a", "hit_act")}
    assert profile.hit_coapplied_with_table("a", "b")
    assert not profile.hit_coapplied_with_table("b", "a")
    assert not profile.hit_coapplied_with_table("a", "missing")


def test_previously_failing_seeds_pass_behavior_axis():
    """Seeds 4 and 10 reproduced the relocation bug before the fix."""
    for seed in (4, 10):
        assert run_axes(generate_case(seed), axes=("behavior",)) == []
