"""Tests for the enterprise (fit-recovery) program."""

import pytest

from repro.core import P2GO
from repro.programs import enterprise
from repro.sim import BehavioralSwitch
from repro.target import compile_program


@pytest.fixture(scope="module")
def program():
    return enterprise.build_program()


@pytest.fixture(scope="module")
def config(program):
    return enterprise.runtime_config(program)


class TestOversubscription:
    def test_initially_does_not_fit(self, program):
        result = compile_program(program, enterprise.TARGET)
        assert result.stages_used == 11
        assert not result.fits

    def test_compiler_still_produces_full_analysis(self, program):
        """§2.2: compile in simulation regardless of resources — the stage
        map, dependency graph and control graph are all available."""
        result = compile_program(program, enterprise.TARGET)
        assert len(result.stage_map()) == 11
        assert result.dependency_graph.edges()
        assert result.control_graph.path_count() > 0

    def test_config_validates(self, program, config):
        config.validate(program)


class TestTrafficBehavior:
    def test_combined_features_work(self, program, config):
        switch = BehavioralSwitch(program, config)
        results = switch.process_trace(enterprise.make_trace(2000))
        dropped = sum(1 for r in results if r.dropped)
        # Spoofed sources + blocked ports + untrusted DHCP all drop.
        assert dropped > 0
        hit_tables = set()
        for r in results:
            hit_tables.update(r.hit_tables())
        assert {"IPv4", "ACL_UDP", "ACL_DHCP", "sg_verdict"} <= hit_tables

    def test_legit_clients_pass_sourceguard(self, program, config):
        from repro.packets.craft import udp_packet

        switch = BehavioralSwitch(program, config)
        for ip in enterprise.ASSIGNED_CLIENT_IPS[:5]:
            result = switch.process(udp_packet(ip, "10.0.9.1", 1234, 9000))
            assert not result.dropped


class TestFitRecovery:
    @pytest.fixture(scope="class")
    def optimized(self, program, config):
        return P2GO(
            program, config, enterprise.make_trace(3000), enterprise.TARGET
        ).run()

    def test_optimized_fits(self, optimized):
        after = compile_program(
            optimized.optimized_program, enterprise.TARGET
        )
        assert after.fits

    def test_every_phase_contributed(self, optimized):
        stages = [o.stages for o in optimized.outcomes]
        assert stages[0] == 11
        assert stages == sorted(stages, reverse=True)
        assert stages[-1] <= enterprise.TARGET.num_stages

    def test_dns_branch_offloaded(self, optimized):
        assert set(optimized.offloaded_tables) == {
            "Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop",
        }
