"""Unit tests for classic pcap file I/O."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import PcapError
from repro.packets.craft import udp_packet
from repro.packets.pcap import (
    PCAP_MAGIC,
    PcapRecord,
    read_packet_bytes,
    read_pcap,
    write_pcap,
)


class TestRoundTrip:
    def test_bytes_round_trip(self, tmp_path):
        packets = [
            udp_packet("10.0.0.1", "10.0.0.2", 1, 2),
            udp_packet("10.0.0.3", "10.0.0.4", 3, 4, b"payload"),
            b"\x00" * 60,
        ]
        path = tmp_path / "t.pcap"
        write_pcap(path, packets)
        assert read_packet_bytes(path) == packets

    def test_records_round_trip_with_timestamps(self, tmp_path):
        records = [
            PcapRecord(ts_sec=100, ts_usec=5, data=b"abc"),
            PcapRecord(ts_sec=101, ts_usec=0, data=b"defgh"),
        ]
        path = tmp_path / "t.pcap"
        write_pcap(path, records)
        assert read_pcap(path) == records

    def test_synthetic_timestamps_preserve_order(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, [b"a", b"b", b"c"])
        records = read_pcap(path)
        usecs = [r.ts_usec for r in records]
        assert usecs == sorted(usecs)

    def test_empty_file_round_trip(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, [])
        assert read_pcap(path) == []

    @given(st.lists(st.binary(min_size=0, max_size=200), max_size=20))
    def test_round_trip_property(self, packets):
        import os
        import tempfile

        fd, path = tempfile.mkstemp(suffix=".pcap")
        os.close(fd)
        try:
            write_pcap(path, packets)
            assert read_packet_bytes(path) == packets
        finally:
            os.unlink(path)


class TestMalformedFiles:
    def test_truncated_global_header(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(struct.pack("<IHHiIII", 0xDEADBEEF, 2, 4, 0, 0, 0, 1))
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_swapped_endianness_reported(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(
            struct.pack("<IHHiIII", 0xD4C3B2A1, 2, 4, 0, 0, 0, 1)
        )
        with pytest.raises(PcapError, match="big-endian"):
            read_pcap(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(struct.pack("<IHHiIII", PCAP_MAGIC, 9, 9, 0, 0, 0, 1))
        with pytest.raises(PcapError, match="version"):
            read_pcap(path)

    def test_truncated_record_header(self, tmp_path):
        path = tmp_path / "bad.pcap"
        write_pcap(path, [b"abc"])
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])  # cut into the record payload
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_incl_len_beyond_orig_len(self, tmp_path):
        path = tmp_path / "bad.pcap"
        header = struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535, 1)
        record = struct.pack("<IIII", 0, 0, 10, 5) + b"0123456789"
        path.write_bytes(header + record)
        with pytest.raises(PcapError, match="incl_len"):
            read_pcap(path)
