"""Unit tests for repro.p4.types."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import P4SemanticsError
from repro.p4 import types


class TestMask:
    def test_small_widths(self):
        assert types.mask(1) == 1
        assert types.mask(8) == 0xFF
        assert types.mask(16) == 0xFFFF
        assert types.mask(32) == 0xFFFFFFFF

    def test_odd_width(self):
        assert types.mask(13) == 0x1FFF

    def test_zero_width_rejected(self):
        with pytest.raises(P4SemanticsError):
            types.mask(0)

    def test_negative_width_rejected(self):
        with pytest.raises(P4SemanticsError):
            types.mask(-4)


class TestTruncate:
    def test_in_range_unchanged(self):
        assert types.truncate(200, 8) == 200

    def test_overflow_wraps(self):
        assert types.truncate(256, 8) == 0
        assert types.truncate(257, 8) == 1

    def test_negative_wraps_twos_complement(self):
        assert types.truncate(-1, 8) == 255

    @given(st.integers(min_value=0), st.integers(min_value=1, max_value=64))
    def test_result_always_fits(self, value, width):
        assert 0 <= types.truncate(value, width) <= types.mask(width)


class TestWrapArithmetic:
    def test_add_no_wrap(self):
        assert types.wrap_add(100, 50, 8) == 150

    def test_add_wraps(self):
        assert types.wrap_add(255, 1, 8) == 0

    def test_sub_no_wrap(self):
        assert types.wrap_sub(100, 50, 8) == 50

    def test_sub_wraps_below_zero(self):
        assert types.wrap_sub(0, 1, 8) == 255

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_add_sub_inverse(self, a, b):
        assert types.wrap_sub(types.wrap_add(a, b, 16), b, 16) == a


class TestBytesForBits:
    def test_exact_bytes(self):
        assert types.bytes_for_bits(8) == 1
        assert types.bytes_for_bits(32) == 4

    def test_rounds_up(self):
        assert types.bytes_for_bits(1) == 1
        assert types.bytes_for_bits(9) == 2
        assert types.bytes_for_bits(13) == 2

    def test_zero(self):
        assert types.bytes_for_bits(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(P4SemanticsError):
            types.bytes_for_bits(-1)


class TestCheckFits:
    def test_accepts_max(self):
        assert types.check_fits(255, 8) == 255

    def test_rejects_overflow(self):
        with pytest.raises(P4SemanticsError):
            types.check_fits(256, 8)

    def test_rejects_negative(self):
        with pytest.raises(P4SemanticsError):
            types.check_fits(-1, 8)


class TestFormatValue:
    def test_narrow_decimal(self):
        assert types.format_value(42, 16) == "42"

    def test_wide_hex(self):
        assert types.format_value(0xDEAD, 32) == "0xdead"


def test_reserved_ports_distinct():
    assert types.DROP_PORT != types.CPU_PORT
