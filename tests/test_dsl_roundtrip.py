"""Round-trip tests: parse(print(program)) preserves the program.

P2GO hands optimized source back to the programmer (§2.2), so the printer
must emit everything the parser reads — verified on all four evaluation
programs, on every phase's rewritten output, and property-tested on
generated control trees.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.p4.control import Apply, If, Seq, control_equal, normalize
from repro.p4.dsl import parse_program, print_program
from repro.p4.expressions import (
    BinOp,
    Const,
    FieldRef,
    LAnd,
    LNot,
    LOr,
    ValidExpr,
)
from repro.programs import (
    example_firewall,
    failure_detection,
    nat_gre,
    sourceguard,
)


def assert_round_trips(program):
    source = print_program(program)
    parsed = parse_program(source, program.name)
    assert parsed.header_types == program.header_types
    assert parsed.headers == program.headers
    assert parsed.registers == program.registers
    assert parsed.actions == program.actions
    assert parsed.tables == program.tables
    assert parsed.parser == program.parser
    assert control_equal(
        normalize(parsed.ingress), normalize(program.ingress)
    )


PROGRAMS = {
    "example_firewall": example_firewall.build_program,
    "nat_gre": nat_gre.build_program,
    "sourceguard": sourceguard.build_program,
    "failure_detection": failure_detection.build_program,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_example_programs_round_trip(name):
    assert_round_trips(PROGRAMS[name]())


def test_optimized_program_round_trips(firewall_result):
    """The fully optimized Ex. 1 (with To_Ctl and miss-branch rewrites)
    still renders and parses."""
    assert_round_trips(firewall_result.optimized_program)


def test_instrumented_program_round_trips(firewall_program):
    from repro.core.instrument import instrument

    assert_round_trips(instrument(firewall_program).program)


# ----------------------------------------------------------------------
# Property tests over generated control trees


TABLES = ("t0", "t1", "t2", "t3", "t4", "t5")

conditions = st.sampled_from(
    [
        ValidExpr("h"),
        LNot(ValidExpr("h")),
        BinOp(">=", FieldRef("h", "f"), Const(128)),
        BinOp("==", FieldRef("h", "g"), Const(5)),
        LAnd(ValidExpr("h"), BinOp("<", FieldRef("h", "f"), Const(9))),
        LOr(ValidExpr("h"), BinOp("!=", FieldRef("h", "g"), Const(0))),
    ]
)


@st.composite
def control_trees(draw):
    """A random control tree applying a subset of TABLES (each once)."""
    tables = list(draw(st.permutations(TABLES)))

    def build(depth):
        if not tables:
            return None
        choice = draw(
            st.sampled_from(
                ["apply", "if", "seq"] if depth < 3 else ["apply"]
            )
        )
        if choice == "apply":
            table = tables.pop()
            use_miss = draw(st.booleans()) and depth < 3
            on_miss = build(depth + 1) if use_miss else None
            return Apply(table, on_miss=on_miss)
        if choice == "if":
            cond = draw(conditions)
            then_node = build(depth + 1)
            if then_node is None:
                return None
            use_else = draw(st.booleans())
            else_node = build(depth + 1) if use_else else None
            return If(cond, then_node, else_node)
        children = []
        for _ in range(draw(st.integers(1, 3))):
            child = build(depth + 1)
            if child is not None:
                children.append(child)
        if not children:
            return None
        return Seq(children)

    root = build(0)
    return root if root is not None else Seq([])


@settings(max_examples=60, deadline=None)
@given(control_trees())
def test_generated_control_trees_round_trip(tree):
    from repro.p4 import ProgramBuilder
    from repro.p4.control import tables_applied

    b = ProgramBuilder("generated")
    b.header_type("h_t", [("f", 16), ("g", 8)])
    b.header("h", "h_t")
    b.parser_state("start", extracts=["h"])
    b.action("d", [])
    for table in TABLES:
        b.table(table, keys=[("h.f", "exact")], actions=["d"])
    b.ingress(tree)
    program = b.build()
    source = print_program(program)
    parsed = parse_program(source, "generated")
    assert control_equal(
        normalize(parsed.ingress), normalize(program.ingress)
    )
    assert tables_applied(parsed.ingress) == tables_applied(program.ingress)
