"""Unit tests for the DSL parser (source → IR)."""

import pytest

from repro.exceptions import DslSyntaxError
from repro.p4.dsl import parse_program
from repro.p4.expressions import BinOp, Const, FieldRef, LAnd, LNot, ValidExpr
from repro.p4.control import Apply, If, Seq
from repro.p4.tables import MatchKind

MINIMAL = """
header_type h_t { fields { f : 16; g : 8; } }
header h_t h;
parser start { extract(h); return accept; }
"""


class TestDeclarations:
    def test_header_type_and_instance(self):
        program = parse_program(MINIMAL, "p")
        assert program.header_types["h_t"].field_width("f") == 16
        assert not program.headers["h"].metadata

    def test_metadata_instance(self):
        program = parse_program(
            MINIMAL + "metadata h_t m;\n", "p"
        )
        assert program.headers["m"].metadata

    def test_register(self):
        src = MINIMAL + "register r { width : 32; instance_count : 128; }"
        program = parse_program(src, "p")
        assert program.registers["r"].width == 32
        assert program.registers["r"].size == 128

    def test_action_with_params(self):
        src = MINIMAL + """
action set_f(v) { modify_field(h.f, v); }
"""
        program = parse_program(src, "p")
        action = program.actions["set_f"]
        assert action.parameters == ("v",)
        assert len(action.primitives) == 1

    def test_all_primitives_parse(self):
        src = MINIMAL + """
register r { width : 8; instance_count : 16; }
metadata h_t m;
action everything() {
    modify_field(m.f, 1);
    add_to_field(m.f, 2);
    subtract_from_field(m.f, 1);
    drop();
    no_op();
    set_egress_port(3);
    send_to_controller(7);
    register_read(m.g, r, 0);
    register_write(r, 0, m.g);
    hash(m.f, crc32_a, {h.f, h.g}, size(r));
    min(m.f, m.f, m.g);
}
"""
        program = parse_program(src, "p")
        assert len(program.actions["everything"].primitives) == 11

    def test_table_clauses(self):
        src = MINIMAL + """
action nop2() { no_op(); }
table t {
    reads { h.f : exact; h.g : lpm; }
    actions { nop2; }
    default_action : nop2;
    size : 99;
}
"""
        program = parse_program(src, "p")
        table = program.tables["t"]
        assert table.size == 99
        assert table.keys[0].kind is MatchKind.EXACT
        assert table.keys[1].kind is MatchKind.LPM
        assert table.default_action == "nop2"

    def test_default_action_args(self):
        src = MINIMAL + """
action set_f(v) { modify_field(h.f, v); }
table t {
    reads { h.f : exact; }
    actions { set_f; }
    default_action : set_f(42);
}
"""
        program = parse_program(src, "p")
        assert program.tables["t"].default_action_args == (42,)

    def test_parser_select(self):
        src = """
header_type e_t { fields { ty : 16; } }
header_type i_t { fields { p : 8; } }
header e_t eth;
header i_t ip;
parser start {
    extract(eth);
    return select(eth.ty) { 0x800 : parse_ip; default : accept; }
}
parser parse_ip { extract(ip); return accept; }
"""
        program = parse_program(src, "p")
        assert program.parser.start == "start"
        state = program.parser.states["start"]
        assert state.transitions == {0x800: "parse_ip"}


class TestControl:
    def test_apply_and_if(self):
        src = MINIMAL + """
action d() { drop(); }
table t { reads { h.f : exact; } actions { d; } }
control ingress {
    if (valid(h)) { apply(t); }
}
"""
        program = parse_program(src, "p")
        node = program.ingress
        assert isinstance(node, If)
        assert node.condition == ValidExpr("h")
        assert isinstance(node.then_node, Apply)

    def test_if_else(self):
        src = MINIMAL + """
action d() { drop(); }
table t1 { reads { h.f : exact; } actions { d; } }
table t2 { reads { h.g : exact; } actions { d; } }
control ingress {
    if (h.f == 1) { apply(t1); } else { apply(t2); }
}
"""
        program = parse_program(src, "p")
        assert program.ingress.else_node is not None

    def test_hit_miss_blocks(self):
        src = MINIMAL + """
action d() { drop(); }
table t1 { reads { h.f : exact; } actions { d; } }
table t2 { reads { h.g : exact; } actions { d; } }
control ingress {
    apply(t1) {
        miss {
            apply(t2);
        }
    }
}
"""
        program = parse_program(src, "p")
        node = program.ingress
        assert isinstance(node, Apply)
        assert node.on_miss is not None
        assert node.on_hit is None

    def test_expression_precedence(self):
        src = MINIMAL + """
action d() { drop(); }
table t { reads { h.f : exact; } actions { d; } }
control ingress {
    if (valid(h) and not h.f >= 128) { apply(t); }
}
"""
        program = parse_program(src, "p")
        cond = program.ingress.condition
        assert isinstance(cond, LAnd)
        assert isinstance(cond.right, LNot)
        assert isinstance(cond.right.operand, BinOp)


class TestErrors:
    def test_unknown_declaration(self):
        with pytest.raises(DslSyntaxError):
            parse_program("frobnicate x;", "p")

    def test_unknown_primitive(self):
        with pytest.raises(DslSyntaxError):
            parse_program(
                MINIMAL + "action a() { explode(); }", "p"
            )

    def test_unknown_match_kind(self):
        with pytest.raises(DslSyntaxError):
            parse_program(
                MINIMAL + "table t { reads { h.f : fuzzy; } }", "p"
            )

    def test_unknown_table_clause(self):
        with pytest.raises(DslSyntaxError):
            parse_program(
                MINIMAL + "table t { wombats { } }", "p"
            )

    def test_missing_semicolon(self):
        with pytest.raises(DslSyntaxError):
            parse_program(
                MINIMAL + "register r { width : 8 instance_count : 4; }",
                "p",
            )

    def test_unknown_control_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_program(MINIMAL + "control sideways { }", "p")

    def test_semantic_validation_still_runs(self):
        from repro.exceptions import P4ValidationError

        with pytest.raises(P4ValidationError):
            parse_program(
                MINIMAL + "control ingress { apply(ghost); }", "p"
            )
