"""Unit tests for tables and register arrays."""

import pytest

from repro.exceptions import P4SemanticsError
from repro.p4.expressions import FieldRef
from repro.p4.registers import RegisterArray
from repro.p4.tables import MatchKind, Table, TableKey


class TestMatchKind:
    def test_exact_is_sram(self):
        assert not MatchKind.EXACT.needs_tcam

    def test_lpm_and_ternary_need_tcam(self):
        assert MatchKind.LPM.needs_tcam
        assert MatchKind.TERNARY.needs_tcam


class TestTable:
    def _table(self, **kwargs):
        defaults = dict(
            name="t",
            keys=(TableKey(FieldRef("h", "f"), MatchKind.EXACT),),
            actions=("a",),
            size=16,
        )
        defaults.update(kwargs)
        return Table(**defaults)

    def test_positive_size_required(self):
        with pytest.raises(P4SemanticsError):
            self._table(size=0)

    def test_duplicate_actions_rejected(self):
        with pytest.raises(P4SemanticsError):
            self._table(actions=("a", "a"))

    def test_is_ternary(self):
        lpm = self._table(
            keys=(TableKey(FieldRef("h", "f"), MatchKind.LPM),)
        )
        assert lpm.is_ternary
        assert not self._table().is_ternary

    def test_keyless_table_is_not_ternary(self):
        assert not self._table(keys=()).is_ternary

    def test_resized_preserves_everything_else(self):
        t = self._table()
        r = t.resized(99)
        assert r.size == 99
        assert r.keys == t.keys
        assert r.actions == t.actions
        assert t.size == 16  # original untouched

    def test_all_action_names_appends_default(self):
        t = self._table(actions=("a", "b"), default_action="c")
        assert t.all_action_names() == ("a", "b", "c")

    def test_all_action_names_no_duplicate_default(self):
        t = self._table(actions=("a", "b"), default_action="b")
        assert t.all_action_names() == ("a", "b")

    def test_match_fields(self):
        t = self._table()
        assert t.match_fields == (FieldRef("h", "f"),)


class TestRegisterArray:
    def test_memory_bytes_byte_aligned_cells(self):
        assert RegisterArray("r", width=32, size=100).memory_bytes == 400
        assert RegisterArray("r", width=1, size=100).memory_bytes == 100
        assert RegisterArray("r", width=9, size=10).memory_bytes == 20

    def test_positive_width_required(self):
        with pytest.raises(P4SemanticsError):
            RegisterArray("r", width=0, size=10)

    def test_positive_size_required(self):
        with pytest.raises(P4SemanticsError):
            RegisterArray("r", width=8, size=0)

    def test_resized(self):
        r = RegisterArray("r", width=8, size=100)
        s = r.resized(50)
        assert s.size == 50
        assert s.width == 8
        assert r.size == 100
