"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_arg_parser, main
from repro.p4.dsl import print_program
from repro.packets.pcap import write_pcap
from repro.programs import nat_gre
from tests.conftest import build_toy_program


@pytest.fixture
def toy_files(tmp_path):
    """A toy program + config + trace on disk, CLI-style."""
    program = build_toy_program()
    prog_path = tmp_path / "toy.p4"
    prog_path.write_text(print_program(program))

    config_path = tmp_path / "config.json"
    config_path.write_text(
        json.dumps(
            {
                "entries": {
                    "fib": [
                        {"match": [[0x0A000000, 8]], "action": "fwd",
                         "args": [3]},
                        {"match": [[0, 0]], "action": "fwd", "args": [1]},
                    ],
                    "acl": [{"match": [53], "action": "deny"}],
                }
            }
        )
    )

    from repro.packets.craft import udp_packet

    trace_path = tmp_path / "trace.pcap"
    write_pcap(
        trace_path,
        [
            udp_packet("1.1.1.1", "10.0.0.9", 5, 53),
            udp_packet("1.1.1.1", "10.0.0.9", 5, 80),
            udp_packet("1.1.1.1", "99.0.0.9", 5, 80),
        ],
    )
    return prog_path, config_path, trace_path


class TestCompile:
    def test_compile_prints_stage_map(self, toy_files, capsys):
        prog_path, _config, _trace = toy_files
        assert main(["compile", str(prog_path)]) == 0
        out = capsys.readouterr().out
        assert "stages used" in out
        assert "fib" in out

    def test_compile_custom_target(self, toy_files, tmp_path, capsys):
        prog_path, _config, _trace = toy_files
        target_path = tmp_path / "target.json"
        target_path.write_text(json.dumps({"num_stages": 2,
                                           "name": "tiny"}))
        main(["compile", str(prog_path), "--target", str(target_path)])
        out = capsys.readouterr().out
        assert "tiny" in out

    def test_nonzero_exit_when_not_fitting(self, toy_files, tmp_path):
        prog_path, _config, _trace = toy_files
        target_path = tmp_path / "target.json"
        target_path.write_text(json.dumps({"num_stages": 1}))
        assert (
            main(["compile", str(prog_path), "--target", str(target_path)])
            == 2
        )

    def test_missing_file_reports_error(self, capsys):
        assert main(["compile", "no_such.p4"]) == 1
        assert "error" in capsys.readouterr().err


class TestProfile:
    def test_profile_outputs_rates(self, toy_files, capsys):
        prog_path, config_path, trace_path = toy_files
        assert (
            main(
                [
                    "profile",
                    str(prog_path),
                    "--config",
                    str(config_path),
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profiled 3 packets" in out
        assert "fib" in out and "100.00%" in out

    def test_malformed_dsl_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.p4"
        bad.write_text("table {")
        assert main(["compile", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestOptimize:
    def test_optimize_nat_gre_end_to_end(self, tmp_path, capsys):
        program = nat_gre.build_program()
        prog_path = tmp_path / "nat_gre.p4"
        prog_path.write_text(print_program(program))

        config = nat_gre.runtime_config()
        entries = {}
        for table, table_entries in config.entries.items():
            entries[table] = [
                {
                    "match": [
                        list(m) if isinstance(m, tuple) else m
                        for m in e.match
                    ],
                    "action": e.action,
                    "args": list(e.action_args),
                }
                for e in table_entries
            ]
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps({"entries": entries}))

        trace_path = tmp_path / "trace.pcap"
        write_pcap(trace_path, nat_gre.make_trace(500))

        target_path = tmp_path / "target.json"
        from dataclasses import asdict

        target_path.write_text(json.dumps(asdict(nat_gre.TARGET)))

        out_path = tmp_path / "optimized.p4"
        report_path = tmp_path / "report.txt"
        code = main(
            [
                "optimize",
                str(prog_path),
                "--config", str(config_path),
                "--trace", str(trace_path),
                "--target", str(target_path),
                "-o", str(out_path),
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stages: 4 -> 3" in out
        assert out_path.exists()
        # The written program parses back and shows the rewrite.
        from repro.p4.dsl import parse_program

        optimized = parse_program(out_path.read_text(), "optimized")
        from repro.p4.control import find_apply

        nat_apply = find_apply(optimized.ingress, "nat")
        assert nat_apply.on_miss is not None
        assert "removed dependency" in report_path.read_text()

    def test_optimize_workers_flag(self, toy_files, capsys):
        prog_path, config_path, trace_path = toy_files
        code = main(
            [
                "optimize",
                str(prog_path),
                "--config", str(config_path),
                "--trace", str(trace_path),
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "(2 workers)" in capsys.readouterr().out

    def test_optimize_workers_env(self, toy_files, capsys, monkeypatch):
        prog_path, config_path, trace_path = toy_files
        monkeypatch.setenv("P2GO_WORKERS", "2")
        code = main(
            [
                "optimize",
                str(prog_path),
                "--config", str(config_path),
                "--trace", str(trace_path),
            ]
        )
        assert code == 0
        assert "(2 workers)" in capsys.readouterr().out


class TestStore:
    def optimize(self, toy_files, extra):
        prog_path, config_path, trace_path = toy_files
        return main(
            [
                "optimize",
                str(prog_path),
                "--config", str(config_path),
                "--trace", str(trace_path),
            ]
            + extra
        )

    def test_second_run_warm_starts_from_store(
        self, toy_files, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert self.optimize(toy_files, ["--store", str(store)]) == 0
        capsys.readouterr()
        assert self.optimize(toy_files, ["--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "persistent store:" in out
        # Warm run: both the compile and the profile line report zero
        # executions — everything hydrated from disk.
        assert out.count(" 0 executed (") == 2

    def test_store_stats_and_clear(self, toy_files, tmp_path, capsys):
        store = tmp_path / "store"
        self.optimize(toy_files, ["--store", str(store)])
        capsys.readouterr()

        assert main(["store", "stats", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "store root:" in out
        # Per-kind breakdown with human-readable sizes, one line each.
        assert "compile entries:   " in out
        assert "profile entries:   " in out
        assert "compile entries:   0 " not in out  # entries persisted
        assert "profile entries:   0 " not in out
        assert "KiB" in out or "MiB" in out
        assert "cap" in out

        assert main(["store", "clear", "--store", str(store)]) == 0
        assert "removed" in capsys.readouterr().out
        main(["store", "stats", "--store", str(store)])
        out = capsys.readouterr().out
        assert "compile entries:   0 (0 B)" in out
        assert "profile entries:   0 (0 B)" in out

    def test_env_var_enables_store(
        self, toy_files, tmp_path, capsys, monkeypatch
    ):
        store = tmp_path / "env-store"
        monkeypatch.setenv("P2GO_STORE", str(store))
        assert self.optimize(toy_files, []) == 0
        assert "persistent store:" in capsys.readouterr().out
        assert (store / "v1").exists()

    def test_no_store_beats_env_var(
        self, toy_files, tmp_path, capsys, monkeypatch
    ):
        store = tmp_path / "env-store"
        monkeypatch.setenv("P2GO_STORE", str(store))
        assert self.optimize(toy_files, ["--no-store"]) == 0
        assert "persistent store:" not in capsys.readouterr().out
        assert not store.exists()

    def test_no_store_by_default(self, toy_files, capsys, monkeypatch):
        monkeypatch.delenv("P2GO_STORE", raising=False)
        assert self.optimize(toy_files, []) == 0
        assert "persistent store:" not in capsys.readouterr().out


class TestDemo:
    def test_demo_nat_gre(self, capsys):
        assert main(["demo", "nat_gre"]) == 0
        out = capsys.readouterr().out
        assert "Removing Deps." in out

    def test_unknown_demo(self, capsys):
        assert main(["demo", "nope"]) == 2
        assert "unknown demo" in capsys.readouterr().err


class TestFuzz:
    def test_healthy_iteration_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "0", "--iterations", "1"]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_broken_optimizer_exits_nonzero(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--seed", "3",
                "--iterations", "1",
                "--axes", "behavior",
                "--break-optimizer",
                "--repro-dir", str(tmp_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "shrunk to" in out
        repros = list(tmp_path.glob("repro-*.json"))
        assert len(repros) == 1
        # The written repro replays clean under the real optimizer.
        assert main(["fuzz", "--replay", str(repros[0])]) == 0
        assert "no longer fails" in capsys.readouterr().out

    def test_unknown_axis_rejected(self, capsys):
        assert main(["fuzz", "--axes", "bogus"]) == 2
        assert "unknown axes" in capsys.readouterr().err


class TestFleet:
    """``p2go fleet``: a built-in fabric over one shared store."""

    FAST = ["--size", "2", "--families", "nat_gre,cgnat",
            "--packets", "120"]

    def test_fleet_prints_report_and_writes_json(
        self, tmp_path, capsys
    ):
        store = tmp_path / "store"
        summary = tmp_path / "fleet.json"
        assert main(
            ["fleet", *self.FAST, "--store", str(store),
             "--json", str(summary)]
        ) == 0
        out = capsys.readouterr().out
        assert "P2GO fleet report — 2 switches" in out
        assert "sw00-nat_gre" in out and "sw01-cgnat" in out
        assert "stages reclaimed:" in out
        assert "cross-switch reuse" in out
        assert str(store) in out
        payload = json.loads(summary.read_text())
        assert payload["aggregate"]["switches"] == 2
        assert len(payload["switches"]) == 2
        assert (store / "v1").exists()

    def test_fleet_report_file(self, tmp_path, capsys):
        report = tmp_path / "fleet.txt"
        assert main(
            ["fleet", *self.FAST, "--no-store",
             "--report", str(report)]
        ) == 0
        assert "fleet report written to" in capsys.readouterr().out
        assert "stages reclaimed:" in report.read_text()

    def test_no_store_beats_env_var(self, tmp_path, capsys, monkeypatch):
        store = tmp_path / "env-store"
        monkeypatch.setenv("P2GO_STORE", str(store))
        assert main(["fleet", *self.FAST, "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "shared store:" not in out
        assert not store.exists()

    def test_env_var_enables_store(self, tmp_path, capsys, monkeypatch):
        store = tmp_path / "env-store"
        monkeypatch.setenv("P2GO_STORE", str(store))
        assert main(["fleet", *self.FAST]) == 0
        assert "shared store:" in capsys.readouterr().out
        assert (store / "v1").exists()

    def test_unknown_family_reports_error(self, capsys):
        assert main(
            ["fleet", "--size", "1", "--families", "no_such_family"]
        ) == 2
        assert "unknown program family" in capsys.readouterr().err


class TestExplore:
    """``p2go explore``: a design-space sweep with a Pareto frontier."""

    FAST = ["--grid", "stages=6,12", "--packets", "300"]

    def test_flags_parse(self):
        args = build_arg_parser().parse_args(
            ["explore", "--programs", "example_firewall", "--grid",
             "stages=3,6;sram=8", "--sample", "5", "--seed", "9",
             "--workers", "2", "--no-store"]
        )
        assert args.programs == "example_firewall"
        assert args.grid == "stages=3,6;sram=8"
        assert args.sample == 5 and args.seed == 9
        assert args.workers == 2 and args.no_store

    def test_explore_prints_report_and_writes_json(
        self, tmp_path, capsys
    ):
        summary = tmp_path / "explore.json"
        assert main(
            ["explore", *self.FAST, "--store", str(tmp_path / "store"),
             "--json", str(summary)]
        ) == 0
        out = capsys.readouterr().out
        assert "P2GO design-space exploration" in out
        assert "cross-point reuse" in out
        assert "smallest fitting shape" in out
        payload = json.loads(summary.read_text())
        assert set(payload) == {
            "aggregate", "breakpoints", "frontier", "points", "space",
        }
        assert payload["space"]["points_run"] == 8
        assert payload["frontier"]["example_firewall"]
        assert payload["breakpoints"]["example_firewall"][
            "smallest_fit"
        ] is not None
        for point in payload["points"]:
            assert point["status"] == "ok"
            assert point["metrics"]["compile_count"] > 0

    def test_ephemeral_store_still_reuses_across_points(
        self, capsys, monkeypatch
    ):
        # No --store, no $P2GO_STORE: the sweep shares a per-run
        # temporary store, so cross-point reuse is non-zero anyway.
        monkeypatch.delenv("P2GO_STORE", raising=False)
        assert main(["explore", *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "cross-point reuse 0.0%" not in out
        assert "p2go-explore-" in out

    def test_infeasible_only_grid_exits_nonzero(self, capsys):
        assert main(
            ["explore", "--grid", "stages=12;sram=1",
             "--packets", "300"]
        ) == 1
        captured = capsys.readouterr()
        assert "empty frontier" in captured.err
        assert "infeasible points: 4" in captured.out

    def test_bad_grid_exits_with_usage_error(self, capsys):
        assert main(["explore", "--grid", "stages=twelve"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_unknown_program_reports_error(self, capsys):
        assert main(
            ["explore", "--programs", "no_such_family",
             "--grid", "stages=6"]
        ) == 2
        assert "unknown program family" in capsys.readouterr().err


class TestServe:
    def test_generator_scenario_completes_a_swap_cycle(
        self, tmp_path, capsys
    ):
        """The acceptance scenario end to end: the built-in firewall,
        a scripted drift feed, at least one detect -> warm reoptimize
        -> equivalence-gated swap, zero misprocessed packets."""
        stats_path = tmp_path / "stats.json"
        assert main(
            [
                "serve",
                "--feed", "generator",
                "--max-packets", "1200",
                "--baseline-packets", "2000",
                "--window", "300",
                "--tolerance", "0.15",
                "--workers", "0",
                "--quiet",
                "--json", str(stats_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "P2GO serve report" in out
        assert "promoted" in out
        stats = json.loads(stats_path.read_text())
        assert stats["packets_in"] == 1200
        assert stats["packets_processed"] == 1200
        assert stats["misprocessed"] == 0
        assert stats["swaps"] >= 1
        assert stats["events"][0]["promoted"] is True
        assert stats["events"][0]["swap_seconds"] > 0

    def test_trace_feed_with_explicit_program(
        self, toy_files, tmp_path, capsys
    ):
        prog_path, config_path, trace_path = toy_files
        out_path = tmp_path / "served.p4"
        assert main(
            [
                "serve", str(prog_path),
                "--config", str(config_path),
                "--trace", str(trace_path),
                "--feed", "trace",
                "--repeat", "4",
                "--window", "6",
                "--workers", "0",
                "--quiet",
                "-o", str(out_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "P2GO serve report" in out
        assert "misprocessed" in out
        assert out_path.exists()

    def test_explicit_program_requires_trace(self, toy_files, capsys):
        prog_path, config_path, _trace = toy_files
        assert main(
            ["serve", str(prog_path), "--config", str(config_path),
             "--feed", "trace"]
        ) == 2
        assert "--trace" in capsys.readouterr().err

    def test_generator_feed_needs_builtin_program(
        self, toy_files, capsys
    ):
        prog_path, config_path, trace_path = toy_files
        assert main(
            ["serve", str(prog_path), "--config", str(config_path),
             "--trace", str(trace_path), "--feed", "generator"]
        ) == 2
        assert "feed generator" in capsys.readouterr().err
