"""Direct unit tests for expression evaluation and action execution."""

import pytest

from repro.exceptions import SimulationError
from repro.p4 import (
    AddToField,
    BinOp,
    Const,
    FieldRef,
    LAnd,
    LNot,
    LOr,
    ModifyField,
    ParamRef,
    ProgramBuilder,
    RegisterSize,
    SubtractFromField,
    ValidExpr,
)
from repro.sim.action_interp import Phv, eval_expr, execute_action
from repro.sim.state import SwitchState


@pytest.fixture
def env():
    b = ProgramBuilder("interp")
    b.header_type("h_t", [("f", 8), ("g", 16)])
    b.header("h", "h_t")
    b.metadata("m", [("x", 8)])
    b.register("reg", width=8, size=4)
    b.action("nop2", [])
    program = b.build()
    phv = Phv(program, {"h": {"f": 10, "g": 300}}, {"h"})
    state = SwitchState(program)
    return program, phv, state


class TestEvalExpr:
    def _eval(self, env, expr, args=None):
        _program, phv, state = env
        return eval_expr(expr, phv, state, args or {})

    def test_field_read(self, env):
        assert self._eval(env, FieldRef("h", "f")) == 10

    def test_invalid_header_reads_zero(self, env):
        program, phv, state = env
        phv.set_invalid("h")
        assert eval_expr(FieldRef("h", "f"), phv, state, {}) == 0

    def test_const_and_param(self, env):
        assert self._eval(env, Const(7)) == 7
        assert self._eval(env, ParamRef("p"), {"p": 42}) == 42

    def test_unbound_param_raises(self, env):
        with pytest.raises(SimulationError):
            self._eval(env, ParamRef("ghost"))

    def test_register_size(self, env):
        assert self._eval(env, RegisterSize("reg")) == 4

    def test_valid_expr(self, env):
        assert self._eval(env, ValidExpr("h")) == 1
        assert self._eval(env, ValidExpr("m")) == 1  # metadata always valid

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("==", 5, 5, 1), ("==", 5, 6, 0),
            ("!=", 5, 6, 1), ("!=", 5, 5, 0),
            ("<", 4, 5, 1), ("<", 5, 5, 0),
            ("<=", 5, 5, 1), ("<=", 6, 5, 0),
            (">", 6, 5, 1), (">", 5, 5, 0),
            (">=", 5, 5, 1), (">=", 4, 5, 0),
            ("+", 3, 4, 7),
            ("&", 0b1100, 0b1010, 0b1000),
            ("|", 0b1100, 0b1010, 0b1110),
            ("^", 0b1100, 0b1010, 0b0110),
        ],
    )
    def test_binops(self, env, op, left, right, expected):
        expr = BinOp(op, Const(left), Const(right))
        assert self._eval(env, expr) == expected

    def test_subtraction_can_go_negative_until_written(self, env):
        assert self._eval(env, BinOp("-", Const(3), Const(5))) == -2

    def test_logical_operators(self, env):
        t, f = Const(1), Const(0)
        assert self._eval(env, LAnd(t, t)) == 1
        assert self._eval(env, LAnd(t, f)) == 0
        assert self._eval(env, LOr(f, t)) == 1
        assert self._eval(env, LOr(f, f)) == 0
        assert self._eval(env, LNot(f)) == 1

    def test_logical_nests_with_comparisons(self, env):
        expr = LAnd(
            ValidExpr("h"),
            BinOp(">=", FieldRef("h", "g"), Const(300)),
        )
        assert self._eval(env, expr) == 1


class TestExecuteAction:
    def test_modify_truncates_to_width(self, env):
        program, phv, state = env
        from repro.p4.actions import Action

        action = Action(
            name="a",
            primitives=(ModifyField(FieldRef("h", "f"), Const(0x1FF)),),
        )
        execute_action(program, action, (), phv, state)
        assert phv.read(FieldRef("h", "f")) == 0xFF

    def test_add_wraps(self, env):
        program, phv, state = env
        from repro.p4.actions import Action

        phv.write(FieldRef("h", "f"), 250)
        action = Action(
            name="a",
            primitives=(AddToField(FieldRef("h", "f"), Const(10)),),
        )
        execute_action(program, action, (), phv, state)
        assert phv.read(FieldRef("h", "f")) == 4  # (250+10) mod 256

    def test_subtract_wraps(self, env):
        program, phv, state = env
        from repro.p4.actions import Action

        phv.write(FieldRef("h", "f"), 1)
        action = Action(
            name="a",
            primitives=(SubtractFromField(FieldRef("h", "f"), Const(3)),),
        )
        execute_action(program, action, (), phv, state)
        assert phv.read(FieldRef("h", "f")) == 254

    def test_arity_checked(self, env):
        program, phv, state = env
        from repro.p4.actions import Action

        action = Action(
            name="a",
            parameters=("v",),
            primitives=(ModifyField(FieldRef("h", "f"), ParamRef("v")),),
        )
        with pytest.raises(SimulationError):
            execute_action(program, action, (), phv, state)
        execute_action(program, action, (9,), phv, state)
        assert phv.read(FieldRef("h", "f")) == 9

    def test_add_header_zero_fills(self, env):
        program, phv, state = env
        from repro.p4.actions import Action, AddHeader, RemoveHeader

        phv.set_invalid("h")
        action = Action(name="a", primitives=(AddHeader("h"),))
        execute_action(program, action, (), phv, state)
        assert phv.is_valid("h")
        assert phv.read(FieldRef("h", "f")) == 0
        action2 = Action(name="b", primitives=(RemoveHeader("h"),))
        execute_action(program, action2, (), phv, state)
        assert not phv.is_valid("h")
