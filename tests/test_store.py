"""The persistent cross-run session store (ISSUE 5).

Covers the durability contract of :class:`~repro.core.store.SessionStore`
(round trips, versioned layout, LRU eviction, corruption quarantine,
lock-free multi-process sharing), its wiring into
:class:`~repro.core.session.OptimizationContext` (memo → disk → execute,
disk hits never attributed to perf windows, flush on commit/close and
after parallel waves), and the acceptance bars: a warm second run
performs **zero compiles and zero replays**, and a store-enabled
pipeline is canonically identical to a store-less one for every phase
order — serially and under four workers.
"""

import json
import os
import pickle
import threading
import time

import pytest

from repro.core.pipeline import P2GO
from repro.core.report import render_report
from repro.core.session import OptimizationContext
from repro.core.store import (
    SCHEMA_VERSION,
    SessionStore,
    code_fingerprint,
    default_store_root,
    resolve_store,
)
from repro.programs import example_firewall as fw
from repro.target.model import DEFAULT_TARGET

from .conftest import build_toy_program, toy_config
from .test_parallel import canonical
from .test_passes import ORDERS, assert_equivalent

#: Enough for every firewall phase to probe, fast enough to afford the
#: order × workers × cold/warm matrix below.
TRACE_PACKETS = 1200


def make_trace():
    from repro.packets.craft import udp_packet

    return [
        udp_packet("1.1.1.1", "10.0.0.9", 5, 53) for _ in range(4)
    ] + [
        udp_packet("2.2.2.2", "10.0.0.9", 5, 80) for _ in range(4)
    ]


def make_ctx(store, **kwargs):
    return OptimizationContext(
        build_toy_program(), toy_config(), make_trace(), DEFAULT_TARGET,
        store=store, **kwargs,
    )


def entry_paths(store, kind):
    return sorted(
        path
        for path in store._dir(kind).iterdir()
        if not path.name.endswith(".tmp")
    )


class TestResolveStore:
    def test_false_means_no_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("P2GO_STORE", str(tmp_path))
        assert resolve_store(False) is None

    def test_none_without_env_means_no_store(self, monkeypatch):
        monkeypatch.delenv("P2GO_STORE", raising=False)
        assert resolve_store(None) is None

    def test_none_with_env_roots_there(self, monkeypatch, tmp_path):
        monkeypatch.setenv("P2GO_STORE", str(tmp_path / "s"))
        store = resolve_store(None)
        assert store is not None
        assert store.root == tmp_path / "s"

    def test_path_and_instance_pass_through(self, tmp_path):
        store = resolve_store(tmp_path / "s")
        assert isinstance(store, SessionStore)
        assert store.root == tmp_path / "s"
        assert resolve_store(store) is store

    def test_default_root_env_then_home(self, monkeypatch, tmp_path):
        monkeypatch.setenv("P2GO_STORE", str(tmp_path))
        assert default_store_root() == tmp_path
        monkeypatch.delenv("P2GO_STORE")
        assert default_store_root().name == "p2go"


class TestRoundTrip:
    def test_compile_result_round_trips(self, tmp_path):
        from repro.target.compiler import compile_program

        store = SessionStore(tmp_path / "store")
        result = compile_program(build_toy_program(), DEFAULT_TARGET)
        key = ("fp", DEFAULT_TARGET.name)
        assert store.load_compile(key) is None
        store.store_compile(key, result)
        loaded = store.load_compile(key)
        assert loaded.stages_used == result.stages_used
        assert loaded.stage_map() == result.stage_map()
        assert store.counters.compile_hits == 1
        assert store.counters.misses == 1
        assert store.counters.writes == 1

    def test_profile_round_trips(self, tmp_path):
        from repro.core.profiler import Profiler

        store = SessionStore(tmp_path / "store")
        run = Profiler(build_toy_program(), toy_config()).run(make_trace())
        key = ("p", ("c",), "t")
        store.store_profile(key, run.profile, run.perf)
        profile, perf = store.load_profile(key)
        assert profile.same_behavior_as(run.profile)
        assert profile.total_packets == run.profile.total_packets
        assert perf.packets == run.perf.packets

    @pytest.mark.parametrize("size", [4, 8, 16, 32])
    def test_round_trip_across_program_variants(self, tmp_path, size):
        from repro.target.compiler import compile_program

        store = SessionStore(tmp_path / "store")
        program = build_toy_program().with_table_size("fib", size)
        result = compile_program(program, DEFAULT_TARGET)
        key = (f"fp-{size}", DEFAULT_TARGET.name)
        store.store_compile(key, result)
        assert store.load_compile(key).stage_map() == result.stage_map()

    def test_entries_survive_new_instances(self, tmp_path):
        a = SessionStore(tmp_path / "store")
        a.store_compile(("k",), {"v": 1})
        b = SessionStore(tmp_path / "store")
        assert b.load_compile(("k",)) == {"v": 1}

    def test_distinct_keys_distinct_entries(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("a",), 1)
        store.store_compile(("b",), 2)
        assert store.load_compile(("a",)) == 1
        assert store.load_compile(("b",)) == 2
        assert store.load_compile(("c",)) is None

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            SessionStore(tmp_path, max_bytes=0)


class TestEviction:
    def write_sized(self, store, key, payload_bytes):
        store.store_compile(key, b"x" * payload_bytes)

    def test_lru_evicts_oldest_mtime_first(self, tmp_path):
        store = SessionStore(tmp_path / "store", max_bytes=10 ** 6)
        for index, stamp in [(0, 100), (1, 200), (2, 300)]:
            self.write_sized(store, (f"k{index}",), 64)
            path = store._entry_path("compile", (f"k{index}",))
            os.utime(path, (stamp, stamp))
        sizes = [p.stat().st_size for p in entry_paths(store, "compile")]
        store.max_bytes = sum(sizes) - 1  # one entry must go
        assert store._evict_over_cap() == 1
        assert store.load_compile(("k0",)) is None  # oldest gone
        assert store.load_compile(("k1",)) is not None
        assert store.load_compile(("k2",)) is not None
        assert store.counters.evictions == 1

    def test_equal_mtimes_break_ties_by_name(self, tmp_path):
        store = SessionStore(tmp_path / "store", max_bytes=10 ** 6)
        keys = [("a",), ("b",), ("c",)]
        for key in keys:
            self.write_sized(store, key, 64)
            os.utime(store._entry_path("compile", key), (100, 100))
        by_name = sorted(
            keys, key=lambda k: store._entry_name("compile", k)
        )
        sizes = [p.stat().st_size for p in entry_paths(store, "compile")]
        store.max_bytes = sum(sizes) - 1
        store._evict_over_cap()
        # Exactly the lexicographically-first entry file went.
        assert store.load_compile(by_name[0]) is None
        for key in by_name[1:]:
            assert store.load_compile(key) is not None

    def test_load_refreshes_recency(self, tmp_path):
        store = SessionStore(tmp_path / "store", max_bytes=10 ** 6)
        self.write_sized(store, ("old",), 64)
        self.write_sized(store, ("new",), 64)
        os.utime(store._entry_path("compile", ("old",)), (100, 100))
        os.utime(store._entry_path("compile", ("new",)), (200, 200))
        store.load_compile(("old",))  # os.utime(now) — newest again
        sizes = [p.stat().st_size for p in entry_paths(store, "compile")]
        store.max_bytes = sum(sizes) - 1
        store._evict_over_cap()
        assert store.load_compile(("old",)) is not None
        assert store.load_compile(("new",)) is None

    def test_writes_trigger_eviction_automatically(self, tmp_path):
        store = SessionStore(tmp_path / "store", max_bytes=400)
        for index in range(8):
            self.write_sized(store, (f"k{index}",), 128)
        stats = store.stats()
        assert stats["total_bytes"] <= 400
        assert store.counters.evictions > 0

    def test_clear_removes_everything(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("a",), 1)
        store.store_profile(("b",), "profile", "perf")
        assert store.clear() == 2
        assert store.load_compile(("a",)) is None
        stats = store.stats()
        assert stats["compile_entries"] == 0
        assert stats["profile_entries"] == 0


class TestFaultInjection:
    """Corrupt, truncated, foreign, or version-mismatched stores must
    degrade to a clean cold start — quarantine + counter, never an
    exception, never a wrong result."""

    def corrupt(self, store, key, data):
        path = store._entry_path("compile", key)
        path.write_bytes(data)

    def test_truncated_entry_is_a_quarantined_miss(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("k",), {"v": 1})
        path = store._entry_path("compile", ("k",))
        path.write_bytes(path.read_bytes()[:10])
        assert store.load_compile(("k",)) is None
        assert store.counters.quarantined == 1
        assert not path.exists()  # sidelined, cost paid once
        assert len(list(store._dir("quarantine").iterdir())) == 1

    def test_garbage_entry_is_a_quarantined_miss(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("k",), {"v": 1})
        self.corrupt(store, ("k",), b"not a pickle at all")
        assert store.load_compile(("k",)) is None
        assert store.counters.quarantined == 1

    def test_wrong_key_payload_is_a_quarantined_miss(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("k",), 1)
        self.corrupt(
            store, ("k",),
            pickle.dumps({"key": ("other",), "value": 2}),
        )
        assert store.load_compile(("k",)) is None
        assert store.counters.quarantined == 1

    def test_partial_write_tmp_files_are_invisible(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("k",), 1)
        (store._dir("compile") / ".abc.pkl.999.1.tmp").write_bytes(
            b"half-written"
        )
        stats = store.stats()
        assert stats["compile_entries"] == 1
        assert store.load_compile(("k",)) == 1

    def test_schema_mismatch_forces_cold_start(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("k",), 1)
        manifest = store._manifest_path()
        stale = json.loads(manifest.read_text())
        stale["schema"] = SCHEMA_VERSION + 99
        manifest.write_text(json.dumps(stale))
        fresh = SessionStore(tmp_path / "store")
        assert fresh.load_compile(("k",)) is None  # never unpickled
        assert fresh.counters.resets == 1
        # The store restarted cold and is fully usable again.
        fresh.store_compile(("k",), 2)
        assert fresh.load_compile(("k",)) == 2
        assert json.loads(fresh._manifest_path().read_text())[
            "schema"
        ] == SCHEMA_VERSION

    def test_code_fingerprint_mismatch_forces_cold_start(self, tmp_path):
        old = SessionStore(tmp_path / "store", code_fp="written-by-old-code")
        old.store_compile(("k",), 1)
        fresh = SessionStore(tmp_path / "store")
        assert fresh.code_fp == code_fingerprint()
        assert fresh.load_compile(("k",)) is None
        assert fresh.counters.resets == 1

    def test_garbage_manifest_forces_cold_start(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("k",), 1)
        store._manifest_path().write_text("{ not json")
        fresh = SessionStore(tmp_path / "store")
        assert fresh.load_compile(("k",)) is None
        assert fresh.counters.resets == 1

    def test_missing_manifest_with_entries_forces_cold_start(
        self, tmp_path
    ):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("k",), 1)
        store._manifest_path().unlink()
        fresh = SessionStore(tmp_path / "store")
        assert fresh.load_compile(("k",)) is None
        assert fresh.counters.resets == 1

    def test_unusable_root_makes_store_inert(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store root should go")
        store = SessionStore(blocker / "store")
        store.store_compile(("k",), 1)  # dropped write, no exception
        assert store.load_compile(("k",)) is None
        assert store.clear() == 0
        assert store.stats()["compile_entries"] == 0
        assert store.counters.errors > 0

    def test_pipeline_survives_fully_corrupted_store(self, tmp_path):
        program, config = build_toy_program(), toy_config()
        trace = make_trace()
        store_root = tmp_path / "store"
        baseline = P2GO(
            program, config, trace, DEFAULT_TARGET,
            store=SessionStore(store_root),
        ).run()
        # Smash every entry the first run persisted.
        store = SessionStore(store_root)
        for kind in ("compile", "profile"):
            for path in entry_paths(store, kind):
                path.write_bytes(b"garbage")
        again = P2GO(
            program, config, trace, DEFAULT_TARGET,
            store=SessionStore(store_root),
        ).run()
        assert_equivalent(again, baseline)
        assert again.store_stats["counters"]["quarantined"] > 0
        assert again.session_counters.compile_disk_hits == 0
        assert "corrupt store entries quarantined" in render_report(again)

    def test_pipeline_survives_schema_mismatch_with_report_note(
        self, tmp_path
    ):
        program, config = build_toy_program(), toy_config()
        trace = make_trace()
        store_root = tmp_path / "store"
        old = SessionStore(store_root, code_fp="written-by-old-code")
        old.store_compile(("k",), 1)
        result = P2GO(
            program, config, trace, DEFAULT_TARGET,
            store=SessionStore(store_root),
        ).run()
        assert result.store_stats["counters"]["resets"] == 1
        assert "store format mismatch" in render_report(result)


class TestConcurrentInstances:
    """Two store instances on one directory: per-entry files + atomic
    O_EXCL-temp writes mean no locks are needed — readers only ever see
    complete entries, and racing writers of a content-addressed key
    both produce the same value."""

    def test_instances_see_each_others_writes(self, tmp_path):
        a = SessionStore(tmp_path / "store")
        b = SessionStore(tmp_path / "store")
        a.store_compile(("from-a",), "A")
        b.store_compile(("from-b",), "B")
        assert a.load_compile(("from-b",)) == "B"
        assert b.load_compile(("from-a",)) == "A"

    def test_racing_writers_of_one_key_last_rename_wins(self, tmp_path):
        a = SessionStore(tmp_path / "store")
        b = SessionStore(tmp_path / "store")
        a.store_compile(("k",), "same-content")
        b.store_compile(("k",), "same-content")
        assert a.load_compile(("k",)) == "same-content"
        assert len(entry_paths(a, "compile")) == 1

    def test_thread_hammer_no_exceptions(self, tmp_path):
        """Interleaved store/load/clear from two threads, each with its
        own instance: every operation must degrade gracefully, never
        raise."""
        errors = []

        def hammer(worker):
            store = SessionStore(tmp_path / "store")
            try:
                for round_no in range(30):
                    key = (f"k{round_no % 7}",)
                    store.store_compile(key, f"{worker}:{round_no}")
                    store.load_compile(key)
                    if round_no % 13 == 12:
                        store.clear()
            except Exception as exc:  # pragma: no cover — the failure
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        survivor = SessionStore(tmp_path / "store")
        survivor.store_compile(("after",), 1)
        assert survivor.load_compile(("after",)) == 1


class TestSessionTiering:
    """memo → disk → execute inside OptimizationContext."""

    def test_disk_hit_hydrates_memo(self, tmp_path):
        writer = make_ctx(SessionStore(tmp_path / "store"))
        writer.profile()
        writer.compile()
        writer.close()  # flush

        reader = make_ctx(SessionStore(tmp_path / "store"))
        reader.profile()
        reader.compile()
        assert reader.counters.profile_executions == 0
        assert reader.counters.compile_executions == 0
        assert reader.counters.profile_disk_hits == 1
        assert reader.counters.compile_disk_hits == 1
        # Second ask: memo, not disk.
        reader.profile()
        assert reader.counters.profile_disk_hits == 1
        assert reader.counters.profile_hits == 1

    def test_disk_hits_never_attributed_to_perf_windows(self, tmp_path):
        writer = make_ctx(SessionStore(tmp_path / "store"))
        writer.profile()
        writer.close()
        reader = make_ctx(SessionStore(tmp_path / "store"))
        reader.start_perf_window()
        reader.profile()  # disk hit — the writer paid the replay
        assert reader.take_perf_window() is None

    def test_memoize_false_keeps_store_inert(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        ctx = make_ctx(store, memoize=False)
        ctx.profile()
        ctx.compile()
        ctx.close()
        assert store.stats()["compile_entries"] == 0
        assert store.stats()["profile_entries"] == 0
        assert ctx.counters.profile_executions == 1
        assert ctx.counters.compile_executions == 1

    def test_flush_on_commit(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        ctx = make_ctx(store)
        key = ctx._profile_key(ctx.program, ctx.config)
        ctx.profile()
        assert store.load_profile(key) is None  # buffered
        ctx.propose(program=ctx.program)
        ctx.commit()
        assert store.load_profile(key) is not None

    def test_parallel_wave_flushes_immediately(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        ctx = make_ctx(store, workers=4)
        with ctx:
            ctx.compile_many(
                [ctx.program, ctx.program.with_table_size("fib", 32)]
            )
            # Flushed by the merge wave — visible before close().
            assert store.stats()["compile_entries"] == 2

        warm = make_ctx(SessionStore(tmp_path / "store"), workers=4)
        with warm:
            warm.compile_many(
                [warm.program, warm.program.with_table_size("fib", 32)]
            )
        assert warm.counters.compile_executions == 0
        assert warm.counters.compile_disk_hits == 2


class TestWarmSecondRun:
    """The tentpole acceptance bar: a second run over an unchanged
    program + config + trace performs zero compiles and zero replays."""

    def run(self, store_root):
        return P2GO(
            build_toy_program(), toy_config(), make_trace(),
            DEFAULT_TARGET, store=SessionStore(store_root),
        ).run()

    def test_second_run_zero_compiles_zero_replays(self, tmp_path):
        cold = self.run(tmp_path / "store")
        warm = self.run(tmp_path / "store")
        assert_equivalent(warm, cold)
        counters = warm.session_counters
        assert counters.compile_executions == 0
        assert counters.profile_executions == 0
        assert counters.compile_disk_hits > 0
        assert counters.profile_disk_hits > 0
        assert counters.compile_calls == cold.session_counters.compile_calls

    def test_report_carries_provenance_and_store_lines(self, tmp_path):
        self.run(tmp_path / "store")
        report = render_report(self.run(tmp_path / "store"))
        assert "result provenance:" in report
        assert "persistent store:" in report
        assert "executed 0" in report

    def test_storeless_run_has_no_store_line(self):
        result = P2GO(
            build_toy_program(), toy_config(), make_trace(),
            DEFAULT_TARGET, store=False,
        ).run()
        assert result.store_stats is None
        assert "persistent store:" not in render_report(result)

    def test_workers_env_routes_through_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("P2GO_WORKERS", "4")
        self.run(tmp_path / "store")
        warm = self.run(tmp_path / "store")
        assert warm.session_counters.compile_executions == 0
        assert warm.session_counters.profile_executions == 0


class TestSeedEquivalence:
    """ISSUE 5 satellite: store-enabled pipeline results are canonically
    identical to the store-less pipeline for every phase order in
    tests/test_passes.py — a cold store changes nothing but writes, and
    a warm store changes nothing but who pays for the answers."""

    @pytest.fixture(scope="class")
    def inputs(self):
        return (
            fw.build_program(),
            fw.runtime_config(),
            fw.make_trace(TRACE_PACKETS),
            fw.TARGET,
        )

    @pytest.fixture(scope="class")
    def storeless(self, inputs):
        """Store-less baselines, computed lazily per phase order (the
        workers legs share them: ISSUE 4 pinned that worker count does
        not change the canonical result)."""
        cache = {}

        def baseline(order):
            if order not in cache:
                program, config, trace, target = inputs
                cache[order] = P2GO(
                    program, config, trace, target, phases=order,
                    store=False,
                ).run()
            return cache[order]

        return baseline

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize(
        "order", ORDERS, ids=lambda o: "-".join(map(str, o))
    )
    def test_cold_canonical_warm_equivalent(
        self, inputs, storeless, tmp_path, order, workers
    ):
        program, config, trace, target = inputs
        baseline = storeless(order)
        store_root = tmp_path / "store"
        cold = P2GO(
            program, config, trace, target, phases=order,
            workers=workers, store=SessionStore(store_root),
        ).run()
        # Cold: nothing to hit, so counters, per-phase perf, and every
        # decision are byte-identical to the store-less run.
        assert canonical(cold) == canonical(baseline)
        warm = P2GO(
            program, config, trace, target, phases=order,
            workers=workers, store=SessionStore(store_root),
        ).run()
        assert_equivalent(warm, baseline)
        assert warm.session_counters.compile_executions == 0
        assert warm.session_counters.profile_executions == 0


# ----------------------------------------------------------------------
# Probe leases (ISSUE 8): cross-process dedup of in-flight probes.


class TestProbeLeases:
    """Claim / wait / release / reap on one shared root."""

    def test_claim_is_exclusive_until_released(self, tmp_path):
        holder = SessionStore(tmp_path / "store")
        rival = SessionStore(tmp_path / "store")
        lease = holder.claim_probe("compile", ("k",))
        assert lease is not None
        assert rival.claim_probe("compile", ("k",)) is None
        lease.release()
        assert rival.claim_probe("compile", ("k",)) is not None
        assert holder.counters.lease_claims == 1
        assert holder.counters.lease_releases == 1
        assert rival.counters.lease_claims == 1

    def test_release_is_idempotent(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        lease = store.claim_probe("profile", ("k",))
        lease.release()
        lease.release()
        assert store.counters.lease_releases == 1

    def test_distinct_probes_lease_independently(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        assert store.claim_probe("compile", ("a",)) is not None
        assert store.claim_probe("compile", ("b",)) is not None
        assert store.claim_probe("profile", ("a",)) is not None

    def test_claim_rechecks_entry_written_after_miss(self, tmp_path):
        """TOCTOU regression: an entry that lands between a session's
        disk miss and its winning lease claim must be served as a disk
        hit (lease released), never re-executed — the exactly-once
        guarantee the fleet bench's deterministic counters rest on."""
        root = tmp_path / "store"
        writer = OptimizationContext(
            build_toy_program(), toy_config(), make_trace(),
            DEFAULT_TARGET,
            store=SessionStore(root), lease_probes=True,
        )
        writer.compile()  # executes, writes through, releases its lease
        assert writer.counters.compile_executions == 1
        writer.close()

        reader = OptimizationContext(
            build_toy_program(), toy_config(), make_trace(),
            DEFAULT_TARGET,
            store=SessionStore(root), lease_probes=True,
        )
        key = (reader.program_key(reader.program),
               reader.target.fingerprint())
        # The race's leftover state, reproduced directly: this session
        # missed on disk *before* the writer's entry landed, then won
        # the (now free) lease.  The claim must re-check the entry.
        value = reader._store_coordinate("compile", key)
        assert value is not None  # a hit, not an execute-yourself signal
        assert reader._held_leases == {}
        # ... and the lease was released, not left to go stale.
        assert reader.store.claim_probe("compile", key) is not None
        reader.close()

    def test_stale_lease_is_reaped(self, tmp_path):
        dead = SessionStore(tmp_path / "store", lease_ttl=0.05)
        dead.claim_probe("compile", ("k",))  # never released
        time.sleep(0.1)
        survivor = SessionStore(tmp_path / "store", lease_ttl=0.05)
        assert survivor.claim_probe("compile", ("k",)) is not None
        assert survivor.counters.leases_reaped == 1

    def test_wait_returns_entry_written_by_holder(self, tmp_path):
        holder = SessionStore(tmp_path / "store")
        waiter = SessionStore(tmp_path / "store")
        lease = holder.claim_probe("compile", ("k",))

        def finish():
            time.sleep(0.05)
            holder.store_compile(("k",), "answer")
            lease.release()

        thread = threading.Thread(target=finish)
        thread.start()
        try:
            assert waiter.wait_for_probe("compile", ("k",)) == "answer"
        finally:
            thread.join()
        assert waiter.counters.lease_waits == 1
        assert waiter.counters.lease_wait_hits == 1

    def test_wait_returns_none_when_lease_vanishes_empty(self, tmp_path):
        holder = SessionStore(tmp_path / "store")
        waiter = SessionStore(tmp_path / "store")
        lease = holder.claim_probe("profile", ("k",))
        lease.release()  # holder gave up without writing
        assert waiter.wait_for_probe("profile", ("k",)) is None
        assert waiter.counters.lease_wait_hits == 0

    def test_wait_respects_deadline(self, tmp_path):
        holder = SessionStore(tmp_path / "store")
        waiter = SessionStore(tmp_path / "store")
        holder.claim_probe("compile", ("k",))  # held throughout
        start = time.monotonic()
        value = waiter.wait_for_probe(
            "compile", ("k",), deadline=time.monotonic() + 0.1
        )
        assert value is None
        assert time.monotonic() - start < 2.0

    def test_lease_files_invisible_to_census_and_clear(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        store.store_compile(("real",), "entry")
        store.claim_probe("compile", ("pending",))
        stats = store.stats()
        assert stats["compile_entries"] == 1
        assert store.clear() == 1  # the entry, not the lease
        # clear() leaves no stale lease behind either.
        assert store.claim_probe("compile", ("pending",)) is not None

    def test_invalidate_sweeps_leases(self, tmp_path):
        root = tmp_path / "store"
        old = SessionStore(root)
        old.claim_probe("compile", ("k",))
        # A code-fingerprint drift quarantines entries; leases must not
        # survive into the fresh layout as ghost claims.
        manifest = json.loads(old._manifest_path().read_text())
        manifest["code"] = "f" * 64
        old._manifest_path().write_text(json.dumps(manifest))
        fresh = SessionStore(root)
        assert fresh.claim_probe("compile", ("k",)) is not None


# ----------------------------------------------------------------------
# Multi-process sharing (ISSUE 8): real processes, one store root.


def _hammer_process(root, worker):
    """Pool worker: interleaved store/load rounds on the shared root.
    Returns an error string on the first malformed read, else the
    worker's store I/O error count (must be 0)."""
    store = SessionStore(root)
    for round_no in range(40):
        key = (f"k{round_no % 11}",)
        store.store_compile(key, f"{worker}:{round_no}")
        loaded = store.load_compile(key)
        if loaded is not None and ":" not in loaded:
            return f"corrupt value {loaded!r}"
    return store.counters.errors


def _leased_toy_run(root):
    """Pool worker: one lease-coordinated toy pipeline against the
    shared root.  Returns this process's execution/hit counters."""
    result = P2GO(
        build_toy_program(), toy_config(), make_trace(), DEFAULT_TARGET,
        store=SessionStore(root), lease_probes=True,
    ).run()
    counters = result.session_counters
    return {
        "compile_executions": counters.compile_executions,
        "profile_executions": counters.profile_executions,
        "disk_hits": (
            counters.compile_disk_hits + counters.profile_disk_hits
        ),
    }


class TestMultiProcessStore:
    """N genuine processes against one root: no lost or corrupt
    entries, and (with leases) no probe executed twice fleet-wide."""

    def _pool(self, workers):
        from concurrent.futures import ProcessPoolExecutor

        try:
            return ProcessPoolExecutor(max_workers=workers)
        except (OSError, NotImplementedError):  # pragma: no cover
            pytest.skip("platform cannot spawn worker processes")

    def test_process_hammer_no_lost_or_corrupt_entries(self, tmp_path):
        root = str(tmp_path / "store")
        with self._pool(4) as pool:
            outcomes = list(
                pool.map(_hammer_process, [root] * 4, range(4))
            )
        assert outcomes == [0, 0, 0, 0]
        survivor = SessionStore(root)
        for round_no in range(11):
            value = survivor.load_compile((f"k{round_no}",))
            assert value is not None
            worker, _, stamp = value.partition(":")
            assert int(worker) in range(4) and stamp.isdigit()
        assert survivor.stats()["quarantine_entries"] == 0

    def test_two_processes_never_both_execute_a_probe(self, tmp_path):
        # The lease acceptance bar: across two concurrent processes
        # optimizing the same program, every fingerprinted probe is
        # executed by exactly one of them — the fleet-wide execution
        # total equals the distinct-probe count a single storeless run
        # pays, and every probe the loser skipped came back as a disk
        # hit.
        solo = P2GO(
            build_toy_program(), toy_config(), make_trace(),
            DEFAULT_TARGET, store=False,
        ).run().session_counters
        root = str(tmp_path / "store")
        with self._pool(2) as pool:
            outcomes = list(
                pool.map(_leased_toy_run, [root, root])
            )
        assert (
            sum(o["compile_executions"] for o in outcomes)
            == solo.compile_executions
        )
        assert (
            sum(o["profile_executions"] for o in outcomes)
            == solo.profile_executions
        )
        assert sum(o["disk_hits"] for o in outcomes) == (
            solo.compile_executions + solo.profile_executions
        )

    def test_no_leases_left_behind_after_runs(self, tmp_path):
        root = str(tmp_path / "store")
        with self._pool(2) as pool:
            list(pool.map(_leased_toy_run, [root, root]))
        store = SessionStore(root)
        leftovers = [
            path
            for kind in ("compile", "profile")
            for path in store._dir(kind).iterdir()
            if path.name.endswith(".lease")
        ]
        assert leftovers == []
