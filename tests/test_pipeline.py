"""End-to-end tests of the P2GO orchestrator — the paper's Table 2 and
Table 3 headline results."""

import pytest

from repro.core import P2GO
from repro.core.observations import ObservationKind, Phase
from repro.programs import example_firewall


class TestTable2:
    """Ex. 1's stage progression: 8 -> 7 -> 6 -> 3 (Table 2)."""

    def test_stage_progression(self, firewall_result):
        assert [o.stages for o in firewall_result.outcomes] == [8, 7, 6, 3]

    def test_initial_stage_map(self, firewall_result):
        initial = firewall_result.outcomes[0].stage_map
        assert initial[0] == ["IPv4"] and initial[1] == ["IPv4"]
        assert initial[7] == ["DNS_Drop"]

    def test_acls_share_stage_after_phase2(self, firewall_result):
        after_deps = firewall_result.outcomes[1].stage_map
        assert ["ACL_DHCP", "ACL_UDP"] in after_deps

    def test_final_map_matches_paper(self, firewall_result):
        final = firewall_result.outcomes[-1].stage_map
        assert final[0] == ["IPv4"]
        assert final[1] == ["ACL_DHCP", "ACL_UDP"]
        assert final[2] == ["To_Ctl"]

    def test_offloaded_tables(self, firewall_result):
        assert set(firewall_result.offloaded_tables) == {
            "Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop",
        }

    def test_sketch_resizes_rejected(self, firewall_result):
        rejected = [
            o for o in firewall_result.observations.items
            if o.kind is ObservationKind.REJECTED
        ]
        assert any("dns_cms_row0" in o.title for o in rejected)

    def test_ipv4_resize_accepted(self, firewall_result):
        optimizations = firewall_result.observations.optimizations()
        assert any("IPv4" in o.title and "resized" in o.title
                   for o in optimizations)

    def test_phase_names_in_order(self, firewall_result):
        phases = [o.phase for o in firewall_result.outcomes]
        assert phases == [
            Phase.PROFILING,
            Phase.REMOVE_DEPENDENCIES,
            Phase.REDUCE_MEMORY,
            Phase.OFFLOAD_CODE,
        ]

    def test_optimized_program_validates(self, firewall_result):
        firewall_result.optimized_program.validate()

    def test_final_config_covers_remaining_tables(self, firewall_result):
        config = firewall_result.final_config
        program = firewall_result.optimized_program
        config.validate(program)
        for table in firewall_result.offloaded_tables:
            assert config.entry_count(table) == 0


class TestTable3:
    def test_nat_gre(self, natgre_result):
        assert natgre_result.stages_before == 4
        assert natgre_result.stages_after == 3
        titles = [
            o.title for o in natgre_result.observations.optimizations()
        ]
        assert any("removed dependency nat -> gre_term" in t for t in titles)

    def test_sourceguard(self, sourceguard_result):
        assert sourceguard_result.stages_before == 5
        assert sourceguard_result.stages_after == 4
        titles = [
            o.title for o in sourceguard_result.observations.optimizations()
        ]
        assert any("resized register sg_array" in t for t in titles)

    def test_failure_detection(self, failure_result):
        assert failure_result.stages_before == 4
        assert failure_result.stages_after == 2
        assert set(failure_result.offloaded_tables) == {
            "cms_0", "cms_1", "FailureAlarm",
        }


class TestKnobs:
    def test_phase_subset(self, firewall_program, firewall_config,
                          firewall_trace):
        result = P2GO(
            firewall_program,
            firewall_config,
            firewall_trace,
            example_firewall.TARGET,
            phases=(2,),
        ).run()
        assert [o.stages for o in result.outcomes] == [8, 7]

    def test_review_hook_can_veto(self, firewall_program, firewall_config,
                                  firewall_trace):
        result = P2GO(
            firewall_program,
            firewall_config,
            firewall_trace,
            example_firewall.TARGET,
            phases=(2,),
            review_hook=lambda obs: False,
        ).run()
        # The veto rolls every change back: stages unchanged.
        assert result.stages_after == result.stages_before
        assert any(
            o.kind is ObservationKind.REJECTED
            and "programmer rejected" in o.title
            for o in result.observations.items
        )

    def test_stage_history_shape(self, firewall_result):
        history = firewall_result.stage_history()
        assert history[0][0] == "profiling"
        assert history[-1][0] == "offload_code"
