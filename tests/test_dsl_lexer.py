"""Unit tests for the DSL tokenizer."""

import pytest

from repro.exceptions import DslSyntaxError
from repro.p4.dsl.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_identifiers_and_punctuation(self):
        assert texts("table t { }") == ["table", "t", "{", "}"]

    def test_eof_terminates(self):
        assert kinds("")[-1] is TokenKind.EOF

    def test_decimal_numbers(self):
        tokens = tokenize("size : 1024 ;")
        assert tokens[2].kind is TokenKind.NUMBER
        assert int(tokens[2].text, 0) == 1024

    def test_hex_numbers(self):
        tokens = tokenize("0x800")
        assert tokens[0].kind is TokenKind.NUMBER
        assert int(tokens[0].text, 0) == 0x800

    def test_dotted_field(self):
        assert texts("ipv4.dstAddr") == ["ipv4", ".", "dstAddr"]

    def test_underscored_identifiers(self):
        assert texts("_private name_2") == ["_private", "name_2"]


class TestOperators:
    def test_multi_char_operators(self):
        tokens = tokenize("a >= b == c != d <= e")
        ops = [t.text for t in tokens if t.kind is TokenKind.OP]
        assert ops == [">=", "==", "!=", "<="]

    def test_single_char_operators(self):
        tokens = tokenize("a < b > c + d - e & f | g ^ h")
        ops = [t.text for t in tokens if t.kind is TokenKind.OP]
        assert ops == ["<", ">", "+", "-", "&", "|", "^"]


class TestCommentsAndWhitespace:
    def test_line_comments_skipped(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_comment_at_eof(self):
        assert texts("a // trailing") == ["a"]

    def test_newlines_tracked(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(DslSyntaxError) as err:
            tokenize("table @")
        assert err.value.line == 1

    def test_error_reports_position(self):
        with pytest.raises(DslSyntaxError) as err:
            tokenize("ok\n  $bad")
        assert err.value.line == 2
        assert err.value.column == 3
