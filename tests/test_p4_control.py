"""Unit tests for the control AST and its surgery utilities."""

import pytest

from repro.exceptions import P4ValidationError
from repro.p4.control import (
    Apply,
    If,
    Seq,
    clone,
    control_equal,
    find_apply,
    iter_applies,
    iter_nodes,
    normalize,
    remove_subtree,
    replace_subtree,
    tables_applied,
)
from repro.p4.expressions import Const, BinOp, ValidExpr


def sample_tree():
    inner = If(ValidExpr("dns"), Seq([Apply("s1"), Apply("s2")]))
    return Seq([If(ValidExpr("ipv4"), Apply("fib")), Apply("acl"), inner])


class TestTraversal:
    def test_iter_nodes_preorder(self):
        tree = sample_tree()
        kinds = [type(n).__name__ for n in iter_nodes(tree)]
        assert kinds[0] == "Seq"
        assert kinds.count("Apply") == 4

    def test_tables_applied_in_order(self):
        assert tables_applied(sample_tree()) == ["fib", "acl", "s1", "s2"]

    def test_iter_applies_covers_branches(self):
        tree = Apply("a", on_hit=Apply("b"), on_miss=Apply("c"))
        assert [x.table for x in iter_applies(tree)] == ["a", "b", "c"]


class TestFindApply:
    def test_found(self):
        tree = sample_tree()
        node = find_apply(tree, "s1")
        assert node is not None and node.table == "s1"

    def test_missing_returns_none(self):
        assert find_apply(sample_tree(), "ghost") is None

    def test_duplicate_application_rejected(self):
        tree = Seq([Apply("t"), Apply("t")])
        with pytest.raises(P4ValidationError):
            find_apply(tree, "t")


class TestRemoveSubtree:
    def test_remove_seq_element(self):
        tree = sample_tree()
        target = tree.nodes[1]  # Apply("acl")
        pruned = remove_subtree(tree, target)
        assert tables_applied(pruned) == ["fib", "s1", "s2"]
        # Original untouched.
        assert tables_applied(tree) == ["fib", "acl", "s1", "s2"]

    def test_remove_if_then_leaves_empty_body(self):
        tree = sample_tree()
        target = tree.nodes[0].then_node  # Apply("fib")
        pruned = remove_subtree(tree, target)
        assert "fib" not in tables_applied(pruned)

    def test_remove_nested_branch(self):
        tree = Apply("a", on_miss=Apply("b"))
        pruned = remove_subtree(tree, tree.on_miss)
        assert tables_applied(pruned) == ["a"]

    def test_missing_target_raises(self):
        with pytest.raises(P4ValidationError):
            remove_subtree(sample_tree(), Apply("ghost"))


class TestReplaceSubtree:
    def test_replace_seq_element(self):
        tree = sample_tree()
        target = tree.nodes[2]  # dns branch
        replaced = replace_subtree(tree, target, Apply("to_ctl"))
        assert tables_applied(replaced) == ["fib", "acl", "to_ctl"]

    def test_replace_inside_if(self):
        tree = sample_tree()
        target = tree.nodes[2].then_node
        replaced = replace_subtree(tree, target, Apply("to_ctl"))
        assert tables_applied(replaced) == ["fib", "acl", "to_ctl"]
        # The guard survives.
        assert isinstance(replaced.nodes[2], If)

    def test_replace_in_apply_branch(self):
        tree = Apply("a", on_hit=Apply("b"))
        replaced = replace_subtree(tree, tree.on_hit, Apply("c"))
        assert tables_applied(replaced) == ["a", "c"]

    def test_missing_target_raises(self):
        with pytest.raises(P4ValidationError):
            replace_subtree(sample_tree(), Apply("ghost"), Apply("x"))


class TestNormalize:
    def test_unwraps_singleton_seq(self):
        tree = Seq([Apply("a")])
        assert control_equal(normalize(tree), Apply("a"))

    def test_flattens_nested_seq(self):
        tree = Seq([Seq([Apply("a"), Apply("b")]), Apply("c")])
        normalized = normalize(tree)
        assert isinstance(normalized, Seq)
        assert len(normalized.nodes) == 3

    def test_recurses_into_branches(self):
        tree = Apply("a", on_hit=Seq([Apply("b")]))
        assert control_equal(
            normalize(tree), Apply("a", on_hit=Apply("b"))
        )


class TestControlEqual:
    def test_equal_trees(self):
        assert control_equal(sample_tree(), sample_tree())

    def test_clone_is_equal_but_distinct(self):
        tree = sample_tree()
        copied = clone(tree)
        assert control_equal(tree, copied)
        assert copied is not tree
        assert copied.nodes[0] is not tree.nodes[0]

    def test_different_tables_unequal(self):
        assert not control_equal(Apply("a"), Apply("b"))

    def test_different_conditions_unequal(self):
        a = If(BinOp(">=", Const(1), Const(2)), Apply("t"))
        b = If(BinOp("<=", Const(1), Const(2)), Apply("t"))
        assert not control_equal(a, b)

    def test_branch_presence_matters(self):
        assert not control_equal(Apply("a"), Apply("a", on_hit=Apply("b")))
