"""Tests for phase 3 — memory reduction (§3.3).

The headline behaviours: candidates are halving-probes that save a stage,
the lowest-hit-rate candidate goes first, binary search finds the minimum
sufficient reduction, and a resize that perturbs the profile (the CMS
collision) is rejected.
"""

import pytest

from repro.core.phase_dependencies import run_phase as dep_phase
from repro.core.phase_memory import (
    ResourceKind,
    find_candidates,
    linear_minimal_reduction,
    minimal_reduction,
    run_phase,
)
from repro.core.profiler import Profiler
from repro.programs import example_firewall, sourceguard
from repro.target import compile_program


@pytest.fixture(scope="module")
def after_phase2(firewall_program, firewall_config, firewall_trace):
    """Ex. 1 after the ACL dependency removal (phase 3's actual input)."""
    result = compile_program(firewall_program, example_firewall.TARGET)
    profile = Profiler(firewall_program, firewall_config).profile(
        firewall_trace
    )
    outcome = dep_phase(firewall_program, result, profile)
    program = outcome.program
    profile2 = Profiler(program, firewall_config).profile(firewall_trace)
    return program, profile2


class TestCandidates:
    def test_candidates_found(self, after_phase2):
        program, profile = after_phase2
        candidates = find_candidates(
            program, example_firewall.TARGET, profile
        )
        names = {(c.kind.value, c.name) for c in candidates}
        assert ("register", "dns_cms_row0") in names
        assert ("register", "dns_cms_row1") in names
        assert ("table", "IPv4") in names

    def test_lowest_hit_rate_first(self, after_phase2):
        """§3.3: P2GO selects the candidate with the lowest hit rate to
        minimize behavioural risk — the sketch rows (2%) before the FIB
        (100%)."""
        program, profile = after_phase2
        candidates = find_candidates(
            program, example_firewall.TARGET, profile
        )
        assert candidates[0].name == "dns_cms_row0"
        assert candidates[-1].name == "IPv4"

    def test_small_tables_not_candidates(self, after_phase2):
        program, profile = after_phase2
        candidates = find_candidates(
            program, example_firewall.TARGET, profile
        )
        names = {c.name for c in candidates}
        assert "ACL_UDP" not in names
        assert "DNS_Drop" not in names


class TestBinarySearch:
    def test_minimal_reduction_matches_pinned_constant(self, after_phase2):
        """Regression pin: the engineered collision flows assume the
        binary search lands at REDUCED_SKETCH_CELLS."""
        program, profile = after_phase2
        baseline = compile_program(
            program, example_firewall.TARGET
        ).stages_used
        candidates = find_candidates(
            program, example_firewall.TARGET, profile
        )
        row0 = next(c for c in candidates if c.name == "dns_cms_row0")
        minimal = minimal_reduction(
            program, example_firewall.TARGET, row0, baseline
        )
        assert minimal == example_firewall.REDUCED_SKETCH_CELLS

    def test_minimal_reduction_really_is_minimal(self, after_phase2):
        program, profile = after_phase2
        baseline = compile_program(
            program, example_firewall.TARGET
        ).stages_used
        candidates = find_candidates(
            program, example_firewall.TARGET, profile
        )
        row0 = next(c for c in candidates if c.name == "dns_cms_row0")
        minimal = minimal_reduction(
            program, example_firewall.TARGET, row0, baseline
        )
        # One more cell and the saving disappears.
        bigger = program.with_register_size("dns_cms_row0", minimal + 1)
        assert (
            compile_program(bigger, example_firewall.TARGET).stages_used
            == baseline
        )
        smaller = program.with_register_size("dns_cms_row0", minimal)
        assert (
            compile_program(smaller, example_firewall.TARGET).stages_used
            < baseline
        )

    def test_linear_scan_agrees_with_binary_search(self, after_phase2):
        """Ablation grounding: both search strategies find the same
        answer; binary search just needs fewer compiles."""
        program, profile = after_phase2
        baseline = compile_program(
            program, example_firewall.TARGET
        ).stages_used
        candidates = find_candidates(
            program, example_firewall.TARGET, profile
        )
        row0 = next(c for c in candidates if c.name == "dns_cms_row0")
        binary_probes, linear_probes = [], []
        b = minimal_reduction(
            program, example_firewall.TARGET, row0, baseline,
            probe_counter=binary_probes,
        )
        l = linear_minimal_reduction(
            program, example_firewall.TARGET, row0, baseline,
            step=4, probe_counter=linear_probes,
        )
        assert b == l
        assert len(binary_probes) < len(linear_probes)


class TestVerification:
    def test_sketch_resize_rejected_fib_accepted(
        self, after_phase2, firewall_config, firewall_trace
    ):
        """The paper's exact narrative: Sketch_1's resize changes
        DNS_Drop's hit rate (CMS collision) and is discarded; the IPv4
        resize verifies clean and is applied."""
        program, profile = after_phase2
        outcome = run_phase(
            program,
            firewall_config,
            firewall_trace,
            example_firewall.TARGET,
            profile,
        )
        assert outcome.accepted is not None
        assert outcome.accepted.candidate.name == "IPv4"
        assert outcome.accepted.candidate.kind is ResourceKind.TABLE
        rejected_names = {r.candidate.name for r in outcome.rejected}
        assert "dns_cms_row0" in rejected_names
        assert "dns_cms_row1" in rejected_names

    def test_rejection_reason_mentions_dns_drop(
        self, after_phase2, firewall_config, firewall_trace
    ):
        program, profile = after_phase2
        outcome = run_phase(
            program,
            firewall_config,
            firewall_trace,
            example_firewall.TARGET,
            profile,
        )
        rejections = [
            o for o in outcome.observations if o.kind.value == "rejected"
        ]
        assert any("DNS_Drop" in o.details for o in rejections)

    def test_stage_saved(self, after_phase2, firewall_config,
                         firewall_trace):
        program, profile = after_phase2
        outcome = run_phase(
            program, firewall_config, firewall_trace,
            example_firewall.TARGET, profile,
        )
        assert outcome.accepted.stages_after == (
            outcome.accepted.stages_before - 1
        )

    def test_candidate_order_override(
        self, after_phase2, firewall_config, firewall_trace
    ):
        """Ablation hook: forcing the FIB first skips the rejected sketch
        probes entirely."""
        program, profile = after_phase2
        outcome = run_phase(
            program,
            firewall_config,
            firewall_trace,
            example_firewall.TARGET,
            profile,
            candidate_order=lambda cs: sorted(
                cs, key=lambda c: -c.hit_rate
            ),
        )
        assert outcome.accepted.candidate.name == "IPv4"
        assert outcome.rejected == []


class TestSourceguard:
    def test_single_array_trimmed_single_digit_percent(self):
        """Table 3 row 2: one Bloom array shrinks by a single-digit
        percentage and a stage is saved (paper: −8.4%, ours: −6.2%)."""
        program = sourceguard.build_program()
        config = sourceguard.runtime_config(program)
        trace = sourceguard.make_trace(2000)
        profile = Profiler(program, config).profile(trace)
        outcome = run_phase(
            program, config, trace, sourceguard.TARGET, profile
        )
        assert outcome.accepted is not None
        assert outcome.accepted.candidate.kind is ResourceKind.REGISTER
        assert outcome.accepted.candidate.name in (
            "sg_array0", "sg_array1",
        )
        assert 0.0 < outcome.accepted.reduction_fraction < 0.10
        assert outcome.accepted.stages_after == 4
