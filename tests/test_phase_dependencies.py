"""Tests for phase 2 — removing dependencies that do not manifest (§3.2)."""

import pytest

from repro.analysis.dependencies import build_dependency_graph
from repro.controller import compare_behavior
from repro.core.phase_dependencies import (
    dependency_manifests,
    find_removal_candidates,
    remove_dependency,
    run_phase,
)
from repro.core.profiler import Profiler
from repro.exceptions import OptimizationError
from repro.p4.control import find_apply
from repro.programs import example_firewall, nat_gre
from repro.target import compile_program


@pytest.fixture(scope="module")
def firewall_setup(firewall_program, firewall_config, firewall_trace):
    result = compile_program(firewall_program, example_firewall.TARGET)
    profile = Profiler(firewall_program, firewall_config).profile(
        firewall_trace
    )
    return firewall_program, result, profile


class TestManifestation:
    def test_acl_pair_does_not_manifest(self, firewall_setup):
        _program, result, profile = firewall_setup
        dep = result.dependency_graph.between("ACL_UDP", "ACL_DHCP")
        assert not dependency_manifests(dep, profile)

    def test_ipv4_acl_manifests(self, firewall_setup):
        _program, result, profile = firewall_setup
        dep = result.dependency_graph.between("IPv4", "ACL_UDP")
        assert dependency_manifests(dep, profile)

    def test_sketch_chain_manifests(self, firewall_setup):
        _program, result, profile = firewall_setup
        dep = result.dependency_graph.between("Sketch_Min", "DNS_Drop")
        assert dependency_manifests(dep, profile)


class TestCandidates:
    def test_acl_pair_is_candidate(self, firewall_setup):
        _program, result, profile = firewall_setup
        candidates = find_removal_candidates(result, profile)
        pairs = {(c.dependency.src, c.dependency.dst) for c in candidates}
        assert ("ACL_UDP", "ACL_DHCP") in pairs

    def test_manifesting_deps_not_candidates(self, firewall_setup):
        _program, result, profile = firewall_setup
        candidates = find_removal_candidates(result, profile)
        pairs = {(c.dependency.src, c.dependency.dst) for c in candidates}
        assert ("IPv4", "ACL_UDP") not in pairs
        assert ("Sketch_Min", "DNS_Drop") not in pairs

    def test_candidates_carry_evidence(self, firewall_setup):
        _program, result, profile = firewall_setup
        candidates = find_removal_candidates(result, profile)
        for c in candidates:
            assert "no packet" in c.evidence


class TestRewrite:
    def test_rewrite_moves_acl_dhcp_into_miss(self, firewall_setup):
        program, result, _profile = firewall_setup
        dep = result.dependency_graph.between("ACL_UDP", "ACL_DHCP")
        rewritten = remove_dependency(program, dep)
        acl_udp = find_apply(rewritten.ingress, "ACL_UDP")
        assert acl_udp.on_miss is not None
        from repro.p4.control import tables_applied

        assert "ACL_DHCP" in tables_applied(acl_udp.on_miss)

    def test_rewrite_saves_a_stage(self, firewall_setup):
        program, result, _profile = firewall_setup
        dep = result.dependency_graph.between("ACL_UDP", "ACL_DHCP")
        rewritten = remove_dependency(program, dep)
        assert (
            compile_program(rewritten, example_firewall.TARGET).stages_used
            == result.stages_used - 1
        )

    def test_rewrite_removes_the_dependency(self, firewall_setup):
        program, result, _profile = firewall_setup
        dep = result.dependency_graph.between("ACL_UDP", "ACL_DHCP")
        rewritten = remove_dependency(program, dep)
        new_graph = build_dependency_graph(rewritten)
        new_dep = new_graph.between("ACL_UDP", "ACL_DHCP")
        from repro.analysis.dependencies import DependencyKind

        assert new_dep is not None
        assert new_dep.kind is DependencyKind.SUCCESSOR

    def test_rewrite_preserves_behavior_on_trace(
        self, firewall_setup, firewall_config, firewall_trace
    ):
        program, result, _profile = firewall_setup
        dep = result.dependency_graph.between("ACL_UDP", "ACL_DHCP")
        rewritten = remove_dependency(program, dep)
        report = compare_behavior(
            program, firewall_config, rewritten, firewall_config,
            firewall_trace,
        )
        assert report.equivalent

    def test_non_adjacent_tables_rejected(self, firewall_setup):
        program, result, _profile = firewall_setup
        dep = result.dependency_graph.between("ACL_UDP", "DNS_Drop")
        assert dep is not None
        with pytest.raises(OptimizationError):
            remove_dependency(program, dep)

    def test_original_program_untouched(self, firewall_setup):
        program, result, _profile = firewall_setup
        dep = result.dependency_graph.between("ACL_UDP", "ACL_DHCP")
        remove_dependency(program, dep)
        acl_udp = find_apply(program.ingress, "ACL_UDP")
        assert acl_udp.on_miss is None


class TestRunPhase:
    def test_single_removal_per_pass(self, firewall_setup):
        program, result, profile = firewall_setup
        outcome = run_phase(program, result, profile)
        assert outcome.removed is not None
        assert (outcome.removed.src, outcome.removed.dst) == (
            "ACL_UDP", "ACL_DHCP",
        )

    def test_no_candidates_is_a_note(self, toy_program, toy_runtime):
        from repro.packets.craft import udp_packet

        trace = [udp_packet("1.1.1.1", "10.0.0.9", 5, 53)]
        result = compile_program(toy_program, example_firewall.TARGET)
        profile = Profiler(toy_program, toy_runtime).profile(trace)
        outcome = run_phase(toy_program, result, profile)
        # fib->acl manifests on this trace (both hit packet 1).
        assert outcome.removed is None
        assert any(
            o.kind.value == "note" or o.kind.value == "rejected"
            for o in outcome.observations
        )


class TestNatGre:
    def test_match_dependency_removed(self):
        """The §4 NAT & GRE scenario: the dep is a MATCH dep (the FIB-side
        rewrite), dismissed because NAT never rewrites tunnel packets."""
        program = nat_gre.build_program()
        config = nat_gre.runtime_config()
        trace = nat_gre.make_trace(2000)
        result = compile_program(program, nat_gre.TARGET)
        profile = Profiler(program, config).profile(trace)
        outcome = run_phase(program, result, profile)
        assert outcome.removed is not None
        assert (outcome.removed.src, outcome.removed.dst) == (
            "nat", "gre_term",
        )
        assert (
            compile_program(outcome.program, nat_gre.TARGET).stages_used == 3
        )

    def test_rewrite_behavior_preserved(self):
        program = nat_gre.build_program()
        config = nat_gre.runtime_config()
        trace = nat_gre.make_trace(2000)
        result = compile_program(program, nat_gre.TARGET)
        profile = Profiler(program, config).profile(trace)
        outcome = run_phase(program, result, profile)
        report = compare_behavior(
            program, config, outcome.program, config, trace
        )
        assert report.equivalent
