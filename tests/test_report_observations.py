"""Tests for observations and report rendering."""

import pytest

from repro.core.observations import (
    Observation,
    ObservationKind,
    ObservationLog,
    Phase,
)
from repro.core.report import render_report, stage_table, summary_line


class TestObservationLog:
    def _obs(self, phase=Phase.PROFILING, kind=ObservationKind.NOTE,
             title="t"):
        return Observation(phase=phase, kind=kind, title=title, details="d")

    def test_append_and_query(self):
        log = ObservationLog()
        log.add(self._obs())
        log.add(self._obs(phase=Phase.REDUCE_MEMORY,
                          kind=ObservationKind.OPTIMIZATION))
        assert len(log.items) == 2
        assert len(log.by_phase(Phase.REDUCE_MEMORY)) == 1
        assert len(log.optimizations()) == 1

    def test_render_includes_evidence(self):
        obs = Observation(
            phase=Phase.REMOVE_DEPENDENCIES,
            kind=ObservationKind.OPTIMIZATION,
            title="removed dependency A -> B",
            details="apply B only if A misses",
            evidence={"kind": "action"},
        )
        text = obs.render()
        assert "phase 2" in text
        assert "OPTIMIZATION" in text
        assert "kind: action" in text


class TestReportRendering:
    def test_stage_table_matches_paper_shape(self, firewall_result):
        text = stage_table(firewall_result)
        assert "Initial Program   (8 stages)" in text
        assert "Removing Deps.    (7 stages)" in text
        assert "Reducing Memory   (6 stages)" in text
        assert "Offloading Code   (3 stages)" in text
        assert "ACL_DHCP+ACL_UDP" in text

    def test_full_report_sections(self, firewall_result):
        text = render_report(firewall_result)
        assert "P2GO optimization report" in text
        assert "stages: 8 -> 3" in text
        assert "controller must now implement" in text
        assert "Sketch_1" in text
        assert "observations for review" in text

    def test_summary_line(self, firewall_result):
        line = summary_line(firewall_result)
        assert "example_firewall" in line
        assert "8 -> 7 -> 6 -> 3" in line
