"""Unit + property tests for software sketches and their data-plane twins."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ReproError
from repro.sketches import BloomFilter, CountMinSketch
from repro.sketches.dataplane import add_bloom_filter, add_count_min_sketch


def key(*values):
    return tuple((v, 32) for v in values)


class TestCountMinSketch:
    def test_update_and_estimate(self):
        cms = CountMinSketch(width=64, depth=2)
        for _ in range(5):
            cms.update(key(1, 2))
        assert cms.estimate(key(1, 2)) == 5

    def test_never_undercounts(self):
        cms = CountMinSketch(width=8, depth=2)  # tiny: force collisions
        counts = {}
        for i in range(50):
            k = key(i % 7, 0)
            cms.update(k)
            counts[k] = counts.get(k, 0) + 1
        for k, true_count in counts.items():
            assert cms.estimate(k) >= true_count

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_never_undercounts_property(self, stream):
        cms = CountMinSketch(width=16, depth=2)
        truth = {}
        for value in stream:
            k = key(value)
            cms.update(k)
            truth[k] = truth.get(k, 0) + 1
        assert all(cms.estimate(k) >= c for k, c in truth.items())

    def test_update_returns_estimate(self):
        cms = CountMinSketch(width=64, depth=2)
        assert cms.update(key(9)) == 1
        assert cms.update(key(9)) == 2

    def test_reset(self):
        cms = CountMinSketch(width=16, depth=2)
        cms.update(key(1))
        cms.reset()
        assert cms.estimate(key(1)) == 0

    def test_depth_needs_algorithms(self):
        with pytest.raises(ReproError):
            CountMinSketch(width=8, depth=9)

    def test_bad_dimensions(self):
        with pytest.raises(ReproError):
            CountMinSketch(width=0)
        with pytest.raises(ReproError):
            CountMinSketch(width=8, depth=0)

    def test_memory_accounting(self):
        cms = CountMinSketch(width=100, depth=2)
        assert cms.total_memory_bytes() == 800


class TestBloomFilter:
    def test_membership(self):
        bf = BloomFilter(sizes=[128, 128])
        bf.add(key(1))
        assert bf.contains(key(1))
        assert not bf.contains(key(2))

    def test_no_false_negatives(self):
        bf = BloomFilter(sizes=[32, 32])
        keys = [key(i) for i in range(40)]
        for k in keys:
            bf.add(k)
        assert all(bf.contains(k) for k in keys)

    @given(st.sets(st.integers(0, 1000), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives_property(self, values):
        bf = BloomFilter(sizes=[64, 64])
        for v in values:
            bf.add(key(v))
        assert all(bf.contains(key(v)) for v in values)

    def test_reset_and_fill_ratio(self):
        bf = BloomFilter(sizes=[16, 16])
        assert bf.fill_ratio() == 0.0
        bf.add(key(1))
        assert bf.fill_ratio() > 0
        bf.reset()
        assert bf.fill_ratio() == 0.0

    def test_dimension_validation(self):
        with pytest.raises(ReproError):
            BloomFilter(sizes=[])
        with pytest.raises(ReproError):
            BloomFilter(sizes=[4, 4, 4])  # 3 sizes, 2 default algorithms
        with pytest.raises(ReproError):
            BloomFilter(sizes=[0, 4])


class TestDataplaneEquivalence:
    """The data-plane CMS counts exactly like the software CMS — the
    property that lets the controller take over an offloaded sketch."""

    def build_cms_program(self, cells):
        from repro.p4 import ProgramBuilder, Apply, Seq

        b = ProgramBuilder("cmsprog")
        b.header_type("k_t", [("a", 32), ("b", 32)])
        b.header("k", "k_t")
        b.parser_state("start", extracts=["k"])
        fragment = add_count_min_sketch(
            b, name="cms", key_fields=["k.a", "k.b"], cells=cells
        )
        b.ingress(Seq([Apply(t) for t in fragment.tables]))
        return b.build(), fragment

    def test_counts_match_software(self):
        from repro.packets.packet import pack_fields
        from repro.sim import BehavioralSwitch

        program, fragment = self.build_cms_program(cells=64)
        switch = BehavioralSwitch(program)
        software = CountMinSketch(width=64, depth=2)

        stream = [(1, 2)] * 5 + [(3, 4)] * 3 + [(1, 2)] * 2
        last_estimates = {}
        for a, b_val in stream:
            pkt = pack_fields(
                program.header_types["k_t"], {"a": a, "b": b_val}
            )
            result = switch.process(pkt)
            hardware = result.headers["cms_meta"]["count"]
            software_est = software.update(((a, 32), (b_val, 32)))
            assert hardware == software_est
            last_estimates[(a, b_val)] = hardware
        assert last_estimates[(1, 2)] == 7

    def test_bloom_fragment_checks_match_software(self):
        from repro.p4 import ProgramBuilder, Apply, Seq
        from repro.packets.packet import pack_fields
        from repro.sim import BehavioralSwitch, RuntimeConfig
        from repro.sketches.dataplane import preload_bloom_filter

        b = ProgramBuilder("bfprog")
        b.header_type("k_t", [("a", 32)])
        b.header("k", "k_t")
        b.parser_state("start", extracts=["k"])
        fragment = add_bloom_filter(
            b, name="bf", key_fields=["k.a"], sizes=[64, 64]
        )
        b.ingress(Seq([Apply(t) for t in fragment.check_tables]))
        program = b.build()

        members = [((i, 32),) for i in (5, 9, 12)]
        config = RuntimeConfig()
        preload_bloom_filter(config, fragment, members)
        switch = BehavioralSwitch(program, config)

        software = BloomFilter(sizes=[64, 64])
        for m in members:
            software.add(m)

        for value in range(20):
            pkt = pack_fields(program.header_types["k_t"], {"a": value})
            result = switch.process(pkt)
            hardware_hit = (
                result.headers["bf_meta"]["bit0"] == 1
                and result.headers["bf_meta"]["bit1"] == 1
            )
            assert hardware_hit == software.contains(((value, 32),))


class TestFragmentValidation:
    def test_cms_depth_validation(self):
        from repro.p4 import ProgramBuilder

        b = ProgramBuilder("p")
        b.header_type("k_t", [("a", 32)]).header("k", "k_t")
        with pytest.raises(ReproError):
            add_count_min_sketch(
                b, name="c", key_fields=["k.a"], cells=8, depth=1
            )

    def test_bloom_size_mismatch(self):
        from repro.p4 import ProgramBuilder

        b = ProgramBuilder("p")
        b.header_type("k_t", [("a", 32)]).header("k", "k_t")
        with pytest.raises(ReproError):
            add_bloom_filter(
                b, name="f", key_fields=["k.a"], sizes=[8, 8, 8]
            )
