"""Tests for memory accounting and the target model."""

import pytest

from repro.exceptions import CompilationError
from repro.p4 import (
    Apply,
    Const,
    ProgramBuilder,
    RegisterWrite,
    Seq,
)
from repro.programs import example_firewall
from repro.programs.common import EXAMPLE_TARGET
from repro.target.model import TargetModel
from repro.target.resources import (
    compute_footprints,
    register_owner_map,
    table_entry_bits,
    table_match_bytes,
    table_overhead_bytes,
)


class TestTargetModel:
    def test_defaults_positive(self):
        target = TargetModel()
        assert target.sram_bytes_per_stage > 0
        assert target.tcam_bytes_per_stage > 0

    def test_bad_parameter_rejected(self):
        with pytest.raises(CompilationError):
            TargetModel(num_stages=0)

    def test_blocks_for_rounds_up(self):
        target = TargetModel(sram_block_bytes=256, tcam_block_bytes=64)
        assert target.sram_blocks_for(1) == 1
        assert target.sram_blocks_for(256) == 1
        assert target.sram_blocks_for(257) == 2
        assert target.tcam_blocks_for(65) == 2

    def test_blocks_for_zero_is_one(self):
        assert TargetModel().sram_blocks_for(0) == 1


class TestEntryAccounting:
    @pytest.fixture(scope="class")
    def program(self):
        return example_firewall.build_program()

    def test_exact_entry_bits(self, program):
        # ACL_UDP: 16-bit key + no action data + 16 overhead.
        table = program.tables["ACL_UDP"]
        assert table_entry_bits(program, table) == 32

    def test_lpm_entry_includes_action_data(self, program):
        # IPv4: 32-bit key + 32-bit port param + 16 overhead.
        table = program.tables["IPv4"]
        assert table_entry_bits(program, table) == 80

    def test_ternary_match_bytes_key_only(self, program):
        table = program.tables["IPv4"]
        assert table_match_bytes(program, table) == 4 * table.size

    def test_ternary_overhead_bytes(self, program):
        table = program.tables["IPv4"]
        assert table_overhead_bytes(program, table) == 6 * table.size

    def test_exact_overhead_is_zero(self, program):
        table = program.tables["ACL_UDP"]
        assert table_overhead_bytes(program, table) == 0

    def test_keyless_table_no_match_memory(self, program):
        # Instrumented init tables and To_Ctl tables are keyless.
        from repro.p4.tables import Table

        keyless = Table(name="k", keys=(), actions=(), size=1)
        assert table_match_bytes(program, keyless) == 0


class TestFootprints:
    @pytest.fixture(scope="class")
    def program(self):
        return example_firewall.build_program()

    def test_sketch_row_owns_its_register(self, program):
        footprints = compute_footprints(program)
        s1 = footprints["Sketch_1"]
        assert ("dns_cms_row0", 3840) in s1.registers
        assert s1.register_blocks(EXAMPLE_TARGET) == [("dns_cms_row0", 15)]

    def test_sketch_row_fills_a_stage(self, program):
        footprints = compute_footprints(program)
        s1 = footprints["Sketch_1"]
        total = s1.total_sram_blocks(EXAMPLE_TARGET)
        assert total == EXAMPLE_TARGET.sram_blocks_per_stage

    def test_fib_spans_two_stages_of_tcam(self, program):
        footprints = compute_footprints(program)
        fib = footprints["IPv4"]
        assert fib.is_ternary
        blocks = fib.match_blocks(EXAMPLE_TARGET)
        assert (
            EXAMPLE_TARGET.tcam_blocks_per_stage
            < blocks
            <= 2 * EXAMPLE_TARGET.tcam_blocks_per_stage
        )

    def test_register_owner_map(self, program):
        owners = register_owner_map(program)
        assert owners["dns_cms_row0"] == "Sketch_1"
        assert owners["dns_cms_row1"] == "Sketch_2"

    def test_shared_register_rejected(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.register("reg", width=8, size=4)
        b.action("w1", [RegisterWrite("reg", Const(0), Const(1))])
        b.action("w2", [RegisterWrite("reg", Const(1), Const(1))])
        b.table("ta", keys=[("h.f", "exact")], actions=["w1"])
        b.table("tb", keys=[("h.f", "exact")], actions=["w2"])
        b.ingress(Seq([Apply("ta"), Apply("tb")]))
        with pytest.raises(CompilationError):
            register_owner_map(b.build())

    def test_unused_register_has_no_owner(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.register("reg", width=8, size=4)
        assert register_owner_map(b.build()) == {}
