"""Tests for the comparison baselines (static compiler, P5-style)."""

import pytest

from repro.baselines import (
    Policy,
    compile_static,
    deactivate_feature_blocks,
    optimize_with_policy,
)
from repro.exceptions import OptimizationError
from repro.programs import example_firewall, failure_detection, nat_gre


class TestStatic:
    def test_static_matches_compiler(self, firewall_program):
        result = compile_static(firewall_program, example_firewall.TARGET)
        assert result.stages == 8
        assert result.fits


class TestP5Policy:
    def test_unused_feature_block_removed(self, firewall_program):
        """With a policy declaring the DNS feature unused, P5 removes the
        whole block — its coarse-grained best case."""
        policy = Policy(
            unused_features={
                "dns_rate_limit": (
                    "Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop",
                )
            }
        )
        result = optimize_with_policy(
            firewall_program, policy, example_firewall.TARGET
        )
        assert result.stages_before == 8
        assert result.stages_after == 4
        assert set(result.removed_tables) == {
            "Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop",
        }

    def test_partially_used_block_kept(self, firewall_program):
        """P5's granularity limit: naming only Sketch_1 removes nothing
        (the block also applies other tables)."""
        policy = Policy(unused_features={"partial": ("Sketch_1",)})
        result = optimize_with_policy(
            firewall_program, policy, example_firewall.TARGET
        )
        assert result.stages_after == result.stages_before
        assert result.removed_tables == ()

    def test_empty_policy_changes_nothing(self, firewall_program):
        result = optimize_with_policy(
            firewall_program, Policy(), example_firewall.TARGET
        )
        assert result.stages_after == result.stages_before

    def test_unknown_table_in_policy_rejected(self, firewall_program):
        policy = Policy(unused_features={"x": ("ghost",)})
        with pytest.raises(OptimizationError):
            deactivate_feature_blocks(firewall_program, policy)

    def test_p5_cannot_remove_nat_gre_dependency(self):
        """§2.2 / Table 3: both NAT and GRE are needed, so no policy can
        name either unused — P5 cannot shorten this pipeline while P2GO
        saves a stage."""
        program = nat_gre.build_program()
        result = optimize_with_policy(program, Policy(), nat_gre.TARGET)
        assert result.stages_after == 4  # unchanged

    def test_p5_cannot_offload_used_code(self):
        """§2.2: the failure-detection CMS *is* used (rarely), so a
        truthful policy keeps it; P5 saves nothing where P2GO frees two
        stages."""
        program = failure_detection.build_program()
        result = optimize_with_policy(
            program, Policy(), failure_detection.TARGET
        )
        assert result.stages_after == 4

    def test_deactivated_program_validates(self, firewall_program):
        policy = Policy(
            unused_features={
                "dns": ("Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop")
            }
        )
        reduced = deactivate_feature_blocks(firewall_program, policy)
        reduced.validate()
        assert "Sketch_1" not in reduced.tables
