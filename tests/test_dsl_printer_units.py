"""Direct unit tests for the DSL pretty-printer's leaf functions."""

import pytest

from repro.p4 import (
    AddHeader,
    AddToField,
    BinOp,
    Const,
    Drop,
    FieldRef,
    HashFields,
    LAnd,
    LNot,
    LOr,
    MinOf,
    ModifyField,
    NoOp,
    ParamRef,
    RegisterRead,
    RegisterSize,
    RegisterWrite,
    RemoveHeader,
    SendToController,
    SetEgressPort,
    SubtractFromField,
    ValidExpr,
)
from repro.p4.dsl.printer import print_expr, print_primitive

F = FieldRef("h", "f")
G = FieldRef("h", "g")


class TestPrintExpr:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            (F, "h.f"),
            (Const(42), "42"),
            (ParamRef("port"), "port"),
            (RegisterSize("reg"), "size(reg)"),
            (ValidExpr("udp"), "valid(udp)"),
            (BinOp(">=", F, Const(128)), "(h.f >= 128)"),
            (LNot(ValidExpr("udp")), "not valid(udp)"),
            (LAnd(ValidExpr("a"), ValidExpr("b")),
             "(valid(a) and valid(b))"),
            (LOr(ValidExpr("a"), ValidExpr("b")),
             "(valid(a) or valid(b))"),
            (
                BinOp("&", F, BinOp("+", G, Const(1))),
                "(h.f & (h.g + 1))",
            ),
        ],
    )
    def test_rendering(self, expr, expected):
        assert print_expr(expr) == expected


class TestPrintPrimitive:
    @pytest.mark.parametrize(
        "prim,expected",
        [
            (ModifyField(F, Const(1)), "modify_field(h.f, 1);"),
            (AddToField(F, G), "add_to_field(h.f, h.g);"),
            (SubtractFromField(F, Const(2)),
             "subtract_from_field(h.f, 2);"),
            (Drop(), "drop();"),
            (NoOp(), "no_op();"),
            (SetEgressPort(ParamRef("p")), "set_egress_port(p);"),
            (SendToController(7), "send_to_controller(7);"),
            (RegisterRead(F, "reg", Const(0)),
             "register_read(h.f, reg, 0);"),
            (RegisterWrite("reg", Const(0), F),
             "register_write(reg, 0, h.f);"),
            (
                HashFields(F, "crc32_a", (F, G), RegisterSize("reg")),
                "hash(h.f, crc32_a, {h.f, h.g}, size(reg));",
            ),
            (MinOf(F, F, G), "min(h.f, h.f, h.g);"),
            (AddHeader("x"), "add_header(x);"),
            (RemoveHeader("x"), "remove_header(x);"),
        ],
    )
    def test_rendering(self, prim, expected):
        assert print_primitive(prim) == expected

    def test_every_rendering_reparses(self):
        """Each printed primitive parses back to an equal primitive."""
        from repro.p4.dsl import parse_program

        prims = [
            ModifyField(F, Const(1)),
            AddToField(F, G),
            SubtractFromField(F, Const(2)),
            Drop(),
            NoOp(),
            SetEgressPort(Const(3)),
            SendToController(7),
            RegisterRead(F, "reg", Const(0)),
            RegisterWrite("reg", Const(0), F),
            HashFields(F, "crc32_a", (F, G), RegisterSize("reg")),
            MinOf(F, F, G),
        ]
        body = "\n    ".join(print_primitive(p) for p in prims)
        source = f"""
header_type h_t {{ fields {{ f : 8; g : 16; }} }}
header h_t h;
register reg {{ width : 8; instance_count : 4; }}
action everything() {{
    {body}
}}
"""
        program = parse_program(source, "p")
        assert tuple(program.actions["everything"].primitives) == tuple(
            prims
        )
