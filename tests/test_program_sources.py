"""The checked-in DSL sources in examples/programs/ stay in sync with the
builder-constructed programs (they are what a user would feed the CLI)."""

from pathlib import Path

import pytest

from repro.p4.control import control_equal, normalize
from repro.p4.dsl import parse_program
from repro.programs import (
    cgnat,
    ddos_mitigation,
    enterprise,
    example_firewall,
    failure_detection,
    load_balancer,
    nat_gre,
    sourceguard,
    telemetry,
)

SOURCES = Path(__file__).parent.parent / "examples" / "programs"

MODULES = {
    "cgnat": cgnat,
    "ddos_mitigation": ddos_mitigation,
    "example_firewall": example_firewall,
    "load_balancer": load_balancer,
    "nat_gre": nat_gre,
    "sourceguard": sourceguard,
    "failure_detection": failure_detection,
    "telemetry": telemetry,
    "enterprise": enterprise,
}


@pytest.mark.parametrize("name", sorted(MODULES))
def test_dsl_source_matches_builder(name):
    source_path = SOURCES / f"{name}.p4"
    assert source_path.exists(), f"missing {source_path}"
    parsed = parse_program(source_path.read_text(), name)
    built = MODULES[name].build_program()
    assert parsed.header_types == built.header_types
    assert parsed.headers == built.headers
    assert parsed.registers == built.registers
    assert parsed.actions == built.actions
    assert parsed.tables == built.tables
    assert parsed.parser == built.parser
    assert control_equal(
        normalize(parsed.ingress), normalize(built.ingress)
    )


@pytest.mark.parametrize("name", sorted(MODULES))
def test_dsl_source_compiles_identically(name):
    from repro.target import compile_program

    source_path = SOURCES / f"{name}.p4"
    parsed = parse_program(source_path.read_text(), name)
    built = MODULES[name].build_program()
    target = MODULES[name].TARGET
    assert (
        compile_program(parsed, target).stage_map()
        == compile_program(built, target).stage_map()
    )
