"""Shared fixtures.

Expensive artifacts (example programs, traces, full pipeline runs) are
session-scoped: they are deterministic, and every test treats them as
read-only.
"""

from __future__ import annotations

import pytest

from repro.core import P2GO
from repro.core.profiler import Profiler
from repro.p4 import (
    Apply,
    Drop,
    If,
    ParamRef,
    ProgramBuilder,
    Seq,
    SetEgressPort,
    ValidExpr,
)
from repro.packets import headers as hdr
from repro.programs import (
    example_firewall,
    failure_detection,
    nat_gre,
    sourceguard,
)
from repro.sim import RuntimeConfig

#: Trace size used throughout the suite — big enough for the heavy DNS
#: flow to cross the 128-query threshold, small enough to keep the suite
#: fast.
TRACE_SIZE = 4000


def build_toy_program(name: str = "toy") -> "Program":
    """A small two-table router + ACL used by many unit tests."""
    b = ProgramBuilder(name)
    for t in (hdr.ETHERNET, hdr.IPV4, hdr.UDP):
        b.header_type(t.name, [(f.name, f.width) for f in t.fields])
    b.header("ethernet", "ethernet_t")
    b.header("ipv4", "ipv4_t")
    b.header("udp", "udp_t")
    b.parser_state(
        "start",
        extracts=["ethernet"],
        select="ethernet.etherType",
        transitions={hdr.ETHERTYPE_IPV4: "parse_ipv4"},
    )
    b.parser_state(
        "parse_ipv4",
        extracts=["ipv4"],
        select="ipv4.protocol",
        transitions={hdr.IPPROTO_UDP: "parse_udp"},
    )
    b.parser_state("parse_udp", extracts=["udp"])
    b.action("fwd", [SetEgressPort(ParamRef("port"))], parameters=["port"])
    b.action("deny", [Drop()])
    b.table(
        "fib",
        keys=[("ipv4.dstAddr", "lpm")],
        actions=["fwd"],
        size=64,
    )
    b.table(
        "acl",
        keys=[("udp.dstPort", "exact")],
        actions=["deny"],
        size=16,
    )
    b.ingress(
        Seq(
            [
                If(ValidExpr("ipv4"), Apply("fib")),
                If(ValidExpr("udp"), Apply("acl")),
            ]
        )
    )
    return b.build()


def toy_config() -> RuntimeConfig:
    cfg = RuntimeConfig()
    cfg.add_entry("fib", [(hdr.ip_to_int("10.0.0.0"), 8)], "fwd", [3])
    cfg.add_entry("fib", [(0, 0)], "fwd", [1])
    cfg.add_entry("acl", [53], "deny")
    return cfg


@pytest.fixture
def toy_program():
    return build_toy_program()


@pytest.fixture
def toy_runtime():
    return toy_config()


# ---------------------------------------------------------------------
# Example firewall (Ex. 1)


@pytest.fixture(scope="session")
def firewall_program():
    return example_firewall.build_program()


@pytest.fixture(scope="session")
def firewall_config():
    return example_firewall.runtime_config()


@pytest.fixture(scope="session")
def firewall_trace():
    return example_firewall.make_trace(TRACE_SIZE)


@pytest.fixture(scope="session")
def firewall_profile(firewall_program, firewall_config, firewall_trace):
    return Profiler(firewall_program, firewall_config).profile(firewall_trace)


@pytest.fixture(scope="session")
def firewall_result(firewall_program, firewall_config, firewall_trace):
    """The full 4-phase P2GO run on Ex. 1 (Table 2's source of truth)."""
    return P2GO(
        firewall_program,
        firewall_config,
        firewall_trace,
        example_firewall.TARGET,
    ).run()


# ---------------------------------------------------------------------
# §4 scenarios


@pytest.fixture(scope="session")
def natgre_result():
    prog = nat_gre.build_program()
    return P2GO(
        prog, nat_gre.runtime_config(), nat_gre.make_trace(), nat_gre.TARGET
    ).run()


@pytest.fixture(scope="session")
def sourceguard_result():
    prog = sourceguard.build_program()
    return P2GO(
        prog,
        sourceguard.runtime_config(prog),
        sourceguard.make_trace(),
        sourceguard.TARGET,
    ).run()


@pytest.fixture(scope="session")
def failure_result():
    prog = failure_detection.build_program()
    return P2GO(
        prog,
        failure_detection.runtime_config(),
        failure_detection.make_trace(),
        failure_detection.TARGET,
    ).run()
