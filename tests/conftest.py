"""Shared fixtures.

Expensive artifacts (example programs, traces, full pipeline runs) are
session-scoped: they are deterministic, and every test treats them as
read-only.
"""

from __future__ import annotations

import os

import pytest

from repro.core import P2GO
from repro.core.profiler import Profiler
from repro.p4 import (
    Apply,
    Drop,
    If,
    ParamRef,
    ProgramBuilder,
    Seq,
    SetEgressPort,
    ValidExpr,
)
from repro.packets import headers as hdr
from repro.programs import (
    example_firewall,
    failure_detection,
    nat_gre,
    sourceguard,
)
from repro.sim import RuntimeConfig

#: Trace size used throughout the suite — big enough for the heavy DNS
#: flow to cross the 128-query threshold, small enough to keep the suite
#: fast.
TRACE_SIZE = 4000


@pytest.fixture(scope="session", autouse=True)
def _hermetic_store_base(tmp_path_factory):
    """CI's store-matrix leg runs the suite with ``$P2GO_STORE`` set so
    every pipeline construction routes through a real
    :class:`~repro.core.store.SessionStore`.  The suite must never touch
    the *actual* shared store, though — entries left by an earlier run
    would warm-start fixtures whose counters and per-phase perf tests
    assert on — so the whole pytest invocation is redirected to a fresh
    directory.  Session-scoped pipeline fixtures (which instantiate
    before any function-scoped fixture) land here."""
    if os.environ.get("P2GO_STORE"):
        base = tmp_path_factory.mktemp("p2go-store")
        original = os.environ["P2GO_STORE"]
        os.environ["P2GO_STORE"] = str(base)
        yield
        os.environ["P2GO_STORE"] = original
    else:
        yield


@pytest.fixture(autouse=True)
def _hermetic_store(tmp_path, monkeypatch):
    """One fresh store per test on the store-enabled leg: tests stay
    independent (no cross-test warm starts), while every P2GO/CLI run
    inside a test still exercises the disk tier end to end."""
    if os.environ.get("P2GO_STORE"):
        monkeypatch.setenv("P2GO_STORE", str(tmp_path / "p2go-store"))


def build_toy_program(name: str = "toy") -> "Program":
    """A small two-table router + ACL used by many unit tests."""
    b = ProgramBuilder(name)
    for t in (hdr.ETHERNET, hdr.IPV4, hdr.UDP):
        b.header_type(t.name, [(f.name, f.width) for f in t.fields])
    b.header("ethernet", "ethernet_t")
    b.header("ipv4", "ipv4_t")
    b.header("udp", "udp_t")
    b.parser_state(
        "start",
        extracts=["ethernet"],
        select="ethernet.etherType",
        transitions={hdr.ETHERTYPE_IPV4: "parse_ipv4"},
    )
    b.parser_state(
        "parse_ipv4",
        extracts=["ipv4"],
        select="ipv4.protocol",
        transitions={hdr.IPPROTO_UDP: "parse_udp"},
    )
    b.parser_state("parse_udp", extracts=["udp"])
    b.action("fwd", [SetEgressPort(ParamRef("port"))], parameters=["port"])
    b.action("deny", [Drop()])
    b.table(
        "fib",
        keys=[("ipv4.dstAddr", "lpm")],
        actions=["fwd"],
        size=64,
    )
    b.table(
        "acl",
        keys=[("udp.dstPort", "exact")],
        actions=["deny"],
        size=16,
    )
    b.ingress(
        Seq(
            [
                If(ValidExpr("ipv4"), Apply("fib")),
                If(ValidExpr("udp"), Apply("acl")),
            ]
        )
    )
    return b.build()


def toy_config() -> RuntimeConfig:
    cfg = RuntimeConfig()
    cfg.add_entry("fib", [(hdr.ip_to_int("10.0.0.0"), 8)], "fwd", [3])
    cfg.add_entry("fib", [(0, 0)], "fwd", [1])
    cfg.add_entry("acl", [53], "deny")
    return cfg


@pytest.fixture
def toy_program():
    return build_toy_program()


@pytest.fixture
def toy_runtime():
    return toy_config()


# ---------------------------------------------------------------------
# Example firewall (Ex. 1)


@pytest.fixture(scope="session")
def firewall_program():
    return example_firewall.build_program()


@pytest.fixture(scope="session")
def firewall_config():
    return example_firewall.runtime_config()


@pytest.fixture(scope="session")
def firewall_trace():
    return example_firewall.make_trace(TRACE_SIZE)


@pytest.fixture(scope="session")
def firewall_profile(firewall_program, firewall_config, firewall_trace):
    return Profiler(firewall_program, firewall_config).profile(firewall_trace)


@pytest.fixture(scope="session")
def firewall_result(firewall_program, firewall_config, firewall_trace):
    """The full 4-phase P2GO run on Ex. 1 (Table 2's source of truth)."""
    return P2GO(
        firewall_program,
        firewall_config,
        firewall_trace,
        example_firewall.TARGET,
    ).run()


# ---------------------------------------------------------------------
# §4 scenarios


@pytest.fixture(scope="session")
def natgre_result():
    prog = nat_gre.build_program()
    return P2GO(
        prog, nat_gre.runtime_config(), nat_gre.make_trace(), nat_gre.TARGET
    ).run()


@pytest.fixture(scope="session")
def sourceguard_result():
    prog = sourceguard.build_program()
    return P2GO(
        prog,
        sourceguard.runtime_config(prog),
        sourceguard.make_trace(),
        sourceguard.TARGET,
    ).run()


@pytest.fixture(scope="session")
def failure_result():
    prog = failure_detection.build_program()
    return P2GO(
        prog,
        failure_detection.runtime_config(),
        failure_detection.make_trace(),
        failure_detection.TARGET,
    ).run()
