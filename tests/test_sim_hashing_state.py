"""Unit + property tests for hashing and switch state."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SimulationError
from repro.sim.hashing import ALGORITHMS, compute_hash
from repro.sim.state import SwitchState
from tests.conftest import build_toy_program


class TestHashing:
    def test_deterministic(self):
        key = ((0x0A000001, 32), (0x0A000002, 32))
        assert compute_hash("crc32_a", key, 960) == compute_hash(
            "crc32_a", key, 960
        )

    def test_algorithms_differ(self):
        key = ((12345, 32),)
        values = {
            algo: compute_hash(algo, key, 1 << 30)
            for algo in ("crc32_a", "crc32_b", "crc32_c", "fnv1a")
        }
        assert len(set(values.values())) == len(values)

    def test_unknown_algorithm(self):
        with pytest.raises(SimulationError):
            compute_hash("md5", ((1, 8),), 10)

    def test_nonpositive_modulo(self):
        with pytest.raises(SimulationError):
            compute_hash("crc32", ((1, 8),), 0)

    def test_identity_hash(self):
        assert compute_hash("identity", ((42, 32),), 1 << 31) == 42

    @given(
        st.sampled_from(sorted(ALGORITHMS)),
        st.lists(
            st.tuples(
                st.integers(0, 0xFFFFFFFF), st.sampled_from([8, 16, 32])
            ),
            min_size=1,
            max_size=4,
        ).map(
            lambda pairs: tuple(
                (v & ((1 << w) - 1), w) for v, w in pairs
            )
        ),
        st.integers(min_value=1, max_value=100_000),
    )
    def test_result_in_range(self, algo, key, modulo):
        assert 0 <= compute_hash(algo, key, modulo) < modulo

    def test_width_affects_serialization(self):
        # The same value at different widths must hash differently in
        # general (byte-serialized input).
        a = compute_hash("crc32", ((1, 8),), 1 << 30)
        b = compute_hash("crc32", ((1, 32),), 1 << 30)
        assert a != b


class TestSwitchState:
    def setup_method(self):
        program = build_toy_program()
        program.registers["r"] = __import__(
            "repro.p4.registers", fromlist=["RegisterArray"]
        ).RegisterArray(name="r", width=8, size=4)
        self.state = SwitchState(program)

    def test_read_write(self):
        self.state.write("r", 2, 7)
        assert self.state.read("r", 2) == 7

    def test_write_truncates_to_width(self):
        self.state.write("r", 0, 0x1FF)
        assert self.state.read("r", 0) == 0xFF

    def test_unknown_register(self):
        with pytest.raises(SimulationError):
            self.state.read("ghost", 0)
        with pytest.raises(SimulationError):
            self.state.write("ghost", 0, 1)

    def test_out_of_range_index(self):
        with pytest.raises(SimulationError):
            self.state.read("r", 4)
        with pytest.raises(SimulationError):
            self.state.write("r", -1, 0)

    def test_reset_zeroes(self):
        self.state.write("r", 1, 9)
        self.state.reset()
        assert self.state.read("r", 1) == 0

    def test_snapshot_is_copy(self):
        self.state.write("r", 1, 9)
        snap = self.state.snapshot()
        self.state.write("r", 1, 5)
        assert snap["r"][1] == 9

    def test_nonzero_cells(self):
        assert self.state.nonzero_cells("r") == 0
        self.state.write("r", 0, 1)
        self.state.write("r", 3, 2)
        assert self.state.nonzero_cells("r") == 2

    def test_register_size(self):
        assert self.state.register_size("r") == 4
        with pytest.raises(SimulationError):
            self.state.register_size("ghost")
