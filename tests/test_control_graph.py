"""Tests for execution-path enumeration and static mutual exclusivity."""

import pytest

from repro.analysis.control_graph import ControlGraph
from repro.p4 import (
    Apply,
    Drop,
    If,
    LNot,
    ProgramBuilder,
    Seq,
    ValidExpr,
)
from tests.conftest import build_toy_program


class TestPathEnumeration:
    def test_toy_program_paths(self, toy_program):
        cg = ControlGraph(toy_program)
        # Feasible validity combos: none/ipv4/ipv4+udp, times hit/miss
        # outcomes of the applied tables.
        assert cg.path_count() > 0
        assert cg.tables_reached() == {"fib", "acl"}

    def test_keyless_table_always_misses(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.parser_state("start", extracts=["h"])
        b.action("noop2", [])
        b.table("k", keys=[], actions=[], default_action="noop2")
        b.ingress(Apply("k"))
        cg = ControlGraph(b.build())
        outcomes = {
            e.hit for p in cg.paths for _i, e in p.apply_events()
        }
        assert outcomes == {False}

    def test_hit_and_miss_paths_for_keyed_table(self, toy_program):
        cg = ControlGraph(toy_program)
        outcomes = {
            (e.table, e.hit) for p in cg.paths for _i, e in p.apply_events()
        }
        assert ("fib", True) in outcomes
        assert ("fib", False) in outcomes


class TestParserFeasibility:
    def build_branching(self):
        """dns and dhcp on exclusive parser branches."""
        b = ProgramBuilder("p")
        b.header_type("u_t", [("port", 16)])
        b.header("udp", "u_t")
        b.header_type("x_t", [("f", 8)])
        b.header("dns", "x_t")
        b.header("dhcp", "x_t")
        b.parser_state(
            "start",
            extracts=["udp"],
            select="udp.port",
            transitions={53: "p_dns", 67: "p_dhcp"},
        )
        b.parser_state("p_dns", extracts=["dns"])
        b.parser_state("p_dhcp", extracts=["dhcp"])
        b.action("d", [Drop()])
        b.table("t_dns", keys=[("dns.f", "exact")], actions=["d"])
        b.table("t_dhcp", keys=[("dhcp.f", "exact")], actions=["d"])
        b.ingress(
            Seq(
                [
                    If(ValidExpr("dns"), Apply("t_dns")),
                    If(ValidExpr("dhcp"), Apply("t_dhcp")),
                ]
            )
        )
        return b.build()

    def test_parser_exclusive_tables(self):
        cg = ControlGraph(self.build_branching())
        assert cg.statically_exclusive("t_dns", "t_dhcp")

    def test_contradictory_validity_paths_pruned(self):
        cg = ControlGraph(self.build_branching())
        for path in cg.paths:
            tables = set(path.tables())
            assert not ({"t_dns", "t_dhcp"} <= tables)

    def test_negated_validity_guard(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.parser_state("start", extracts=["h"])
        b.action("d", [Drop()])
        b.table("t1", keys=[("h.f", "exact")], actions=["d"])
        b.table("t2", keys=[("h.f", "exact")], actions=["d"])
        b.ingress(
            Seq(
                [
                    If(ValidExpr("h"), Apply("t1")),
                    If(LNot(ValidExpr("h")), Apply("t2")),
                ]
            )
        )
        cg = ControlGraph(b.build())
        assert cg.statically_exclusive("t1", "t2")


class TestFirewallExclusivity:
    def test_dhcp_vs_dns_branch(self, firewall_program):
        """ACL_DHCP can never co-execute with the DNS branch (parser)."""
        cg = ControlGraph(firewall_program)
        for sketch_table in ("Sketch_1", "Sketch_2", "Sketch_Min",
                             "DNS_Drop"):
            assert cg.statically_exclusive("ACL_DHCP", sketch_table)

    def test_acl_udp_not_exclusive_with_dhcp(self, firewall_program):
        """Statically, a packet can be both UDP and DHCP — the 'fake'
        dependency only profiling can dismiss (§3.2)."""
        cg = ControlGraph(firewall_program)
        assert not cg.statically_exclusive("ACL_UDP", "ACL_DHCP")

    def test_ordered_pairs(self, firewall_program):
        cg = ControlGraph(firewall_program)
        pairs = cg.table_pairs_in_order()
        assert ("IPv4", "ACL_UDP") in pairs
        assert ("ACL_UDP", "IPv4") not in pairs


class TestConjunctionGuards:
    def build(self):
        """dns feature vs a 'not valid(udp) and f == 1' feature."""
        from repro.p4 import BinOp, Const, FieldRef, LAnd

        b = ProgramBuilder("p")
        b.header_type("u_t", [("port", 16)])
        b.header_type("i_t", [("f", 8)])
        b.header("ip", "i_t")
        b.header("udp", "u_t")
        b.parser_state(
            "start",
            extracts=["ip"],
            select="ip.f",
            transitions={17: "p_udp"},
        )
        b.parser_state("p_udp", extracts=["udp"])
        b.action("d", [Drop()])
        b.table("t_udp", keys=[("udp.port", "exact")], actions=["d"])
        b.table("t_probe", keys=[("ip.f", "exact")], actions=["d"])
        b.ingress(
            Seq(
                [
                    If(ValidExpr("udp"), Apply("t_udp")),
                    If(
                        LAnd(
                            LNot(ValidExpr("udp")),
                            BinOp("==", FieldRef("ip", "f"), Const(1)),
                        ),
                        Apply("t_probe"),
                    ),
                ]
            )
        )
        return b.build()

    def test_conjunct_literal_implies_exclusivity(self):
        """``not valid(udp) and ...`` taken implies udp invalid, making
        the two features statically exclusive — the property the
        telemetry program's redirect tables rely on to share a stage."""
        cg = ControlGraph(self.build())
        assert cg.statically_exclusive("t_udp", "t_probe")

    def test_untaken_conjunction_implies_nothing(self):
        """Not taking a conjunction doesn't pin either conjunct, so no
        path is spuriously pruned: t_udp is still reachable both with
        and without the probe guard."""
        cg = ControlGraph(self.build())
        assert "t_udp" in cg.tables_reached()
        assert "t_probe" in cg.tables_reached()


class TestMissBranchExclusivity:
    def test_hit_vs_miss_outcomes_tracked(self):
        """A table in another's miss branch can apply to the same packet,
        but only when the first table missed — paths record outcomes."""
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.parser_state("start", extracts=["h"])
        b.action("d", [Drop()])
        b.table("a", keys=[("h.f", "exact")], actions=["d"])
        b.table("b", keys=[("h.f", "exact")], actions=["d"])
        b.ingress(Apply("a", on_miss=Apply("b")))
        cg = ControlGraph(b.build())
        # They may co-execute (a missed, b applied)...
        assert cg.may_coexecute("a", "b")
        # ...but never with 'a' hitting.
        for path in cg.paths:
            events = {(e.table, e.hit) for _i, e in path.apply_events()}
            if ("b", True) in events or ("b", False) in events:
                assert ("a", True) not in events
