"""Unit tests for runtime configuration validation."""

import pytest

from repro.exceptions import RuntimeConfigError
from repro.sim.runtime import RuntimeConfig, TableEntry
from tests.conftest import build_toy_program, toy_config


@pytest.fixture
def program():
    return build_toy_program()


class TestValidation:
    def test_valid_config_passes(self, program):
        toy_config().validate(program)

    def test_unknown_table(self, program):
        cfg = RuntimeConfig().add_entry("ghost", [1], "fwd", [1])
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_wrong_match_arity(self, program):
        cfg = RuntimeConfig().add_entry("acl", [53, 54], "deny")
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_exact_value_too_wide(self, program):
        cfg = RuntimeConfig().add_entry("acl", [1 << 16], "deny")
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_exact_spec_must_be_int(self, program):
        cfg = RuntimeConfig().add_entry("acl", [(53, 16)], "deny")
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_lpm_spec_must_be_pair(self, program):
        cfg = RuntimeConfig().add_entry("fib", [5], "fwd", [1])
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_lpm_prefix_out_of_range(self, program):
        cfg = RuntimeConfig().add_entry("fib", [(0, 33)], "fwd", [1])
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_action_not_in_table(self, program):
        cfg = RuntimeConfig().add_entry("acl", [53], "fwd", [1])
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_action_arg_arity(self, program):
        cfg = RuntimeConfig().add_entry("fib", [(0, 0)], "fwd", [])
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_too_many_entries(self, program):
        cfg = RuntimeConfig()
        for port in range(17):  # acl size is 16
            cfg.add_entry("acl", [port], "deny")
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_default_override_validated(self, program):
        cfg = RuntimeConfig().set_default("acl", "fwd", [])
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)

    def test_register_init_bounds(self, program):
        program.registers["r"] = __import__(
            "repro.p4.registers", fromlist=["RegisterArray"]
        ).RegisterArray(name="r", width=8, size=4)
        cfg = RuntimeConfig().init_register("r", 3, 1)
        cfg.validate(program)
        bad = RuntimeConfig().init_register("r", 4, 1)
        with pytest.raises(RuntimeConfigError):
            bad.validate(program)

    def test_hashed_init_unknown_register(self, program):
        cfg = RuntimeConfig().init_register_hashed(
            "ghost", "crc32", ((1, 8),)
        )
        with pytest.raises(RuntimeConfigError):
            cfg.validate(program)


class TestAccessors:
    def test_default_for_uses_table_default(self, program):
        cfg = RuntimeConfig()
        assert cfg.default_for(program.tables["acl"]) == ("NoAction", ())

    def test_default_override(self, program):
        cfg = RuntimeConfig().set_default("acl", "deny")
        assert cfg.default_for(program.tables["acl"]) == ("deny", ())

    def test_entry_count(self):
        cfg = toy_config()
        assert cfg.entry_count("fib") == 2
        assert cfg.entry_count("ghost") == 0

    def test_clone_is_independent(self):
        cfg = toy_config()
        other = cfg.clone()
        other.add_entry("acl", [99], "deny")
        assert cfg.entry_count("acl") == 1
        assert other.entry_count("acl") == 2

    def test_restricted_to(self):
        cfg = toy_config()
        reduced = cfg.restricted_to(["acl"])
        assert reduced.entry_count("fib") == 0
        assert reduced.entry_count("acl") == 1
