"""Unit tests for the fluent ProgramBuilder."""

import pytest

from repro.exceptions import P4ValidationError
from repro.p4 import Apply, MatchKind, ProgramBuilder, Seq


def minimal_builder():
    b = ProgramBuilder("p")
    b.header_type("h_t", [("f", 8), ("g", 16)])
    b.header("h", "h_t")
    return b


class TestDeclarations:
    def test_duplicate_header_type_rejected(self):
        b = minimal_builder()
        with pytest.raises(P4ValidationError):
            b.header_type("h_t", [("x", 8)])

    def test_duplicate_header_rejected(self):
        b = minimal_builder()
        with pytest.raises(P4ValidationError):
            b.header("h", "h_t")

    def test_duplicate_register_rejected(self):
        b = minimal_builder().register("r", 8, 4)
        with pytest.raises(P4ValidationError):
            b.register("r", 8, 4)

    def test_duplicate_action_rejected(self):
        b = minimal_builder().action("a", [])
        with pytest.raises(P4ValidationError):
            b.action("a", [])

    def test_duplicate_table_rejected(self):
        b = minimal_builder().table("t")
        with pytest.raises(P4ValidationError):
            b.table("t")

    def test_duplicate_parser_state_rejected(self):
        b = minimal_builder().parser_state("start", extracts=["h"])
        with pytest.raises(P4ValidationError):
            b.parser_state("start")

    def test_metadata_shorthand(self):
        b = minimal_builder().metadata("m", [("count", 32)])
        program = b.build()
        assert program.headers["m"].metadata
        assert program.header_types["m_t"].field_width("count") == 32


class TestTableKeys:
    def test_string_field_and_kind(self):
        b = minimal_builder().table("t", keys=[("h.f", "exact")])
        program = b.build()
        key = program.tables["t"].keys[0]
        assert key.kind is MatchKind.EXACT
        assert key.field.path == "h.f"

    def test_matchkind_enum_accepted(self):
        b = minimal_builder().table("t", keys=[("h.f", MatchKind.LPM)])
        assert b.build().tables["t"].keys[0].kind is MatchKind.LPM

    def test_unknown_match_kind_rejected(self):
        b = minimal_builder()
        with pytest.raises(P4ValidationError):
            b.table("t", keys=[("h.f", "fuzzy")])


class TestParser:
    def test_first_state_becomes_start(self):
        b = minimal_builder()
        b.parser_state("entry", extracts=["h"])
        program = b.build()
        assert program.parser.start == "entry"

    def test_parser_start_override(self):
        b = minimal_builder()
        b.parser_state("other")
        b.parser_state("entry", extracts=["h"])
        b.parser_start("entry")
        assert b.build().parser.start == "entry"

    def test_no_parser_when_no_states(self):
        assert minimal_builder().build().parser is None


class TestBuild:
    def test_build_validates(self):
        b = minimal_builder()
        b.ingress(Apply("ghost"))
        with pytest.raises(P4ValidationError):
            b.build()

    def test_default_empty_ingress(self):
        program = minimal_builder().build()
        assert isinstance(program.ingress, Seq)
        assert program.ingress.nodes == ()

    def test_chaining_returns_builder(self):
        b = ProgramBuilder("p")
        assert b.header_type("x_t", [("f", 8)]).header("x", "x_t") is b
