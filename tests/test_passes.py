"""The pass framework vs the seed orchestrator.

The pass-manager pipeline must produce an *equivalent*
:class:`~repro.core.pipeline.P2GOResult` to the seed ``if/elif``
orchestrator (kept verbatim in :mod:`repro.core.seed_pipeline`) for the
paper's default phase order, the ablation reorderings, and single-phase
runs — while its session executes strictly fewer compiles and trace
replays (ISSUE 3's acceptance bar).
"""

import re

import pytest

from repro.core.passes import PassManager, PhaseOutcome
from repro.core.phase_dependencies import DependencyRemovalPass
from repro.core.phase_memory import MemoryReductionPass
from repro.core.phase_offload import OffloadPass
from repro.core.pipeline import P2GO
from repro.core.seed_pipeline import run_seed
from repro.core.session import (
    OptimizationContext,
    config_fingerprint,
    program_fingerprint,
)
from repro.programs import example_firewall

#: Phase orders the ablation bench exercises (ISSUE 3): the paper's
#: default, offload-first, memory-then-deps, and single-phase runs.
ORDERS = [(2, 3, 4), (4, 2, 3), (3, 2), (2,), (3,), (4,)]

#: Smaller than the suite-wide 4000 (six orders run twice each), but
#: large enough that the offload phase still fires on the firewall.
TRACE_SIZE = 2000


@pytest.fixture(scope="module")
def inputs():
    return (
        example_firewall.build_program(),
        example_firewall.runtime_config(),
        example_firewall.make_trace(TRACE_SIZE),
        example_firewall.TARGET,
    )


def _stable(details):
    """Blank out the one wall-clock-dependent figure in observation text."""
    return re.sub(r"[\d,.]+ packets/s", "<pps> packets/s", details)


def assert_equivalent(new, seed):
    """P2GOResult equivalence modulo the new perf/counter fields."""
    assert program_fingerprint(new.optimized_program) == (
        program_fingerprint(seed.optimized_program)
    )
    assert new.stage_history() == seed.stage_history()
    assert [o.stage_map for o in new.outcomes] == [
        o.stage_map for o in seed.outcomes
    ]
    assert [(o.phase, o.kind, o.title, _stable(o.details), o.evidence)
            for o in new.observations.items] == [
        (o.phase, o.kind, o.title, _stable(o.details), o.evidence)
        for o in seed.observations.items
    ]
    assert new.offloaded_tables == seed.offloaded_tables
    assert config_fingerprint(new.final_config) == (
        config_fingerprint(seed.final_config)
    )
    assert new.initial_profile.same_behavior_as(seed.initial_profile)


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: "-".join(map(str, o)))
def test_order_equivalent_to_seed_with_fewer_invocations(inputs, order):
    program, config, trace, target = inputs
    new = P2GO(program, config, trace, target, phases=order).run()
    seed = run_seed(program, config, trace, target, phases=order)
    assert_equivalent(new, seed)
    # The memo cache never makes a run more expensive...
    assert (
        new.session_counters.compile_executions
        <= seed.session_counters.compile_executions
    )
    assert (
        new.session_counters.profile_executions
        <= seed.session_counters.profile_executions
    )
    # ...and makes every multi-phase order strictly cheaper.  (A
    # phase-2-only run is already minimal in the seed: one compile and
    # one profile per accepted removal, nothing redundant to cache.)
    if len(order) > 1:
        assert (
            new.session_counters.profile_executions
            + new.session_counters.compile_executions
        ) < (
            seed.session_counters.profile_executions
            + seed.session_counters.compile_executions
        )


def test_default_order_profile_strictly_fewer(inputs):
    """The acceptance criterion's strongest form holds on the paper's
    default order: both compiles *and* replays strictly drop."""
    program, config, trace, target = inputs
    new = P2GO(program, config, trace, target).run()
    seed = run_seed(program, config, trace, target)
    assert (
        new.session_counters.compile_executions
        < seed.session_counters.compile_executions
    )
    assert (
        new.session_counters.profile_executions
        < seed.session_counters.profile_executions
    )


class TestPassManager:
    def test_review_hook_veto_is_a_rollback(self, inputs):
        program, config, trace, target = inputs
        ctx = OptimizationContext(program, config, trace, target)
        manager = PassManager(ctx, review_hook=lambda obs: False)
        outcome = manager.run_pass(DependencyRemovalPass(max_rounds=8))
        # The veto rolled the proposal back: session state unchanged.
        assert ctx.program is program
        assert not ctx.in_transaction
        assert outcome.stages == ctx.compile().stages_used
        assert any(
            "programmer rejected" in o.title for o in manager.log.items
        )

    def test_pass_sequence_shares_one_cache(self, inputs):
        program, config, trace, target = inputs
        ctx = OptimizationContext(program, config, trace, target)
        manager = PassManager(ctx)
        outcomes = manager.run(
            [
                DependencyRemovalPass(max_rounds=8),
                MemoryReductionPass(),
                OffloadPass(),
            ]
        )
        assert [o.stages for o in outcomes] == [7, 6, 3]
        assert all(isinstance(o, PhaseOutcome) for o in outcomes)
        assert ctx.counters.compile_hits > 0
        assert ctx.counters.profile_hits > 0
        assert manager.info["offloaded_tables"] == (
            "Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop",
        )

    def test_phase_perf_attributed_per_outcome(self, inputs):
        program, config, trace, target = inputs
        ctx = OptimizationContext(program, config, trace, target)
        ctx.profile()  # initial profile, as the pipeline would
        manager = PassManager(ctx)
        outcomes = manager.run(
            [DependencyRemovalPass(max_rounds=8), MemoryReductionPass()]
        )
        # The dependency pass's first profile is a memo hit; its later
        # rounds and the memory pass's verification replays are real.
        for outcome in outcomes:
            if outcome.profiling_perf is not None:
                assert outcome.profiling_perf.packets % len(trace) == 0
                assert outcome.profiling_perf.packets > 0

    def test_unknown_phase_still_rejected(self, inputs):
        program, config, trace, target = inputs
        with pytest.raises(ValueError, match="unknown optimization phase"):
            P2GO(program, config, trace, target, phases=(2, 9)).run()


class TestResultExtras:
    def test_session_counters_on_result(self, firewall_result):
        counters = firewall_result.session_counters
        assert counters is not None
        assert counters.compile_hits > 0
        assert counters.compile_executions <= counters.compile_calls
        assert counters.profile_executions <= counters.profile_calls

    def test_phase_outcomes_carry_profiling_perf(self, firewall_result):
        # Initial profiling always replays; later phases replay whenever
        # they accepted a change (this run accepts one per phase).
        assert firewall_result.outcomes[0].profiling_perf is not None
        assert firewall_result.profiling_perf is not None
        for outcome in firewall_result.outcomes[1:]:
            if outcome.profiling_perf is not None:
                assert outcome.profiling_perf.packets > 0

    def test_shared_session_across_runs(self, inputs):
        """A second run on the same session is nearly free: the first
        run's cache already holds every compile/profile it needs."""
        program, config, trace, target = inputs
        ctx = OptimizationContext(program, config, trace, target)
        P2GO(program, config, trace, target, session=ctx).run()
        executions_after_first = ctx.counters.compile_executions
        replays_after_first = ctx.counters.profile_executions
        second = P2GO(program, config, trace, target, session=ctx).run()
        assert ctx.counters.compile_executions == executions_after_first
        assert ctx.counters.profile_executions == replays_after_first
        assert second.stages_after == second.outcomes[-1].stages
