"""Tests for the paper's extension features implemented here:

* §3.2's runtime dependency-violation guard, and
* §6's profile drift detection.
"""

import pytest

from repro.core.drift import DriftDetector, DriftKind
from repro.core.phase_dependencies import run_phase as dep_phase
from repro.core.profiler import Profiler
from repro.core.runtime_guard import (
    GUARD_REASON,
    add_dependency_guard,
    guard_notifications,
    mirror_guard_entries,
)
from repro.exceptions import OptimizationError
from repro.packets.craft import dhcp_packet, udp_packet
from repro.programs import example_firewall
from repro.sim import BehavioralSwitch
from repro.target import compile_program


@pytest.fixture(scope="module")
def rewritten(firewall_program, firewall_config, firewall_trace):
    result = compile_program(firewall_program, example_firewall.TARGET)
    profile = Profiler(firewall_program, firewall_config).profile(
        firewall_trace
    )
    step = dep_phase(firewall_program, result, profile)
    assert step.removed is not None
    return step.program, step.removed


class TestRuntimeGuard:
    def test_guard_installs(self, rewritten, firewall_config):
        program, dep = rewritten
        guarded, guard = add_dependency_guard(program, dep.src, dep.dst)
        assert guard.table in guarded.tables
        # Guard mirrors ACL_DHCP's keys.
        assert (
            guarded.tables[guard.table].keys
            == guarded.tables["ACL_DHCP"].keys
        )

    def test_guard_fires_on_violating_packet(self, rewritten,
                                             firewall_config):
        """A packet that hits ACL_UDP *and* arrives on an untrusted DHCP
        ingress port is exactly the packet the removed dependency would
        have mattered for — the guard reports it."""
        program, dep = rewritten
        guarded, guard = add_dependency_guard(program, dep.src, dep.dst)
        config = mirror_guard_entries(firewall_config, guard)
        switch = BehavioralSwitch(guarded, config)
        violating = (
            udp_packet("10.0.0.1", "10.0.0.2", 4000, 137),  # blocked port
            example_firewall.UNTRUSTED_INGRESS_PORTS[0],
        )
        results = switch.process_trace([violating])
        assert guard_notifications(results) == [0]
        assert results[0].controller_reason == GUARD_REASON

    def test_guard_silent_on_normal_traffic(self, rewritten,
                                            firewall_config,
                                            firewall_trace):
        program, dep = rewritten
        guarded, guard = add_dependency_guard(program, dep.src, dep.dst)
        config = mirror_guard_entries(firewall_config, guard)
        switch = BehavioralSwitch(guarded, config)
        results = switch.process_trace(firewall_trace[:800])
        assert guard_notifications(results) == []

    def test_guard_requires_rewrite_shape(self, firewall_program):
        with pytest.raises(OptimizationError):
            add_dependency_guard(firewall_program, "ACL_UDP", "ACL_DHCP")

    def test_guard_requires_keyed_table(self, rewritten):
        program, _dep = rewritten
        with pytest.raises(OptimizationError):
            add_dependency_guard(program, "ACL_UDP", "ghost")


class TestDriftDetection:
    def test_no_drift_on_similar_traffic(
        self, firewall_program, firewall_config, firewall_profile, rewritten
    ):
        _program, dep = rewritten
        detector = DriftDetector(
            firewall_program,
            firewall_config,
            firewall_profile,
            removed_dependencies=[dep],
        )
        fresh = example_firewall.make_trace(4000, seed=99)
        report = detector.check(fresh)
        violations = [
            f for f in report.findings
            if f.kind is DriftKind.DEPENDENCY_MANIFESTS
        ]
        assert violations == []

    def test_dependency_drift_detected(
        self, firewall_program, firewall_config, firewall_profile, rewritten
    ):
        """Fresh traffic where blocked-UDP packets arrive on untrusted
        DHCP ports makes the removed dependency manifest."""
        _program, dep = rewritten
        detector = DriftDetector(
            firewall_program,
            firewall_config,
            firewall_profile,
            removed_dependencies=[dep],
            hit_rate_tolerance=1.1,  # isolate the dependency check
        )
        # DHCP packets to a *blocked UDP port*: impossible — instead, a
        # packet hitting both ACLs needs udp.dstPort in the blocked set
        # AND an untrusted ingress port AND a parsed dhcp header; dhcp
        # parses on ports 67/68 only, so the violating flow uses port 68
        # as source... The actual violation: a DHCP packet (dstPort 68)
        # where 68 is ALSO in the installed blocked set.  Install-time
        # drift: the operator blocks port 68.
        config = firewall_config.clone()
        config.add_entry("ACL_UDP", [68], "acl_udp_drop")
        detector_drifted_config = DriftDetector(
            firewall_program,
            config,
            firewall_profile,
            removed_dependencies=[dep],
            hit_rate_tolerance=1.1,
        )
        fresh = [
            (dhcp_packet("172.16.0.1"),
             example_firewall.UNTRUSTED_INGRESS_PORTS[0])
        ] * 10
        report = detector_drifted_config.check(fresh)
        kinds = {f.kind for f in report.findings}
        assert DriftKind.DEPENDENCY_MANIFESTS in kinds

    def test_controller_overload_detected(
        self, firewall_program, firewall_config, firewall_profile
    ):
        detector = DriftDetector(
            firewall_program,
            firewall_config,
            firewall_profile,
            offload_tables=("Sketch_1", "Sketch_2", "Sketch_Min",
                            "DNS_Drop"),
            offload_budget=0.10,
            hit_rate_tolerance=1.1,
        )
        # A DNS flood: far more of the trace reaches the offloaded branch.
        from repro.traffic.generators import dns_stream

        flood = dns_stream(
            example_firewall.HEAVY_DNS_SRC,
            example_firewall.HEAVY_DNS_DST,
            500,
        )
        report = detector.check(flood)
        kinds = {f.kind for f in report.findings}
        assert DriftKind.CONTROLLER_OVERLOAD in kinds
        assert report.drifted
        assert "controller_overload" in report.render()

    def test_controller_overload_counts_union_of_disjoint_tables(
        self, firewall_program, firewall_config, firewall_profile
    ):
        """Two offloaded tables each traversed by 30% *disjoint*
        traffic must trip a 50% budget: redirected traffic is the
        union of packets reaching any offloaded table.  The old
        per-table maximum saw 30% twice and reported no overload."""
        import random

        from repro.traffic.generators import (
            dhcp_stream,
            dns_stream,
            interleave,
            tcp_background,
        )

        rng = random.Random(7)
        dhcp = dhcp_stream(
            90, rng,
            ingress_port=example_firewall.UNTRUSTED_INGRESS_PORTS[0],
        )
        dns = dns_stream(
            example_firewall.HEAVY_DNS_SRC,
            example_firewall.HEAVY_DNS_DST,
            90,
        )
        fresh = interleave(rng, dhcp, dns, tcp_background(120, rng))

        offload_tables = ("ACL_DHCP", "Sketch_1")
        budget = 0.5
        # The premise: disjoint 30% slices, each alone under budget.
        profile = Profiler(firewall_program, firewall_config).profile(
            fresh
        )
        for table in offload_tables:
            assert profile.traversal_rate([table]) <= budget
        assert profile.traversal_rate(offload_tables) > budget

        detector = DriftDetector(
            firewall_program,
            firewall_config,
            firewall_profile,
            offload_tables=offload_tables,
            offload_budget=budget,
            hit_rate_tolerance=1.1,  # isolate the overload check
        )
        report = detector.check(fresh)
        kinds = {f.kind for f in report.findings}
        assert DriftKind.CONTROLLER_OVERLOAD in kinds

    def test_hit_rate_shift_detected(
        self, firewall_program, firewall_config, firewall_profile
    ):
        detector = DriftDetector(
            firewall_program,
            firewall_config,
            firewall_profile,
            hit_rate_tolerance=0.05,
        )
        from repro.traffic.generators import udp_background
        import random

        flood = udp_background(
            300, random.Random(5), example_firewall.BLOCKED_UDP_PORTS
        )
        report = detector.check(flood)
        shifted = {
            f.subject for f in report.findings
            if f.kind is DriftKind.HIT_RATE_SHIFT
        }
        assert "ACL_UDP" in shifted

    def test_clean_report_renders(self, firewall_program, firewall_config,
                                  firewall_profile):
        detector = DriftDetector(
            firewall_program, firewall_config, firewall_profile,
            hit_rate_tolerance=1.1,
        )
        fresh = example_firewall.make_trace(1000, seed=1)
        report = detector.check(fresh)
        assert not report.drifted
        assert "no drift" in report.render()
