"""Tests for the egress pipeline (§2.1: "an ingress and egress pipeline").

Ingress and egress tables share each stage's memory pools; each
pipeline's dependency timeline restarts at stage 0.  Egress runs only for
packets the traffic manager emits (not dropped, not punted).
"""

import pytest

from repro.p4 import (
    Apply,
    Drop,
    FieldRef,
    If,
    ModifyField,
    ParamRef,
    ProgramBuilder,
    Seq,
    SetEgressPort,
    ValidExpr,
)
from repro.packets import headers as hdr
from repro.packets.craft import udp_packet
from repro.sim import BehavioralSwitch, RuntimeConfig
from repro.target import compile_program
from repro.target.model import TargetModel

TARGET = TargetModel(
    name="egress-test",
    num_stages=12,
    sram_blocks_per_stage=16,
    tcam_blocks_per_stage=8,
    sram_block_bytes=256,
    tcam_block_bytes=64,
)


def build_router(with_acl=True):
    """FIB at ingress; L2 source-MAC rewrite at egress."""
    b = ProgramBuilder("egress_router")
    for t in (hdr.ETHERNET, hdr.IPV4, hdr.UDP):
        b.header_type(t.name, [(f.name, f.width) for f in t.fields])
    b.header("ethernet", "ethernet_t")
    b.header("ipv4", "ipv4_t")
    b.header("udp", "udp_t")
    b.parser_state(
        "start",
        extracts=["ethernet"],
        select="ethernet.etherType",
        transitions={hdr.ETHERTYPE_IPV4: "parse_ipv4"},
    )
    b.parser_state(
        "parse_ipv4",
        extracts=["ipv4"],
        select="ipv4.protocol",
        transitions={hdr.IPPROTO_UDP: "parse_udp"},
    )
    b.parser_state("parse_udp", extracts=["udp"])
    b.action("fwd", [SetEgressPort(ParamRef("port"))], parameters=["port"])
    b.action("deny", [Drop()])
    b.action(
        "smac_rewrite",
        [ModifyField(FieldRef("ethernet", "srcAddr"), ParamRef("smac"))],
        parameters=["smac"],
    )
    b.table("fib", keys=[("ipv4.dstAddr", "lpm")], actions=["fwd"], size=32)
    if with_acl:
        b.table("acl", keys=[("udp.dstPort", "exact")], actions=["deny"],
                size=16)
    b.table(
        "l2_out",
        keys=[("standard_metadata.egress_port", "exact")],
        actions=["smac_rewrite"],
        size=16,
    )
    ingress = [If(ValidExpr("ipv4"), Apply("fib"))]
    if with_acl:
        ingress.append(If(ValidExpr("udp"), Apply("acl")))
    b.ingress(Seq(ingress))
    b.egress(Apply("l2_out"))
    return b.build()


def router_config():
    cfg = RuntimeConfig()
    cfg.add_entry("fib", [(hdr.ip_to_int("10.0.0.0"), 8)], "fwd", [2])
    cfg.add_entry("fib", [(0, 0)], "fwd", [1])
    cfg.add_entry("acl", [53], "deny")
    cfg.add_entry("l2_out", [2], "smac_rewrite", [0x02CC00000002])
    return cfg


class TestSimulation:
    def test_egress_rewrites_forwarded_packets(self):
        program = build_router()
        switch = BehavioralSwitch(program, router_config())
        result = switch.process(udp_packet("1.1.1.1", "10.9.9.9", 5, 80))
        assert result.egress_port == 2
        assert "l2_out" in result.hit_tables()
        assert result.headers["ethernet"]["srcAddr"] == 0x02CC00000002

    def test_egress_skipped_for_dropped_packets(self):
        program = build_router()
        switch = BehavioralSwitch(program, router_config())
        result = switch.process(udp_packet("1.1.1.1", "10.9.9.9", 5, 53))
        assert result.dropped
        assert "l2_out" not in result.executed_tables()

    def test_egress_misses_on_other_ports(self):
        program = build_router()
        switch = BehavioralSwitch(program, router_config())
        result = switch.process(udp_packet("1.1.1.1", "99.9.9.9", 5, 80))
        assert result.egress_port == 1
        steps = {s.table: s.hit for s in result.steps}
        assert steps["l2_out"] is False


class TestValidation:
    def test_table_cannot_live_in_both_pipelines(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.table("t", keys=[("h.f", "exact")], actions=[])
        b.ingress(Apply("t"))
        b.egress(Apply("t"))
        from repro.exceptions import P4ValidationError

        with pytest.raises(P4ValidationError):
            b.build()

    def test_table_orders(self):
        program = build_router()
        assert program.ingress_tables() == ["fib", "acl"]
        assert program.egress_tables() == ["l2_out"]
        assert program.tables_in_control_order() == [
            "fib", "acl", "l2_out",
        ]


class TestAllocation:
    def test_egress_timeline_restarts_at_stage_zero(self):
        """l2_out depends on nothing in the egress pipeline, so it shares
        stage 1 with the FIB despite running 'after' the ingress."""
        program = build_router()
        result = compile_program(program, TARGET)
        placements = result.allocation.placements
        assert placements["l2_out"].first_stage == 0
        # Ingress: fib stage 0, acl stage 1 (action dep).
        assert placements["fib"].first_stage == 0
        assert placements["acl"].first_stage == 1
        assert result.stages_used == 2

    def test_egress_dependencies_respected(self):
        """Two dependent egress tables still serialize within egress."""
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.metadata("m", [("x", 8)])
        b.parser_state("start", extracts=["h"])
        b.action("w", [ModifyField(FieldRef("m", "x"), FieldRef("h", "f"))])
        b.action("r", [ModifyField(FieldRef("h", "f"), FieldRef("m", "x"))])
        b.table("e1", keys=[("h.f", "exact")], actions=["w"], size=4)
        b.table("e2", keys=[("m.x", "exact")], actions=["r"], size=4)
        b.egress(Seq([Apply("e1"), Apply("e2")]))
        program = b.build()
        result = compile_program(program, TARGET)
        placements = result.allocation.placements
        assert (
            placements["e2"].first_stage
            > placements["e1"].last_stage - 1
        )
        assert (
            placements["e2"].first_stage >= placements["e1"].last_stage + 1
        )

    def test_shared_memory_pools(self):
        """A full-stage egress register cannot share stage 0 with a
        full-stage ingress register."""
        from repro.p4.actions import RegisterWrite
        from repro.p4.expressions import Const

        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.parser_state("start", extracts=["h"])
        b.register("ri", width=32, size=1024)  # 4096 B = 16 blocks
        b.register("re", width=32, size=1024)
        b.action("wi", [RegisterWrite("ri", Const(0), Const(1))])
        b.action("we", [RegisterWrite("re", Const(0), Const(1))])
        b.table("ti", keys=[], actions=[], default_action="wi")
        b.table("te", keys=[], actions=[], default_action="we")
        b.ingress(Apply("ti"))
        b.egress(Apply("te"))
        result = compile_program(b.build(), TARGET)
        placements = result.allocation.placements
        assert placements["ti"].first_stage == 0
        assert placements["te"].first_stage == 1  # stage 0's SRAM is full


class TestDslRoundTrip:
    def test_egress_control_round_trips(self):
        from repro.p4.control import control_equal, normalize
        from repro.p4.dsl import parse_program, print_program

        program = build_router()
        source = print_program(program)
        assert "control egress {" in source
        parsed = parse_program(source, program.name)
        assert control_equal(
            normalize(parsed.egress), normalize(program.egress)
        )

    def test_empty_egress_not_printed(self, toy_program):
        from repro.p4.dsl import print_program

        assert "control egress" not in print_program(toy_program)


class TestProfiling:
    def test_egress_tables_profiled(self):
        from repro.core.profiler import profile_program

        program = build_router()
        config = router_config()
        trace = [
            udp_packet("1.1.1.1", "10.9.9.9", 5, 80),  # egress hit
            udp_packet("1.1.1.1", "99.9.9.9", 5, 80),  # egress miss
            udp_packet("1.1.1.1", "10.9.9.9", 5, 53),  # dropped
        ]
        profile = profile_program(program, config, trace)
        assert profile.hit_counts.get("l2_out", 0) == 1
        assert profile.apply_counts["l2_out"] == 2  # dropped one skipped
