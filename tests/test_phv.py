"""Tests for PHV accounting (§6 multi-dimensional resources)."""

import pytest

from repro.target.phv import DEFAULT_PHV_BITS, compute_phv_usage, live_fields
from repro.p4.expressions import FieldRef
from tests.conftest import build_toy_program


class TestLiveFields:
    def test_keys_and_actions_counted(self, toy_program):
        fields = live_fields(toy_program)
        assert FieldRef("ipv4", "dstAddr") in fields  # fib key
        assert FieldRef("udp", "dstPort") in fields  # acl key
        # Drop writes intrinsic fields.
        assert FieldRef("standard_metadata", "egress_port") in fields

    def test_condition_reads_counted(self, firewall_program):
        fields = live_fields(firewall_program)
        assert FieldRef("dns_cms_meta", "count") in fields


class TestUsage:
    def test_toy_program_usage(self, toy_program):
        usage = compute_phv_usage(toy_program)
        # ipv4 (160) + udp (64) headers are live; ethernet is parse-only.
        assert usage.header_bits == 160 + 64
        assert usage.metadata_bits == 0
        assert usage.standard_bits == 50  # the intrinsic header
        assert usage.fits

    def test_metadata_counts_live_fields_only(self, firewall_program):
        usage = compute_phv_usage(firewall_program)
        # All of dns_cms_meta's fields are live: 2x(idx 32 + count 32) +
        # min 32 = 160 bits.
        assert usage.metadata_bits == 160
        assert usage.fits

    def test_offloading_frees_phv(self, firewall_result):
        """Stage optimization helps the PHV dimension too: the offloaded
        sketch's metadata leaves the PHV."""
        before = compute_phv_usage(firewall_result.original_program)
        after = compute_phv_usage(firewall_result.optimized_program)
        assert after.metadata_bits < before.metadata_bits
        assert after.total_bits < before.total_bits

    def test_budget_check(self, toy_program):
        tight = compute_phv_usage(toy_program, budget_bits=100)
        assert not tight.fits
        assert tight.utilization > 1.0

    def test_render(self, toy_program):
        text = compute_phv_usage(toy_program).render()
        assert "PHV:" in text
        assert str(DEFAULT_PHV_BITS) in text
