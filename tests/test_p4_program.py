"""Unit tests for Program validation, cloning, and derived programs."""

import pytest

from repro.exceptions import P4ValidationError
from repro.p4 import (
    Apply,
    Drop,
    FieldRef,
    If,
    ModifyField,
    ProgramBuilder,
    RegisterRead,
    Seq,
    ValidExpr,
    Const,
)
from tests.conftest import build_toy_program


class TestValidation:
    def test_toy_program_validates(self):
        build_toy_program().validate()

    def test_unknown_table_in_control(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.ingress(Apply("ghost"))
        with pytest.raises(P4ValidationError):
            b.build()

    def test_table_applied_twice_rejected(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.table("t", keys=[("h.f", "exact")], actions=[])
        b.ingress(Seq([Apply("t"), Apply("t")]))
        with pytest.raises(P4ValidationError):
            b.build()

    def test_action_with_unknown_field(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.action("bad", [ModifyField(FieldRef("h", "ghost"), Const(1))])
        with pytest.raises(P4ValidationError):
            b.build()

    def test_action_with_unknown_register(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.action(
            "bad", [RegisterRead(FieldRef("h", "f"), "ghost", Const(0))]
        )
        with pytest.raises(P4ValidationError):
            b.build()

    def test_table_with_unknown_action(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.table("t", keys=[("h.f", "exact")], actions=["ghost"])
        with pytest.raises(P4ValidationError):
            b.build()

    def test_default_action_arity_checked(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        from repro.p4 import ParamRef

        b.action("needs_arg", [ModifyField(FieldRef("h", "f"), ParamRef("v"))],
                 parameters=["v"])
        b.table("t", keys=[("h.f", "exact")], actions=["needs_arg"],
                default_action="needs_arg", default_action_args=[])
        with pytest.raises(P4ValidationError):
            b.build()

    def test_condition_with_unknown_header(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        b.table("t", keys=[("h.f", "exact")], actions=[])
        b.ingress(If(ValidExpr("ghost"), Apply("t")))
        with pytest.raises(P4ValidationError):
            b.build()

    def test_parser_extracting_metadata_rejected(self):
        b = ProgramBuilder("p")
        b.metadata("m", [("f", 8)])
        b.parser_state("start", extracts=["m"])
        with pytest.raises(P4ValidationError):
            b.build()


class TestIntrinsics:
    def test_standard_metadata_always_present(self, toy_program):
        assert "standard_metadata" in toy_program.headers
        assert toy_program.headers["standard_metadata"].metadata

    def test_noaction_always_present(self, toy_program):
        assert "NoAction" in toy_program.actions


class TestClone:
    def test_clone_is_deep(self, toy_program):
        copied = toy_program.clone()
        copied.tables["fib"] = copied.tables["fib"].resized(8)
        assert toy_program.tables["fib"].size == 64

    def test_clone_rename(self, toy_program):
        assert toy_program.clone("other").name == "other"


class TestDerivedPrograms:
    def test_with_table_size(self, toy_program):
        resized = toy_program.with_table_size("fib", 32)
        assert resized.tables["fib"].size == 32
        assert toy_program.tables["fib"].size == 64

    def test_with_table_size_unknown(self, toy_program):
        with pytest.raises(P4ValidationError):
            toy_program.with_table_size("ghost", 32)

    def test_with_register_size_unknown(self, toy_program):
        with pytest.raises(P4ValidationError):
            toy_program.with_register_size("ghost", 32)

    def test_with_ingress(self, toy_program):
        reduced = toy_program.with_ingress(Apply("fib"))
        assert reduced.tables_in_control_order() == ["fib"]
        assert toy_program.tables_in_control_order() == ["fib", "acl"]


class TestQueries:
    def test_field_width(self, toy_program):
        assert toy_program.field_width(FieldRef("ipv4", "dstAddr")) == 32
        assert toy_program.field_width(FieldRef("udp", "dstPort")) == 16

    def test_field_width_unknown_header(self, toy_program):
        with pytest.raises(P4ValidationError):
            toy_program.field_width(FieldRef("ghost", "x"))

    def test_packet_headers_exclude_metadata(self, toy_program):
        names = [h.name for h in toy_program.packet_headers()]
        assert "standard_metadata" not in names
        assert "ipv4" in names

    def test_tables_accessing_register(self):
        from repro.programs import example_firewall

        program = example_firewall.build_program()
        assert program.tables_accessing_register("dns_cms_row0") == [
            "Sketch_1"
        ]
        assert program.tables_accessing_register("dns_cms_row1") == [
            "Sketch_2"
        ]
