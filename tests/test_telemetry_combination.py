"""End-to-end tests of multi-segment offload (§3.4's DP) on the
telemetry program."""

import pytest

from repro.core.phase_offload import (
    enumerate_candidates,
    evaluate_candidates,
    make_combined_offloaded_program,
    run_phase,
    select_combination,
)
from repro.exceptions import OffloadError
from repro.programs import telemetry
from repro.target import compile_program


@pytest.fixture(scope="module")
def setup():
    program = telemetry.build_program()
    config = telemetry.runtime_config()
    trace = telemetry.make_trace(3000)
    return program, config, trace


class TestTelemetryProgram:
    def test_five_stages(self, setup):
        program, _config, _trace = setup
        assert compile_program(program, telemetry.TARGET).stages_used == 5

    def test_feature_rates(self, setup):
        program, config, trace = setup
        from repro.core.profiler import Profiler

        profile = Profiler(program, config).profile(trace)
        assert profile.apply_rate("dns_hh") == pytest.approx(0.024, abs=0.003)
        assert profile.apply_rate("ttl_probe") == pytest.approx(
            0.01, abs=0.003
        )
        assert profile.apply_rate("syn_mon") == pytest.approx(
            0.05, abs=0.005
        )


class TestCombination:
    def test_no_single_candidate_saves_two(self, setup):
        program, config, trace = setup
        evaluated = evaluate_candidates(
            program, config, trace, telemetry.TARGET,
            enumerate_candidates(program),
        )
        affordable = [
            e for e in evaluated if e.redirect_fraction <= 0.10
        ]
        assert all(e.stages_saved < 2 for e in affordable)

    def test_dp_picks_cheapest_pair(self, setup):
        program, config, trace = setup
        evaluated = evaluate_candidates(
            program, config, trace, telemetry.TARGET,
            enumerate_candidates(program),
        )
        combo = select_combination(
            evaluated, min_stage_savings=2, max_redirect_fraction=0.10
        )
        tables = {t for e in combo for t in e.candidate.tables}
        assert tables == {"dns_hh", "ttl_probe"}

    def test_combined_program_saves_two_stages(self, setup):
        program, config, trace = setup
        evaluated = evaluate_candidates(
            program, config, trace, telemetry.TARGET,
            enumerate_candidates(program),
        )
        combo = select_combination(
            evaluated, min_stage_savings=2, max_redirect_fraction=0.10
        )
        combined = make_combined_offloaded_program(
            program, [e.candidate for e in combo]
        )
        assert compile_program(combined, telemetry.TARGET).stages_used == 3
        # Each segment has its own redirect table.
        assert "To_Ctl" in combined.tables
        assert "To_Ctl_2" in combined.tables

    def test_overlapping_segments_rejected(self, setup):
        program, _config, _trace = setup
        candidates = enumerate_candidates(program)
        dns = next(c for c in candidates if c.tables == ("dns_hh",))
        with pytest.raises(OffloadError):
            make_combined_offloaded_program(program, [dns, dns])

    def test_run_phase_with_combination(self, setup):
        program, config, trace = setup
        outcome = run_phase(
            program,
            config,
            trace,
            telemetry.TARGET,
            min_stage_savings=2,
            allow_combination=True,
        )
        assert len(outcome.combination) == 2
        offloaded = {
            t for e in outcome.combination for t in e.candidate.tables
        }
        assert offloaded == {"dns_hh", "ttl_probe"}
        assert (
            compile_program(outcome.program, telemetry.TARGET).stages_used
            == 3
        )
        titles = [o.title for o in outcome.observations]
        assert any("combination" in t for t in titles)

    def test_run_phase_without_combination_flag(self, setup):
        program, config, trace = setup
        outcome = run_phase(
            program,
            config,
            trace,
            telemetry.TARGET,
            min_stage_savings=2,
            allow_combination=False,
        )
        assert outcome.offloaded is None

    def test_combined_behavior_preserved(self, setup):
        """Each redirected packet gets its original verdict from the
        matching controller segment."""
        program, config, trace = setup
        outcome = run_phase(
            program, config, trace, telemetry.TARGET,
            min_stage_savings=2, allow_combination=True,
        )
        from repro.sim import BehavioralSwitch

        original = BehavioralSwitch(program, config)
        optimized = BehavioralSwitch(outcome.program, outcome.config)
        redirected = 0
        for entry in trace:
            data = entry[0] if isinstance(entry, tuple) else entry
            r_orig = original.process(data)
            r_opt = optimized.process(data)
            if r_opt.to_controller:
                redirected += 1
                # Redirected packets are exactly those that traversed an
                # offloaded feature in the original.
                executed = set(r_orig.executed_tables())
                assert executed & {"dns_hh", "ttl_probe"}
            else:
                assert (
                    r_opt.forwarding_decision()
                    == r_orig.forwarding_decision()
                )
        assert 0 < redirected < len(trace) * 0.05
