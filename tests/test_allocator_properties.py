"""Property tests: stage-allocation invariants over random programs.

For any generated program, the allocator must (1) place every applied
table on a contiguous stage span, (2) respect every dependency's minimum
stage separation, (3) never oversubscribe a stage's SRAM/TCAM blocks or
table slots, and (4) be deterministic.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dependencies import build_dependency_graph
from repro.p4 import (
    Apply,
    Const,
    Drop,
    FieldRef,
    If,
    ModifyField,
    ProgramBuilder,
    Seq,
    SetEgressPort,
    ValidExpr,
)
from repro.target.allocation import allocate
from repro.target.compiler import compile_program
from repro.target.model import TargetModel
from repro.target.resources import compute_footprints

TARGET = TargetModel(
    name="prop",
    num_stages=32,
    sram_blocks_per_stage=8,
    tcam_blocks_per_stage=4,
    sram_block_bytes=128,
    tcam_block_bytes=64,
    max_tables_per_stage=3,
)

META_FIELDS = ("m0", "m1", "m2")

# Action palettes: (name suffix, primitive factory)
ACTION_KINDS = st.sampled_from(["drop", "egress", "write0", "write1",
                                "copy01", "none"])
KEY_KINDS = st.sampled_from(["exact_f1", "exact_f2", "lpm_f1", "exact_m0",
                             "keyless"])


@st.composite
def random_programs(draw):
    n_tables = draw(st.integers(2, 6))
    b = ProgramBuilder("prop")
    b.header_type("h_t", [("f1", 32), ("f2", 16)])
    b.header("h", "h_t")
    b.metadata("m", [(f, 16) for f in META_FIELDS])
    b.parser_state("start", extracts=["h"])

    def primitives_for(kind):
        if kind == "drop":
            return [Drop()]
        if kind == "egress":
            return [SetEgressPort(Const(2))]
        if kind == "write0":
            return [ModifyField(FieldRef("m", "m0"), Const(1))]
        if kind == "write1":
            return [ModifyField(FieldRef("m", "m1"), Const(1))]
        if kind == "copy01":
            return [ModifyField(FieldRef("m", "m1"), FieldRef("m", "m0"))]
        return []

    nodes = []
    for i in range(n_tables):
        action_kind = draw(ACTION_KINDS)
        key_kind = draw(KEY_KINDS)
        size = draw(st.sampled_from([1, 8, 32, 128, 512]))
        b.action(f"a{i}", primitives_for(action_kind))
        keys = {
            "exact_f1": [("h.f1", "exact")],
            "exact_f2": [("h.f2", "exact")],
            "lpm_f1": [("h.f1", "lpm")],
            "exact_m0": [("m.m0", "exact")],
            "keyless": [],
        }[key_kind]
        if keys:
            b.table(f"t{i}", keys=keys, actions=[f"a{i}"], size=size)
        else:
            b.table(f"t{i}", keys=[], actions=[], default_action=f"a{i}")
        node = Apply(f"t{i}")
        if draw(st.booleans()):
            node = If(ValidExpr("h"), node)
        nodes.append(node)
    b.ingress(Seq(nodes))
    return b.build()


@settings(max_examples=60, deadline=None)
@given(random_programs())
def test_allocation_invariants(program):
    result = compile_program(program, TARGET)
    placements = result.allocation.placements
    footprints = compute_footprints(program)

    # (1) Every applied table is placed on a contiguous span.
    for table in program.tables_in_control_order():
        placement = placements[table]
        assert placement.first_stage <= placement.last_stage
        stage_list = placement.stages()
        assert stage_list == list(
            range(placement.first_stage, placement.last_stage + 1)
        )

    # (2) Dependencies respected.
    dep_graph = result.dependency_graph
    for dep in dep_graph.edges():
        src = placements[dep.src]
        dst = placements[dep.dst]
        if dep.kind.aligns_to_first_stage:
            assert dst.first_stage >= src.first_stage, (
                f"{dep.src}->{dep.dst} ({dep.kind})"
            )
        else:
            assert (
                dst.first_stage >= src.last_stage + dep.min_stage_separation
            ), f"{dep.src}->{dep.dst} ({dep.kind})"

    # (3) No stage oversubscribed — recomputed from the placements.
    sram = defaultdict(int)
    tcam = defaultdict(int)
    slots = defaultdict(int)
    for table, placement in placements.items():
        footprint = footprints[table]
        for stage in placement.stages():
            slots[stage] += 1
        for stage, blocks in placement.match_blocks_by_stage:
            if footprint.is_ternary:
                tcam[stage] += blocks
            else:
                sram[stage] += blocks
        for register, stage in placement.register_stage:
            register_blocks = dict(
                footprint.register_blocks(TARGET)
            )[register]
            sram[stage] += register_blocks
            assert placement.first_stage <= stage <= placement.last_stage
    for stage, used in sram.items():
        assert used <= TARGET.sram_blocks_per_stage, f"stage {stage} SRAM"
    for stage, used in tcam.items():
        assert used <= TARGET.tcam_blocks_per_stage, f"stage {stage} TCAM"
    for stage, used in slots.items():
        assert used <= TARGET.max_tables_per_stage, f"stage {stage} slots"

    # (4) Full match memory accounted for.
    for table, placement in placements.items():
        footprint = footprints[table]
        placed = sum(b for _s, b in placement.match_blocks_by_stage)
        assert placed == footprint.match_blocks(TARGET)


@settings(max_examples=25, deadline=None)
@given(random_programs())
def test_allocation_deterministic(program):
    first = compile_program(program, TARGET)
    second = compile_program(program.clone(), TARGET)
    assert first.stage_map() == second.stage_map()
    assert first.stages_used == second.stages_used


@settings(max_examples=25, deadline=None)
@given(random_programs())
def test_instrumentation_never_increases_stages(program):
    """§3.1's claim, as a universal property over random programs."""
    from repro.core.instrument import instrument

    before = compile_program(program, TARGET).stages_used
    after = compile_program(instrument(program).program, TARGET).stages_used
    assert after <= before


@settings(max_examples=25, deadline=None)
@given(random_programs())
def test_stage_map_consistent_with_placements(program):
    """stage_map() is a faithful projection of the placements: a table
    appears in exactly the stages of its span, and stages_used covers the
    highest occupied stage."""
    result = compile_program(program, TARGET)
    placements = result.allocation.placements
    stage_map = result.stage_map()
    assert len(stage_map) == result.stages_used
    assert result.stages_used == 1 + max(
        p.last_stage for p in placements.values()
    )
    for table, placement in placements.items():
        span = set(placement.stages())
        for stage, tables in enumerate(stage_map):
            assert (table in tables) == (stage in span)


@settings(max_examples=25, deadline=None)
@given(random_programs())
def test_placement_independent_of_stage_count(program):
    """num_stages only decides fits — §2.2's virtual stages mean the
    placement itself is identical on a 1-stage variant of the target."""
    one_stage = TargetModel(
        name="prop-one",
        num_stages=1,
        sram_blocks_per_stage=TARGET.sram_blocks_per_stage,
        tcam_blocks_per_stage=TARGET.tcam_blocks_per_stage,
        sram_block_bytes=TARGET.sram_block_bytes,
        tcam_block_bytes=TARGET.tcam_block_bytes,
        max_tables_per_stage=TARGET.max_tables_per_stage,
    )
    wide = compile_program(program, TARGET)
    narrow = compile_program(program, one_stage)
    assert narrow.stage_map() == wide.stage_map()
    assert narrow.stages_used == wide.stages_used
    assert narrow.fits == (narrow.stages_used <= 1)
    assert wide.fits == (wide.stages_used <= TARGET.num_stages)


@settings(max_examples=25, deadline=None)
@given(random_programs())
def test_conflicting_pairs_in_distinct_ordered_stages(program):
    """MATCH/ACTION-dependent pairs never share a stage: the consumer's
    whole span starts strictly after the producer's ends."""
    result = compile_program(program, TARGET)
    placements = result.allocation.placements
    for dep in result.dependency_graph.edges():
        if dep.min_stage_separation < 1:
            continue
        src, dst = placements[dep.src], placements[dep.dst]
        assert dst.first_stage > src.last_stage
        assert not (set(src.stages()) & set(dst.stages()))


@st.composite
def register_programs(draw):
    """Programs whose tables own register arrays (one array per table)."""
    from repro.p4.actions import RegisterWrite

    n_tables = draw(st.integers(1, 4))
    b = ProgramBuilder("regprop")
    b.header_type("h_t", [("f1", 32), ("f2", 16)])
    b.header("h", "h_t")
    b.parser_state("start", extracts=["h"])
    nodes = []
    for i in range(n_tables):
        # 32-bit cells: 16..256 cells = 64..1024 B, at most one full stage.
        cells = draw(st.sampled_from([16, 64, 128, 200, 256]))
        b.register(f"r{i}", width=32, size=cells)
        b.action(f"w{i}", [RegisterWrite(f"r{i}", Const(0), Const(1))])
        if draw(st.booleans()):
            b.table(
                f"t{i}",
                keys=[("h.f1", "exact")],
                actions=[f"w{i}"],
                size=draw(st.sampled_from([1, 4, 16])),
            )
        else:
            b.table(f"t{i}", keys=[], actions=[], default_action=f"w{i}")
        nodes.append(Apply(f"t{i}"))
    b.ingress(Seq(nodes))
    return b.build()


@settings(max_examples=40, deadline=None)
@given(register_programs())
def test_registers_colocated_at_owner_first_stage(program):
    """Every owned array lands whole in the stage where its table
    executes (one stateful ALU per array), and per-stage SRAM accounting
    covers at least the recomputed match + register blocks."""
    dep_graph = build_dependency_graph(program)
    allocation = allocate(program, dep_graph, TARGET)
    footprints = compute_footprints(program)
    recomputed = defaultdict(int)
    for table, placement in allocation.placements.items():
        placed_registers = dict(placement.register_stage)
        for name, blocks in footprints[table].register_blocks(TARGET):
            assert placed_registers[name] == placement.first_stage
            recomputed[placement.first_stage] += blocks
        for stage, blocks in placement.match_blocks_by_stage:
            recomputed[stage] += blocks
    for stage, used in recomputed.items():
        assert used <= allocation.sram_used_by_stage[stage]
        assert (
            allocation.sram_used_by_stage[stage]
            <= TARGET.sram_blocks_per_stage
        )
