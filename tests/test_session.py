"""Unit tests for the memoizing compile/profile session."""

import pytest

from repro.core.session import (
    OptimizationContext,
    config_fingerprint,
    merge_perf,
    program_fingerprint,
    trace_fingerprint,
)
from repro.sim.perf import PerfCounters
from repro.target.model import DEFAULT_TARGET

from .conftest import build_toy_program, toy_config


def make_trace():
    from repro.packets.craft import udp_packet

    return [
        udp_packet("1.1.1.1", "10.0.0.9", 5, 53) for _ in range(4)
    ] + [
        udp_packet("2.2.2.2", "10.0.0.9", 5, 80) for _ in range(4)
    ]


@pytest.fixture
def ctx():
    return OptimizationContext(
        build_toy_program(), toy_config(), make_trace(), DEFAULT_TARGET
    )


class TestFingerprints:
    def test_program_fingerprint_content_keyed(self):
        a, b = build_toy_program(), build_toy_program()
        assert a is not b
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_program_fingerprint_sees_resize(self):
        a = build_toy_program()
        assert program_fingerprint(a) != program_fingerprint(
            a.with_table_size("fib", 32)
        )

    def test_config_fingerprint_ignores_mutation_stamp(self):
        a, b = toy_config(), toy_config()
        b.mutations += 7
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_config_fingerprint_sees_new_entry(self):
        a, b = toy_config(), toy_config()
        b.add_entry("acl", [123], "deny")
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_config_fingerprint_equal_for_equal_restrictions(self):
        a = toy_config()
        assert config_fingerprint(a.restricted_to(["fib"])) == (
            config_fingerprint(a.restricted_to(["fib"]))
        )


class TestMemoization:
    def test_compile_memo_hit_same_object(self, ctx):
        first = ctx.compile()
        second = ctx.compile()
        assert first is second
        assert ctx.counters.compile_calls == 2
        assert ctx.counters.compile_executions == 1
        assert ctx.counters.compile_hits == 1

    def test_compile_memo_hit_equal_content(self, ctx):
        first = ctx.compile(build_toy_program())
        second = ctx.compile(build_toy_program())
        assert first is second
        assert ctx.counters.compile_executions == 1

    def test_compile_miss_on_different_content(self, ctx):
        ctx.compile()
        ctx.compile(ctx.program.with_table_size("fib", 32))
        assert ctx.counters.compile_executions == 2

    def test_profile_memo_hit(self, ctx):
        first = ctx.profile()
        second = ctx.profile()
        assert first is second
        assert ctx.counters.profile_executions == 1
        assert ctx.counters.profile_hits == 1

    def test_profile_keyed_on_config_content(self, ctx):
        ctx.profile()
        other = toy_config()
        other.add_entry("acl", [80], "deny")
        ctx.profile(config=other)
        assert ctx.counters.profile_executions == 2
        # Restricting to all tables is an identity restriction — equal
        # content, so it shares the full config's cache line.
        ctx.profile(config=ctx.config.restricted_to(["fib", "acl"]))
        assert ctx.counters.profile_executions == 2
        # A genuinely narrower restriction is a new cache line, and two
        # equal-content restriction objects share it.
        ctx.profile(config=ctx.config.restricted_to(["fib"]))
        ctx.profile(config=ctx.config.restricted_to(["fib"]))
        assert ctx.counters.profile_executions == 3

    def test_profile_results_match_uncached(self, ctx):
        from repro.core.profiler import Profiler

        cached = ctx.profile()
        direct = Profiler(ctx.program, ctx.config).profile(ctx.trace)
        assert cached.same_behavior_as(direct)

    def test_memoize_false_executes_every_call(self):
        ctx = OptimizationContext(
            build_toy_program(),
            toy_config(),
            make_trace(),
            DEFAULT_TARGET,
            memoize=False,
        )
        ctx.compile()
        ctx.compile()
        ctx.profile()
        ctx.profile()
        assert ctx.counters.compile_executions == 2
        assert ctx.counters.profile_executions == 2
        assert ctx.counters.compile_hits == 0
        assert ctx.counters.profile_hits == 0


class TestTraceIdentity:
    """Regression: the profile memo must be keyed on the trace too — a
    session whose trace is swapped (e.g. after an OnlineProfiler drift
    alert) must not serve profiles recorded on the old traffic."""

    def test_trace_swap_invalidates_profile_cache(self, ctx):
        from repro.packets.craft import udp_packet

        before = ctx.profile()
        assert ctx.counters.profile_executions == 1
        # Swap the trace: every packet now hits the ACL's DNS entry.
        ctx.trace = [
            udp_packet("3.3.3.3", "10.0.0.9", 5, 53) for _ in range(6)
        ]
        after = ctx.profile()
        assert ctx.counters.profile_executions == 2
        assert not before.same_behavior_as(after)
        assert after.total_packets == 6

    def test_trace_swap_back_is_a_memo_hit(self, ctx):
        original = list(ctx.trace)
        first = ctx.profile()
        ctx.trace = original[:4]
        ctx.profile()
        assert ctx.counters.profile_executions == 2
        # Swapping back to equal-content traffic restores the cache line.
        ctx.trace = original
        again = ctx.profile()
        assert ctx.counters.profile_executions == 2
        assert again is first

    def test_trace_swap_rekeys_disk_hydration(self, tmp_path):
        """ISSUE 5 satellite: assigning a new trace must re-key pending
        disk hydration.  A remembered store miss recorded before a
        concurrent writer persisted the entry (simulated below) must not
        suppress the re-keyed lookup after the swap — the disk-tier
        mirror of the stale-profile regression above."""
        from repro.core.store import SessionStore
        from repro.packets.craft import udp_packet

        store_root = tmp_path / "store"
        drifted = [
            udp_packet("3.3.3.3", "10.0.0.9", 5, 53) for _ in range(6)
        ]
        # Another session persists the drifted traffic's profile.
        other = OptimizationContext(
            build_toy_program(), toy_config(), drifted, DEFAULT_TARGET,
            store=SessionStore(store_root),
        )
        other.profile()
        other.close()

        ctx = OptimizationContext(
            build_toy_program(), toy_config(), make_trace(),
            DEFAULT_TARGET, store=SessionStore(store_root),
        )
        ctx.profile()  # original traffic: disk miss, real replay
        assert ctx.counters.profile_executions == 1
        # The race the trace setter guards against: this session probed
        # the drifted trace's key before the other session's write
        # landed, and remembered the miss.
        drifted_key = (
            ctx.program_key(ctx.program),
            config_fingerprint(ctx.config),
            trace_fingerprint(drifted),
        )
        ctx._remember_store_miss(("profile", drifted_key))
        ctx.trace = drifted  # the swap must drop that stale knowledge
        ctx.profile()
        assert ctx.counters.profile_executions == 1  # no re-replay
        assert ctx.counters.profile_disk_hits == 1

    def test_trace_swap_keeps_compile_miss_knowledge(self, tmp_path):
        """Compile entries are not trace-keyed, so the swap only drops
        the profile-tagged misses."""
        from repro.core.store import SessionStore

        ctx = OptimizationContext(
            build_toy_program(), toy_config(), make_trace(),
            DEFAULT_TARGET, store=SessionStore(tmp_path / "store"),
        )
        ctx.compile()
        assert ("compile", (ctx.program_key(ctx.program),
                            ctx.target.fingerprint())) in ctx._store_misses
        ctx.trace = list(ctx.trace)[:4]
        assert any(
            entry[0] == "compile" for entry in ctx._store_misses
        )
        assert not any(
            entry[0] == "profile" for entry in ctx._store_misses
        )

    def test_pending_writes_keep_execution_time_keys(self, tmp_path):
        """Probes executed before a trace swap flush under the keys they
        were executed with, never the session's current trace."""
        from repro.core.store import SessionStore

        store = SessionStore(tmp_path / "store")
        ctx = OptimizationContext(
            build_toy_program(), toy_config(), make_trace(),
            DEFAULT_TARGET, store=store,
        )
        old_key = ctx._profile_key(ctx.program, ctx.config)
        ctx.profile()
        ctx.trace = list(ctx.trace)[:4]
        new_key = ctx._profile_key(ctx.program, ctx.config)
        assert ctx.flush_store() == 1
        assert store.load_profile(old_key) is not None
        assert store.load_profile(new_key) is None

    def test_trace_fingerprint_sees_ingress_port(self):
        from repro.core.session import trace_fingerprint
        from repro.packets.craft import udp_packet

        packet = udp_packet("1.1.1.1", "10.0.0.9", 5, 53)
        assert trace_fingerprint([packet]) == trace_fingerprint([packet])
        assert trace_fingerprint([packet]) != trace_fingerprint(
            [(packet, 7)]
        )
        assert trace_fingerprint([(packet, 0)]) == trace_fingerprint(
            [packet]
        )


class TestProgramKeyCacheBound:
    """Regression: the per-object digest cache held a strong ref to every
    program ever probed, leaking each rejected candidate AST."""

    def test_cache_is_bounded(self):
        bound = 16
        ctx = OptimizationContext(
            build_toy_program(),
            toy_config(),
            make_trace(),
            DEFAULT_TARGET,
            program_key_cache_size=bound,
        )
        programs = [
            ctx.program.with_table_size("fib", size)
            for size in range(2, 2 + 3 * bound)
        ]
        keys = [ctx.program_key(program) for program in programs]
        assert len(ctx._program_keys) <= bound
        assert len(set(keys)) == len(programs)

    def test_evicted_program_rekeys_consistently(self):
        ctx = OptimizationContext(
            build_toy_program(),
            toy_config(),
            make_trace(),
            DEFAULT_TARGET,
            program_key_cache_size=2,
        )
        program = ctx.program
        first = ctx.program_key(program)
        for size in range(2, 8):  # evict `program` from the LRU
            ctx.program_key(program.with_table_size("fib", size))
        assert ctx.program_key(program) == first

    def test_default_bound_exists(self, ctx):
        from repro.core.session import DEFAULT_PROGRAM_KEY_CACHE

        assert ctx._program_key_cache_size == DEFAULT_PROGRAM_KEY_CACHE


class TestTransactions:
    def test_commit_applies_proposal(self, ctx):
        resized = ctx.program.with_table_size("fib", 32)
        ctx.propose(program=resized)
        assert ctx.in_transaction
        ctx.commit()
        assert ctx.program is resized
        assert not ctx.in_transaction

    def test_rollback_restores_state(self, ctx):
        original = ctx.program
        ctx.propose(program=ctx.program.with_table_size("fib", 32))
        ctx.rollback()
        assert ctx.program is original
        assert not ctx.in_transaction

    def test_nested_propose_rejected(self, ctx):
        ctx.propose(program=ctx.program)
        with pytest.raises(RuntimeError):
            ctx.propose(program=ctx.program)
        ctx.rollback()

    def test_commit_without_proposal_rejected(self, ctx):
        with pytest.raises(RuntimeError):
            ctx.commit()
        with pytest.raises(RuntimeError):
            ctx.rollback()

    def test_propose_config_only_keeps_program(self, ctx):
        original = ctx.program
        restricted = ctx.config.restricted_to(["fib"])
        ctx.propose(config=restricted)
        ctx.commit()
        assert ctx.program is original
        assert ctx.config is restricted


class TestPerfWindows:
    def test_window_collects_actual_replays_only(self, ctx):
        ctx.start_perf_window()
        ctx.profile()
        perf = ctx.take_perf_window()
        assert perf is not None
        assert perf.packets == len(ctx.trace)
        # A memo hit pays nothing: the next window is empty.
        ctx.start_perf_window()
        ctx.profile()
        assert ctx.take_perf_window() is None

    def test_replay_before_first_window_is_not_attributed(self, ctx):
        """Regression: replays during pipeline setup (before the first
        ``start_perf_window``) must not leak into any phase's window."""
        ctx.profile()  # setup replay, no window open
        assert ctx.take_perf_window() is None

    def test_replay_between_windows_is_not_attributed(self, ctx):
        ctx.start_perf_window()
        ctx.profile()
        assert ctx.take_perf_window() is not None
        # The window is closed now; a fresh replay on a new trace must
        # not show up when the (never reopened) window is drained again.
        ctx.trace = list(ctx.trace)[:4]
        ctx.profile()
        assert ctx.counters.profile_executions == 2
        assert ctx.take_perf_window() is None

    def test_merge_perf(self):
        a = PerfCounters(packets=5, cache_hits=3, cache_misses=2,
                         elapsed_seconds=1.0, timed_packets=5,
                         table_lookups={"t": 2})
        b = PerfCounters(packets=7, cache_hits=0, cache_misses=7,
                         elapsed_seconds=1.0, timed_packets=7,
                         table_lookups={"t": 3, "u": 1})
        merged = merge_perf([a, b])
        assert merged.packets == 12
        assert merged.table_lookups == {"t": 5, "u": 1}
        assert merged.packets_per_second() == pytest.approx(6.0)
        assert merge_perf([]) is None


class TestStoreMissCache:
    """The negative disk cache is a bounded LRU (ISSUE 8), not a set
    that gets wholesale-cleared: eviction drops only the coldest
    entries while hot ones keep short-circuiting disk lookups."""

    def make_ctx(self, tmp_path, size):
        from repro.core.store import SessionStore

        return OptimizationContext(
            build_toy_program(), toy_config(), make_trace(),
            DEFAULT_TARGET, store=SessionStore(tmp_path / "store"),
            store_miss_cache_size=size,
        )

    def test_rejects_nonpositive_size(self, tmp_path):
        with pytest.raises(ValueError):
            self.make_ctx(tmp_path, 0)

    def test_eviction_is_bounded_and_oldest_first(self, tmp_path):
        ctx = self.make_ctx(tmp_path, 4)
        for index in range(10):
            ctx._remember_store_miss(("compile", (f"k{index}",)))
        assert list(ctx._store_misses) == [
            ("compile", (f"k{index}",)) for index in (6, 7, 8, 9)
        ]

    def test_lookup_refreshes_recency(self, tmp_path):
        ctx = self.make_ctx(tmp_path, 3)
        for name in ("a", "b", "c"):
            ctx._remember_store_miss(("compile", (name,)))
        # Touch the oldest entry, then overflow by one: the untouched
        # runner-up ("b") must be the one evicted.
        assert ctx._store_miss_remembered(("compile", ("a",)))
        ctx._remember_store_miss(("compile", ("d",)))
        assert ("compile", ("a",)) in ctx._store_misses
        assert ("compile", ("b",)) not in ctx._store_misses

    def test_remembered_miss_skips_disk(self, tmp_path):
        ctx = self.make_ctx(tmp_path, 8)
        ctx.compile()  # cold: disk miss remembered, probe executed
        assert ctx.counters.compile_disk_hits == 0
        key = next(iter(ctx._store_misses))
        assert key[0] == "compile"
        # A hot remembered miss answers without touching the store.
        assert ctx._store_load_compile(key[1]) is None
        assert ctx.store.counters.misses == 1  # still just the cold one

    def test_evicted_miss_falls_back_to_disk_probe(self, tmp_path):
        ctx = self.make_ctx(tmp_path, 1)
        ctx._remember_store_miss(("compile", ("cold",)))
        ctx._remember_store_miss(("compile", ("hot",)))  # evicts "cold"
        before = ctx.store.counters.misses
        assert ctx._store_load_compile(("cold",)) is None
        assert ctx.store.counters.misses == before + 1  # disk re-asked
