"""Golden compile outcomes for the bundled example programs.

Every ``examples/programs/*.p4`` source is parsed by the DSL front end
and compiled against two targets: the generous :data:`DEFAULT_TARGET`
and a deliberately small 4-stage target with the example-scale per-stage
geometry.  The pinned ``stages_used`` / ``fits`` pairs are the contract
future allocator changes must either preserve or consciously re-pin.
"""

from pathlib import Path

import pytest

from repro.exceptions import AllocationError
from repro.p4.dsl import parse_program
from repro.programs import example_firewall
from repro.target import DEFAULT_TARGET, TargetModel, compile_program

SOURCES = Path(__file__).parent.parent / "examples" / "programs"

#: Example-scale per-stage geometry (matches EXAMPLE_TARGET) but only 4
#: physical stages, so the bigger programs overflow into virtual stages.
SMALL_TARGET = TargetModel(
    name="golden-small",
    num_stages=4,
    sram_blocks_per_stage=16,
    tcam_blocks_per_stage=8,
    sram_block_bytes=256,
    tcam_block_bytes=64,
    max_tables_per_stage=8,
)

#: program -> (stages on DEFAULT_TARGET, fits, stages on SMALL_TARGET, fits)
GOLDEN = {
    "cgnat": (2, True, 2, True),
    "ddos_mitigation": (4, True, 5, False),
    "enterprise": (5, True, 11, False),
    "example_firewall": (3, True, 8, False),
    "failure_detection": (4, True, 4, True),
    "load_balancer": (2, True, 2, True),
    "nat_gre": (4, True, 4, True),
    "sourceguard": (2, True, 5, False),
    "telemetry": (2, True, 5, False),
}


def load(name):
    return parse_program((SOURCES / f"{name}.p4").read_text(), name)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_default_target_outcome(name):
    stages, fits, _small_stages, _small_fits = GOLDEN[name]
    result = compile_program(load(name), DEFAULT_TARGET)
    assert result.stages_used == stages
    assert result.fits is fits


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_small_target_outcome(name):
    _stages, _fits, small_stages, small_fits = GOLDEN[name]
    result = compile_program(load(name), SMALL_TARGET)
    assert result.stages_used == small_stages
    assert result.fits is small_fits
    # Virtual stages (§2.2): overflow is reported, never raised.
    if not small_fits:
        assert result.stages_used > SMALL_TARGET.num_stages


def test_every_example_source_is_pinned():
    on_disk = {p.stem for p in SOURCES.glob("*.p4")}
    assert on_disk == set(GOLDEN), (
        "examples/programs/ and GOLDEN drifted apart — add the new "
        "program's golden outcome"
    )


def test_unsplittable_register_is_a_hard_error():
    """Shrinking the SRAM *blocks* (not just stages) makes sourceguard's
    4 KB Bloom arrays unplaceable — that is an AllocationError, not a
    fits=False outcome, because no number of stages can host them."""
    tiny_blocks = TargetModel(
        name="golden-tiny-blocks",
        num_stages=32,
        sram_blocks_per_stage=8,
        tcam_blocks_per_stage=4,
        sram_block_bytes=256,
        tcam_block_bytes=64,
        max_tables_per_stage=8,
    )
    with pytest.raises(AllocationError):
        compile_program(load("sourceguard"), tiny_blocks)


def test_firewall_stage_map_respects_tdg():
    """Acceptance check: the compiled firewall's stage map honours every
    edge of the dependency graph."""
    result = compile_program(example_firewall.build_program(), DEFAULT_TARGET)
    placements = result.allocation.placements
    for dep in result.dependency_graph.edges():
        src, dst = placements[dep.src], placements[dep.dst]
        if dep.kind.aligns_to_first_stage:
            assert dst.first_stage >= src.first_stage
        else:
            assert (
                dst.first_stage >= src.last_stage + dep.min_stage_separation
            )
