"""Property tests of the core soundness claims: P2GO's rewrites preserve
per-packet behaviour on *arbitrary* traffic, not just the profiling trace
(the rewrites are constructed to be trace-safe; these tests probe how far
beyond the trace that safety extends).

Phase 2's rewrite (apply-on-miss) is semantics-preserving for every
packet that does not match both tables; the generators below produce
arbitrary mixes of the firewall's traffic classes where the disjointness
of rule spaces (blocked ports vs DHCP ports) guarantees that, so the
decisions must agree packet-for-packet.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.phase_dependencies import run_phase as dep_phase
from repro.core.profiler import Profiler
from repro.packets.craft import (
    dhcp_packet,
    dns_query,
    plain_ipv4_packet,
    tcp_packet,
    udp_packet,
)
from repro.programs import example_firewall as fw
from repro.sim import BehavioralSwitch
from repro.target import compile_program

# ----------------------------------------------------------------------
# Packet generators covering the firewall's traffic classes.

ips = st.integers(min_value=1, max_value=0xDFFFFFFF)
ports = st.integers(min_value=1, max_value=65535).filter(
    lambda p: p not in (53, 67, 68)
)


@st.composite
def firewall_packets(draw):
    kind = draw(
        st.sampled_from(["udp", "blocked", "dns", "dhcp", "tcp", "plain"])
    )
    src, dst = draw(ips), draw(ips)
    if kind == "udp":
        return (udp_packet(src, dst, draw(ports), draw(ports)), 0)
    if kind == "blocked":
        return (
            udp_packet(src, dst, draw(ports),
                       draw(st.sampled_from(fw.BLOCKED_UDP_PORTS))),
            0,
        )
    if kind == "dns":
        return (dns_query(src, dst, draw(st.integers(0, 0xFFFF))), 0)
    if kind == "dhcp":
        return (
            dhcp_packet(src, xid=draw(st.integers(0, 0xFFFFFFFF))),
            draw(st.integers(0, 8)),
        )
    if kind == "tcp":
        return (
            tcp_packet(src, dst, draw(ports), draw(ports),
                       seq=draw(st.integers(0, 0xFFFFFFFF))),
            0,
        )
    return (plain_ipv4_packet(src, dst), 0)


@pytest.fixture(scope="module")
def rewritten_program(firewall_program, firewall_config, firewall_trace):
    compiled = compile_program(firewall_program, fw.TARGET)
    profile = Profiler(firewall_program, firewall_config).profile(
        firewall_trace
    )
    step = dep_phase(firewall_program, compiled, profile)
    assert step.removed is not None
    return step.program


@settings(max_examples=30, deadline=None)
@given(st.lists(firewall_packets(), min_size=1, max_size=40))
def test_phase2_rewrite_preserves_arbitrary_traffic(
    rewritten_program, firewall_program, firewall_config, packets
):
    """The ACL rewrite agrees with the original on arbitrary mixes: the
    installed blocked-port rules never cover DHCP ports, so no generated
    packet can match both ACLs."""
    original = BehavioralSwitch(firewall_program, firewall_config)
    rewritten = BehavioralSwitch(rewritten_program, firewall_config)
    for data, port in packets:
        a = original.process(data, port)
        b = rewritten.process(data, port)
        assert a.forwarding_decision() == b.forwarding_decision()


@settings(max_examples=30, deadline=None)
@given(st.lists(firewall_packets(), min_size=1, max_size=40))
def test_phase3_fib_resize_preserves_arbitrary_traffic(
    firewall_program, firewall_config, packets
):
    """Shrinking the FIB's *capacity* (192 -> 128 entries) cannot change
    matching as long as the installed rules still fit."""
    resized = firewall_program.with_table_size("IPv4", 128)
    original = BehavioralSwitch(firewall_program, firewall_config)
    smaller = BehavioralSwitch(resized, firewall_config)
    for data, port in packets:
        a = original.process(data, port)
        b = smaller.process(data, port)
        assert a.forwarding_decision() == b.forwarding_decision()


@settings(max_examples=20, deadline=None)
@given(st.lists(firewall_packets(), min_size=1, max_size=30))
def test_instrumentation_transparent_for_arbitrary_traffic(
    firewall_program, firewall_config, packets
):
    from repro.core.instrument import instrument

    instrumented = instrument(firewall_program)
    plain = BehavioralSwitch(firewall_program, firewall_config)
    marked = BehavioralSwitch(
        instrumented.program, instrumented.adapt_config(firewall_config)
    )
    for data, port in packets:
        a = plain.process(data, port)
        b = marked.process(data, port)
        assert a.forwarding_decision() == b.forwarding_decision()


@settings(max_examples=20, deadline=None)
@given(st.lists(firewall_packets(), min_size=1, max_size=30))
def test_whole_stack_deterministic(
    firewall_program, firewall_config, packets
):
    """Replaying the same packets through a fresh switch yields identical
    decisions — the determinism phase 3's profile comparison rests on."""
    first = BehavioralSwitch(firewall_program, firewall_config)
    second = BehavioralSwitch(firewall_program, firewall_config)
    for data, port in packets:
        a = first.process(data, port)
        b = second.process(data, port)
        assert a.forwarding_decision() == b.forwarding_decision()
        assert a.output_bytes == b.output_bytes
        assert a.steps == b.steps
