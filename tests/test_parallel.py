"""Parallel candidate probing: batch API semantics and determinism.

The concurrency contract (DESIGN.md §9): batch probes must land in the
shared memo cache *exactly* as if probed serially — same results, same
``SessionCounters``, same perf-window attribution (merged in submission
order), in-flight dedup of equal-fingerprint candidates, and a hard
error while a proposal is open.  On top of that, a full P2GO run must be
canonically identical for ``workers=1`` and ``workers=4``.
"""

from __future__ import annotations

import re

import pytest

from repro.core.pipeline import P2GO
from repro.core.session import (
    OptimizationContext,
    config_fingerprint,
    merge_perf,
    program_fingerprint,
    resolve_workers,
)
from repro.programs import example_firewall as fw
from repro.sim.flowcache import FlowCache, FlowVerdict
from repro.target.model import DEFAULT_TARGET

from .conftest import build_toy_program, toy_config

#: Small trace: plenty for the firewall phases to fire, fast to replay.
TRACE_PACKETS = 1200


def make_trace():
    from repro.packets.craft import udp_packet

    return [
        udp_packet("1.1.1.1", "10.0.0.9", 5, 53) for _ in range(4)
    ] + [
        udp_packet("2.2.2.2", "10.0.0.9", 5, 80) for _ in range(4)
    ]


def make_ctx(**kwargs):
    return OptimizationContext(
        build_toy_program(), toy_config(), make_trace(), DEFAULT_TARGET,
        **kwargs,
    )


def toy_variants(program):
    """Distinct probe programs: the toy program plus two resizes."""
    return [
        program,
        program.with_table_size("fib", 32),
        program.with_table_size("acl", 8),
    ]


def scrub_timing(text):
    """Mask wall-clock-derived throughput figures: they differ between
    any two runs (serial or not) and are not part of the result."""
    return re.sub(r"[\d,.]+ packets/s", "<rate> packets/s", text)


def canonical(result):
    """Canonical byte serialization of everything a P2GO run decides:
    program, config, counters, phase outcomes, observations.  Wall-clock
    throughput is masked; everything else must match byte for byte."""
    perfs = [
        (
            outcome.phase.name,
            outcome.stages,
            outcome.stage_map,
            None
            if outcome.profiling_perf is None
            else (
                outcome.profiling_perf.packets,
                outcome.profiling_perf.cache_hits,
                outcome.profiling_perf.cache_misses,
                outcome.profiling_perf.cache_evictions,
                sorted(outcome.profiling_perf.table_lookups.items()),
            ),
        )
        for outcome in result.outcomes
    ]
    return repr(
        (
            program_fingerprint(result.optimized_program),
            config_fingerprint(result.final_config),
            result.session_counters.as_dict(),
            result.offloaded_tables,
            perfs,
            [
                (
                    obs.phase.name,
                    obs.kind.name,
                    obs.title,
                    scrub_timing(obs.details),
                )
                for obs in result.observations.items
            ],
        )
    ).encode()


class TestWorkerResolution:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("P2GO_WORKERS", raising=False)
        assert resolve_workers() == 1
        assert make_ctx().workers == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("P2GO_WORKERS", "3")
        assert resolve_workers() == 3
        assert make_ctx().workers == 3

    def test_knob_beats_env(self, monkeypatch):
        monkeypatch.setenv("P2GO_WORKERS", "3")
        assert resolve_workers(2) == 2
        assert make_ctx(workers=2).workers == 2

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv("P2GO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers()


class TestBatchSemantics:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_compile_many_matches_serial(self, workers):
        serial = make_ctx(workers=1)
        batch = make_ctx(workers=workers)
        programs = toy_variants(serial.program)
        expected = [serial.compile(p) for p in programs]
        with batch:
            got = batch.compile_many(toy_variants(batch.program))
        assert [r.stages_used for r in got] == [
            r.stages_used for r in expected
        ]
        assert [r.stage_map() for r in got] == [
            r.stage_map() for r in expected
        ]
        assert batch.counters.as_dict() == serial.counters.as_dict()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_profile_many_matches_serial(self, workers):
        serial = make_ctx(workers=1)
        batch = make_ctx(workers=workers)
        restricted = serial.config.restricted_to(["fib"])
        serial.start_perf_window()
        expected = [
            serial.profile(),
            serial.profile(config=restricted),
        ]
        serial_perf = serial.take_perf_window()
        batch.start_perf_window()
        with batch:
            got = batch.profile_many(
                [(None, None), (None, batch.config.restricted_to(["fib"]))]
            )
        batch_perf = batch.take_perf_window()
        for ours, theirs in zip(got, expected):
            assert ours.same_behavior_as(theirs)
        assert batch.counters.as_dict() == serial.counters.as_dict()
        assert batch_perf.packets == serial_perf.packets
        assert batch_perf.cache_hits == serial_perf.cache_hits
        assert batch_perf.table_lookups == serial_perf.table_lookups

    def test_in_flight_dedup_one_execution(self):
        ctx = make_ctx(workers=4)
        with ctx:
            a, b = ctx.compile_many(
                [build_toy_program(), build_toy_program()]
            )
        assert a is b
        assert ctx.counters.compile_calls == 2
        assert ctx.counters.compile_executions == 1
        assert ctx.counters.compile_hits == 1

    def test_profile_dedup_and_memo_reuse(self):
        ctx = make_ctx(workers=4)
        with ctx:
            first = ctx.profile_many([(None, None), (None, None)])
            assert ctx.counters.profile_executions == 1
            # A later batch is answered from the memo cache entirely.
            again = ctx.profile_many([(None, None)])
        assert first[0] is first[1]
        assert again[0] is first[0]
        assert ctx.counters.profile_calls == 3
        assert ctx.counters.profile_executions == 1

    def test_unmemoized_batch_executes_every_probe(self):
        ctx = make_ctx(workers=4, memoize=False)
        with ctx:
            ctx.compile_many([ctx.program, build_toy_program()])
            ctx.profile_many([(None, None), (None, None)])
        assert ctx.counters.compile_executions == 2
        assert ctx.counters.profile_executions == 2

    def test_probe_many_mixed_wave(self):
        ctx = make_ctx(workers=4)
        ctx.start_perf_window()
        with ctx:
            compiled, profiled = ctx.probe_many(
                programs=toy_variants(ctx.program),
                variants=[(None, None)],
            )
        assert len(compiled) == 3 and len(profiled) == 1
        assert ctx.counters.compile_executions == 3
        assert ctx.counters.profile_executions == 1
        window = ctx.take_perf_window()
        assert window is not None
        assert window.packets == len(ctx.trace)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_batch_refused_during_transaction(self, workers):
        ctx = make_ctx(workers=workers)
        ctx.propose(program=ctx.program.with_table_size("fib", 32))
        with pytest.raises(RuntimeError, match="serial-only"):
            ctx.compile_many([ctx.program])
        with pytest.raises(RuntimeError, match="serial-only"):
            ctx.profile_many([(None, None)])
        with pytest.raises(RuntimeError, match="serial-only"):
            ctx.probe_many(programs=[ctx.program])
        ctx.rollback()
        with ctx:
            assert len(ctx.compile_many([ctx.program])) == 1

    def test_close_releases_pools_and_allows_reuse(self):
        ctx = make_ctx(workers=2)
        ctx.compile_many(toy_variants(ctx.program))
        assert ctx._pools
        ctx.close()
        assert not ctx._pools
        # The session still works after close (pools recreate lazily).
        ctx.compile_many([ctx.program.with_table_size("fib", 16)])
        ctx.close()

    def test_batch_after_serial_profile(self):
        """Regression: a serial profile memoizes exec-compiled header
        codecs onto the program's header types; the program must still
        pickle into worker processes afterwards."""
        import pickle

        ctx = make_ctx(workers=4)
        ctx.profile()  # populates the per-header-type codec caches
        assert pickle.loads(pickle.dumps(ctx.program)) is not None
        with ctx:
            compiled = ctx.compile_many(toy_variants(ctx.program))
        assert len(compiled) == 3
        assert ctx.counters.compile_executions == 3

    def test_thread_replay_executor_knob(self):
        ctx = make_ctx(workers=2, replay_executor="thread")
        with ctx:
            profiles = ctx.profile_many([(None, None), (None, None)])
        assert profiles[0] is profiles[1]
        with pytest.raises(ValueError):
            make_ctx(replay_executor="fiber")


class TestPipelineDeterminism:
    """ISSUE 4 acceptance: P2GOResult is canonically identical for
    workers=1 vs workers=4 across the example programs."""

    @pytest.fixture(scope="class")
    def firewall_inputs(self):
        return (
            fw.build_program(),
            fw.runtime_config(),
            fw.make_trace(TRACE_PACKETS),
            fw.TARGET,
        )

    def run(self, inputs, workers):
        program, config, trace, target = inputs
        # store=False: canonical() includes the session counters and
        # per-phase perf, which are a store-less property — with
        # $P2GO_STORE set the second run would warm-start from the
        # first's disk entries (tests/test_store.py owns that axis).
        return P2GO(
            fw.build_program(), fw.runtime_config(), trace, target,
            workers=workers, store=False,
        ).run()

    def test_firewall_byte_identical(self, firewall_inputs):
        serial = self.run(firewall_inputs, workers=1)
        parallel = self.run(firewall_inputs, workers=4)
        assert canonical(serial) == canonical(parallel)
        assert serial.workers == 1 and parallel.workers == 4

    def test_toy_byte_identical(self):
        def run(workers):
            return P2GO(
                build_toy_program(), toy_config(), make_trace(),
                DEFAULT_TARGET, workers=workers, store=False,
            ).run()

        assert canonical(run(1)) == canonical(run(4))

    def test_report_renders_worker_count(self, firewall_inputs):
        from repro.core.report import render_report

        parallel = self.run(firewall_inputs, workers=4)
        assert "compile/profile session (4 workers):" in render_report(
            parallel
        )


class TestFlowCacheAccountingUnderWorkers:
    """The flow cache's wholesale-flush eviction accounting must stay
    correct when replays run in worker processes: each replay owns a
    private cache, and the merged counters equal the serial run's."""

    def test_put_flush_accounting(self):
        verdict = FlowVerdict(
            steps=(), writes=(), added=(), removed=(),
            egress_port=1, dropped=False, to_controller=False,
            controller_reason=0,
        )
        cache = FlowCache(capacity=2)
        assert cache.put(("a",), verdict) is False
        assert cache.put(("b",), verdict) is False
        assert len(cache) == 2
        # Re-inserting a resident key never flushes.
        assert cache.put(("b",), verdict) is False
        flushed = cache.put(("c",), verdict)
        assert flushed is True
        assert len(cache) == 1  # wholesale flush, then the new entry

    @pytest.mark.parametrize("workers", [1, 4])
    def test_eviction_counters_deterministic(self, workers):
        program, config = build_toy_program(), toy_config()
        config.flow_cache_capacity = 1  # force flush-evictions
        trace = make_trace()
        ctx = OptimizationContext(
            program, config, trace, DEFAULT_TARGET, workers=workers,
        )
        ctx.start_perf_window()
        with ctx:
            ctx.profile_many(
                [
                    (None, None),
                    (program.with_table_size("fib", 32), None),
                ]
            )
        merged = ctx.take_perf_window()
        assert merged.packets == 2 * len(trace)
        assert merged.cache_evictions > 0
        serial = OptimizationContext(
            program, config, trace, DEFAULT_TARGET, workers=1
        )
        serial.start_perf_window()
        serial.profile()
        serial.profile(program.with_table_size("fib", 32))
        expected = serial.take_perf_window()
        assert merged.cache_evictions == expected.cache_evictions
        assert merged.cache_hits == expected.cache_hits
        assert merged.cache_misses == expected.cache_misses


def test_merge_perf_submission_order_is_deterministic():
    """merge_perf sums; the session feeds it submission-ordered perfs, so
    equal multisets of replays merge to equal totals."""
    from repro.sim.perf import PerfCounters

    a = PerfCounters(packets=5, cache_hits=3, cache_misses=2,
                     timed_packets=5, elapsed_seconds=0.5)
    b = PerfCounters(packets=7, cache_hits=1, cache_misses=6,
                     timed_packets=7, elapsed_seconds=0.25)
    ab, ba = merge_perf([a, b]), merge_perf([b, a])
    assert (ab.packets, ab.cache_hits, ab.cache_misses) == (
        ba.packets, ba.cache_hits, ba.cache_misses
    )
