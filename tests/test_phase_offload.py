"""Tests for phase 4 — offloading code to the controller (§3.4)."""

import pytest

from repro.core.phase_offload import (
    DEFAULT_MAX_REDIRECT,
    TO_CTL_TABLE,
    EvaluatedCandidate,
    SegmentCandidate,
    enumerate_candidates,
    evaluate_candidates,
    is_self_contained,
    make_offloaded_program,
    run_phase,
    select_candidate,
    select_combination,
)
from repro.core.profiler import Profiler
from repro.exceptions import OffloadError
from repro.p4 import (
    Apply,
    BinOp,
    Const,
    FieldRef,
    If,
    ModifyField,
    ProgramBuilder,
    Seq,
    ValidExpr,
    iter_nodes,
)
from repro.programs import example_firewall, failure_detection
from repro.target import compile_program


def find_subtree(program, table_set):
    """The smallest subtree applying exactly the given tables."""
    from repro.p4.control import tables_applied

    best = None
    for node in iter_nodes(program.ingress):
        if set(tables_applied(node)) == table_set:
            best = node  # keep descending: later matches are smaller
    return best


class TestSelfContainment:
    def test_dns_branch_self_contained(self, firewall_program):
        subtree = find_subtree(
            firewall_program,
            {"Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop"},
        )
        # The If(valid(dns)) node also matches; take the outermost.
        for node in iter_nodes(firewall_program.ingress):
            from repro.p4.control import tables_applied

            if set(tables_applied(node)) == {
                "Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop",
            }:
                assert is_self_contained(firewall_program, node)
                break

    def test_sketch_row_alone_not_self_contained(self, firewall_program):
        """Sketch_1 writes metadata Sketch_Min consumes — not
        offloadable alone."""
        subtree = find_subtree(firewall_program, {"Sketch_1"})
        assert not is_self_contained(firewall_program, subtree)

    def test_sketch_min_not_self_contained(self, firewall_program):
        """Sketch_Min reads the rows' metadata — needs outside state."""
        subtree = find_subtree(firewall_program, {"Sketch_Min"})
        assert not is_self_contained(firewall_program, subtree)

    def test_consumer_of_outside_metadata_rejected(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 16)]).header("h", "h_t")
        b.parser_state("start", extracts=["h"])
        b.metadata("m", [("x", 16)])
        b.action("produce", [ModifyField(FieldRef("m", "x"), Const(1))])
        b.action("consume", [ModifyField(FieldRef("m", "x"), FieldRef("m", "x"))])
        b.table("prod", keys=[], actions=[], default_action="produce")
        b.table("cons", keys=[("m.x", "exact")], actions=["consume"])
        b.ingress(Seq([Apply("prod"), Apply("cons")]))
        program = b.build()
        subtree = find_subtree(program, {"cons"})
        assert not is_self_contained(program, subtree)

    def test_ingress_port_read_allowed(self, firewall_program):
        """ACL_DHCP keys on the ingress port — that arrives with the
        punted packet and does not block offloading."""
        subtree = find_subtree(firewall_program, {"ACL_DHCP"})
        assert is_self_contained(firewall_program, subtree)


class TestEnumeration:
    def test_firewall_candidates(self, firewall_program):
        candidates = enumerate_candidates(firewall_program)
        table_sets = {frozenset(c.tables) for c in candidates}
        assert frozenset(
            {"Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop"}
        ) in table_sets
        assert frozenset({"Sketch_1"}) not in table_sets

    def test_whole_program_excluded(self, firewall_program):
        candidates = enumerate_candidates(firewall_program)
        all_tables = frozenset(firewall_program.tables)
        assert all(frozenset(c.tables) != all_tables for c in candidates)

    def test_boundary_guard_recorded(self, firewall_program):
        candidates = enumerate_candidates(firewall_program)
        dns = next(
            c for c in candidates
            if set(c.tables) == {"Sketch_1", "Sketch_2", "Sketch_Min",
                                 "DNS_Drop"}
        )
        assert dns.boundary_guard == "valid(dns)"


class TestProgramGeneration:
    def test_to_ctl_replaces_segment(self, firewall_program):
        candidates = enumerate_candidates(firewall_program)
        dns = next(
            c for c in candidates
            if set(c.tables) == {"Sketch_1", "Sketch_2", "Sketch_Min",
                                 "DNS_Drop"}
        )
        modified = make_offloaded_program(firewall_program, dns)
        tables = modified.tables_in_control_order()
        assert TO_CTL_TABLE in tables
        assert "Sketch_1" not in tables
        # The valid(dns) guard stays in the data plane.
        guards = [
            str(n.condition)
            for n in iter_nodes(modified.ingress)
            if isinstance(n, If)
        ]
        assert "valid(dns)" in guards

    def test_reoffload_gets_unique_redirect_name(self, firewall_program):
        """Re-running P2GO on an already-offloaded program must not
        collide on the redirect table's name (§3.2's re-run workflow)."""
        candidates = enumerate_candidates(firewall_program)
        dns = next(c for c in candidates if "Sketch_1" in c.tables)
        modified = make_offloaded_program(firewall_program, dns)
        remaining = enumerate_candidates(modified)
        assert remaining, "expected further candidates after offloading"
        second = make_offloaded_program(modified, remaining[0])
        assert "To_Ctl_2" in second.tables

    def test_explicit_duplicate_name_rejected(self, firewall_program):
        candidates = enumerate_candidates(firewall_program)
        dns = next(c for c in candidates if "Sketch_1" in c.tables)
        with pytest.raises(OffloadError):
            make_offloaded_program(
                firewall_program, dns, table_name="IPv4"
            )


class TestSelection:
    def _ev(self, tables, saved, redirect):
        return EvaluatedCandidate(
            candidate=SegmentCandidate(
                subtree=Seq([]), tables=tuple(tables), boundary_guard=None
            ),
            program=None,
            stages_before=8,
            stages_after=8 - saved,
            redirect_fraction=redirect,
        )

    def test_least_redirect_wins(self):
        chosen = select_candidate(
            [self._ev(["a"], 1, 0.05), self._ev(["b"], 2, 0.02)]
        )
        assert chosen.candidate.tables == ("b",)

    def test_savings_threshold_filters(self):
        chosen = select_candidate(
            [self._ev(["a"], 0, 0.01), self._ev(["b"], 1, 0.05)]
        )
        assert chosen.candidate.tables == ("b",)

    def test_load_budget_filters(self):
        chosen = select_candidate(
            [self._ev(["a"], 3, 0.90), self._ev(["b"], 1, 0.05)]
        )
        assert chosen.candidate.tables == ("b",)

    def test_nothing_qualifies(self):
        assert select_candidate([self._ev(["a"], 0, 0.9)]) is None

    def test_tie_broken_by_more_savings(self):
        chosen = select_candidate(
            [self._ev(["a"], 1, 0.02), self._ev(["b"], 3, 0.02)]
        )
        assert chosen.candidate.tables == ("b",)


class TestCombination:
    def _ev(self, tables, saved, redirect):
        return EvaluatedCandidate(
            candidate=SegmentCandidate(
                subtree=Seq([]), tables=tuple(tables), boundary_guard=None
            ),
            program=None,
            stages_before=8,
            stages_after=8 - saved,
            redirect_fraction=redirect,
        )

    def test_combines_disjoint_segments(self):
        chosen = select_combination(
            [
                self._ev(["a"], 1, 0.01),
                self._ev(["b"], 1, 0.02),
                self._ev(["c"], 2, 0.08),
            ],
            min_stage_savings=2,
        )
        tables = {t for e in chosen for t in e.candidate.tables}
        assert tables == {"a", "b"}  # 0.03 beats 0.08

    def test_overlapping_segments_never_combined(self):
        chosen = select_combination(
            [
                self._ev(["a", "b"], 1, 0.01),
                self._ev(["b", "c"], 1, 0.01),
            ],
            min_stage_savings=2,
        )
        assert chosen == []

    def test_respects_load_budget(self):
        chosen = select_combination(
            [self._ev(["a"], 1, 0.08), self._ev(["b"], 1, 0.08)],
            min_stage_savings=2,
            max_redirect_fraction=0.10,
        )
        assert chosen == []

    def test_empty_when_unreachable(self):
        assert select_combination([], min_stage_savings=1) == []


class TestRunPhaseOnFailureDetection:
    def test_cms_segment_offloaded(self):
        """Table 3 row 3: the CMS + alarm move to the controller, freeing
        two stages (4 -> 2)."""
        program = failure_detection.build_program()
        config = failure_detection.runtime_config()
        trace = failure_detection.make_trace(2000)
        outcome = run_phase(
            program, config, trace, failure_detection.TARGET
        )
        assert outcome.offloaded is not None
        assert set(outcome.offloaded.candidate.tables) == {
            "cms_0", "cms_1", "FailureAlarm",
        }
        assert outcome.offloaded.stages_saved == 2
        assert outcome.offloaded.redirect_fraction < 0.05

    def test_offloaded_config_drops_segment_entries(self):
        program = failure_detection.build_program()
        config = failure_detection.runtime_config()
        trace = failure_detection.make_trace(1000)
        outcome = run_phase(
            program, config, trace, failure_detection.TARGET
        )
        assert outcome.config.entry_count("FailureAlarm") == 0
