"""Profiling-engine semantics: the flow-result cache, compiled match
structures, and batched replay must be invisible to every profile.

Pins the guarantees the engine's docstrings promise:

* For every bundled program, profiling with the cache + compiled tables
  on yields a :class:`~repro.core.profiler.Profile` with
  ``same_behavior_as`` the uncached reference run — and the per-packet
  :class:`~repro.sim.switch.SwitchResult` stream is bit-identical.
* Stateful traversals (anything that reads or writes a register) are
  never served from the cache, and executing one flushes it (the
  conservative register-invalidation rule).
* ``reset_state`` clears the cache and the perf counters along with the
  registers; config mutations through the ``RuntimeConfig`` API
  invalidate cached verdicts; the capacity bound actually evicts.
* :class:`~repro.sim.match.CompiledTable` reproduces the reference
  :func:`~repro.sim.match.lookup` ranking bit-for-bit on randomized
  tables of every strategy shape (exact / single-LPM / ternary / mixed).
"""

from __future__ import annotations

import random

import pytest

from repro.core.profiler import Profiler
from repro.p4.expressions import FieldRef
from repro.p4.tables import MatchKind, Table, TableKey
from repro.programs import (
    enterprise,
    example_firewall,
    failure_detection,
    nat_gre,
    sourceguard,
    telemetry,
)
from repro.sim import BehavioralSwitch
from repro.sim.match import compile_table, lookup
from repro.sim.runtime import TableEntry
from repro.traffic.generators import dns_stream, udp_background

#: Every bundled program module (build_program / runtime_config /
#: make_trace).  Trace sizes are scaled down from the modules' defaults —
#: equivalence holds packet by packet, so a shorter prefix of the same
#: deterministic trace loses no coverage.
PROGRAM_MODULES = {
    "example_firewall": example_firewall,
    "nat_gre": nat_gre,
    "sourceguard": sourceguard,
    "failure_detection": failure_detection,
    "telemetry": telemetry,
    "enterprise": enterprise,
}
EQUIVALENCE_TRACE_SIZE = 1500


def _fresh_config(module, program):
    """Each call returns an independent config (sourceguard's and
    enterprise's need the program for hashed register inits)."""
    try:
        return module.runtime_config(program)
    except TypeError:
        return module.runtime_config()


def _uncached(config):
    config.enable_flow_cache = False
    config.enable_compiled_tables = False
    return config


def _result_fingerprint(result):
    return (
        result.output_bytes,
        result.headers,
        result.valid,
        result.steps,
        result.forwarding_decision(),
        result.controller_reason,
    )


# ----------------------------------------------------------------------
# Equivalence: cache on == cache off, for every bundled program.


@pytest.mark.parametrize("name", sorted(PROGRAM_MODULES))
def test_cached_profile_same_behavior_as_uncached(name):
    module = PROGRAM_MODULES[name]
    program = module.build_program()
    trace = module.make_trace(EQUIVALENCE_TRACE_SIZE)

    cached = Profiler(program, _fresh_config(module, program)).profile(trace)
    uncached = Profiler(
        program, _uncached(_fresh_config(module, program))
    ).profile(trace)

    assert cached.same_behavior_as(uncached), cached.behavior_diff(uncached)
    assert uncached.same_behavior_as(cached)


@pytest.mark.parametrize("name", sorted(PROGRAM_MODULES))
def test_cached_results_bit_identical_to_uncached(name):
    """Stronger than profile equality: the full per-packet observable
    stream (bytes out, steps, headers, forwarding) matches."""
    module = PROGRAM_MODULES[name]
    program = module.build_program()
    trace = module.make_trace(600)

    engine = BehavioralSwitch(program, _fresh_config(module, program))
    reference = BehavioralSwitch(
        program, _uncached(_fresh_config(module, program))
    )
    engine_results = engine.process_many(trace)
    reference_results = reference.process_many(trace)

    assert len(engine_results) == len(reference_results)
    for eng, ref in zip(engine_results, reference_results):
        assert _result_fingerprint(eng) == _result_fingerprint(ref)


# ----------------------------------------------------------------------
# The register-invalidation rule.


def test_stateful_flows_never_served_from_cache():
    """A pure-DNS trace walks the Count-Min Sketch on every packet; the
    cache must sit out entirely, yet the threshold drops stay exact."""
    program = example_firewall.build_program()
    src = example_firewall.HEAVY_DNS_SRC
    dst = example_firewall.HEAVY_DNS_DST
    trace = dns_stream(src, dst, example_firewall.DNS_QUERY_THRESHOLD + 72)

    engine = BehavioralSwitch(program, example_firewall.runtime_config())
    engine_results = engine.process_many(trace)
    reference = BehavioralSwitch(
        program, _uncached(example_firewall.runtime_config())
    )
    reference_results = reference.process_many(trace)

    # Every packet executed; nothing was memoized, nothing replayed.
    assert engine.perf.cache_hits == 0
    assert engine.perf.cache_misses == len(trace)
    assert engine.perf.cache_invalidations == len(trace)

    # State still advanced exactly: early queries pass, the flow is
    # dropped once its sketch estimate reaches the threshold, and the
    # drop pattern matches the uncached interpreter packet for packet.
    assert not engine_results[0].dropped
    assert engine_results[-1].dropped
    assert [r.dropped for r in engine_results] == [
        r.dropped for r in reference_results
    ]


def test_stateful_traversal_flushes_cached_verdicts():
    """Stateless verdicts are memoized; one register-touching packet
    flushes them, so the next stateless packet re-executes.

    Pinned to the cached engine: the fast path's closures deliberately
    survive conservative flushes (see ``repro/sim/fastpath.py``), so its
    hit counters differ here — covered by ``test_fastpath.py``.
    """
    program = example_firewall.build_program()
    config = example_firewall.runtime_config()
    config.enable_fastpath = False
    switch = BehavioralSwitch(program, config)
    rng = random.Random(3)
    stateless = udp_background(1, rng, dst_ports=(4000,))[0]
    dns = dns_stream(0x0A000001, 0xC0A80001, 1)[0]

    switch.process(stateless)
    switch.process(stateless)
    assert switch.perf.cache_hits == 1  # second packet replayed

    switch.process(dns)
    assert switch.perf.cache_invalidations == 1

    switch.process(stateless)
    assert switch.perf.cache_hits == 1  # flush forced a re-execution
    assert switch.perf.cache_misses == 3


def test_cache_disabled_never_engages():
    program = example_firewall.build_program()
    switch = BehavioralSwitch(
        program, _uncached(example_firewall.runtime_config())
    )
    switch.process_many(example_firewall.make_stateless_trace(50))
    assert switch.perf.cache_hits == 0
    assert switch.perf.cache_misses == 0
    assert switch.perf.cache_hit_rate() == 0.0


# ----------------------------------------------------------------------
# Lifecycle: reset, config mutation, capacity.


def test_reset_state_clears_flow_cache_and_perf_counters():
    program = example_firewall.build_program()
    switch = BehavioralSwitch(program, example_firewall.runtime_config())
    trace = example_firewall.make_stateless_trace(100, flows=8)

    switch.process_many(trace)
    assert switch.perf.packets == len(trace)
    assert switch.perf.cache_hits > 0

    switch.reset_state()
    assert switch.perf.packets == 0
    assert switch.perf.cache_hits == 0
    assert switch.perf.elapsed_seconds == 0.0
    assert len(switch._flow_cache) == 0

    # First packet after reset must miss — no verdict survived.
    first = trace[0] if isinstance(trace[0], bytes) else trace[0][0]
    switch.process(first)
    assert switch.perf.cache_hits == 0
    assert switch.perf.cache_misses == 1


def test_config_mutation_invalidates_cached_verdicts():
    """A rule installed after a verdict was cached must take effect on
    the very next packet of that flow."""
    program = example_firewall.build_program()
    config = example_firewall.runtime_config()
    switch = BehavioralSwitch(program, config)
    rng = random.Random(5)
    packet = udp_background(1, rng, dst_ports=(4000,))[0]

    before = switch.process(packet)
    assert not before.dropped
    switch.process(packet)
    assert switch.perf.cache_hits == 1  # verdict is cached

    config.add_entry("ACL_UDP", [4000], "acl_udp_drop")
    after = switch.process(packet)
    assert after.dropped  # a stale cached verdict would forward it


def test_flow_cache_capacity_bound_evicts():
    program = example_firewall.build_program()
    config = example_firewall.runtime_config()
    config.flow_cache_capacity = 4
    switch = BehavioralSwitch(program, config)

    switch.process_many(example_firewall.make_stateless_trace(400, flows=64))
    assert switch.perf.cache_evictions > 0
    assert len(switch._flow_cache) <= 4


# ----------------------------------------------------------------------
# CompiledTable vs the reference lookup() scan.

_KINDS = {
    "exact": MatchKind.EXACT,
    "lpm": MatchKind.LPM,
    "ternary": MatchKind.TERNARY,
}

#: One shape per CompiledTable strategy plus the awkward corners:
#: multi-key exact, exact+LPM (single-LPM fast path), multi-LPM and
#: LPM+ternary (both forced onto the premasked scan).
TABLE_SHAPES = {
    "exact": (("exact", 16),),
    "multi_exact": (("exact", 8), ("exact", 16)),
    "single_lpm": (("lpm", 32),),
    "exact_plus_lpm": (("exact", 8), ("lpm", 32)),
    "multi_lpm": (("lpm", 16), ("lpm", 16)),
    "ternary": (("ternary", 16),),
    "mixed": (("exact", 8), ("lpm", 32), ("ternary", 16)),
}


def _random_entry(rng, shape):
    match = []
    for kind_name, width in shape:
        top = (1 << width) - 1
        if kind_name == "exact":
            match.append(rng.randint(0, top))
        elif kind_name == "lpm":
            match.append((rng.randint(0, top), rng.choice(
                [0, rng.randint(1, width), width]
            )))
        else:
            match.append((rng.randint(0, top), rng.randint(0, top)))
    return TableEntry(tuple(match), "act", (), priority=rng.randint(0, 7))


def _probe_near_entry(rng, shape, entry):
    """A key-value tuple biased to match ``entry`` (free bits random)."""
    values = []
    for (kind_name, width), spec in zip(shape, entry.match):
        top = (1 << width) - 1
        if kind_name == "exact":
            values.append(spec)
        elif kind_name == "lpm":
            value, plen = spec
            mask = (((1 << plen) - 1) << (width - plen)) if plen else 0
            values.append((value & mask) | (rng.randint(0, top) & ~mask))
        else:
            value, mask = spec
            values.append((value & mask) | (rng.randint(0, top) & ~mask))
    return tuple(values)


@pytest.mark.parametrize("shape_name", sorted(TABLE_SHAPES))
def test_compiled_table_matches_reference_lookup(shape_name):
    shape = TABLE_SHAPES[shape_name]
    rng = random.Random(hash(shape_name) & 0xFFFF)
    keys = tuple(
        TableKey(FieldRef("h", f"f{i}"), _KINDS[kind_name])
        for i, (kind_name, _width) in enumerate(shape)
    )
    widths = [width for _kind, width in shape]
    table = Table(name=shape_name, keys=keys, actions=("act",), size=128)

    for _round in range(5):
        entries = [_random_entry(rng, shape) for _ in range(40)]
        compiled = compile_table(table, widths, entries)
        probes = [
            tuple(rng.randint(0, (1 << w) - 1) for w in widths)
            for _ in range(60)
        ] + [
            _probe_near_entry(rng, shape, rng.choice(entries))
            for _ in range(60)
        ]
        for values in probes:
            expected = lookup(table, widths, values, entries)
            assert compiled.lookup(values) == expected, (
                f"{shape_name}: compiled disagrees with reference scan "
                f"for key {values}"
            )
