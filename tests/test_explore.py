"""Design-space exploration (ISSUE 10).

Pins the explorer contract of :mod:`repro.explore`: Pareto extraction
identical to a brute-force dominance recount (property-tested), sweep
outcomes byte-identical for any worker count, a warm second sweep over
the same store executing nothing, shape/target validation failing
loudly, and infeasible shapes recorded — not raised — so a sweep
survives grids the program cannot exist on.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.report import render_explore_report
from repro.exceptions import CompilationError
from repro.explore import (
    DesignPoint,
    DesignSpace,
    Explorer,
    TargetShape,
    dominates,
    fit_breakpoints,
    objective_vector,
    pareto_front,
    parse_grid,
    seed_space,
)
from repro.programs.common import EXAMPLE_TARGET
from repro.target.model import TargetModel

#: Small sweep: 3 stage shapes x 2 orders x 2 policies = 12 points.
GRID = "stages=3,6,12"
PACKETS = 400


@pytest.fixture(scope="module")
def small_space():
    return DesignSpace(
        programs=("example_firewall",),
        shapes=parse_grid(GRID, EXAMPLE_TARGET),
    )


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("explore") / "store")


@pytest.fixture(scope="module")
def sweep(small_space, store_root):
    """One cold serial sweep over a shared store (module-scoped:
    read-only for every test; the warm-sweep test reuses its store)."""
    return Explorer(
        small_space, packets=PACKETS, workers=1, store=store_root
    ).run()


# ----------------------------------------------------------------------
# Shapes and spaces


class TestTargetShape:
    def test_apply_inherits_base_constants(self):
        shape = TargetShape(num_stages=6, sram_blocks=4, tcam_blocks=2)
        target = shape.apply(EXAMPLE_TARGET)
        assert target.num_stages == 6
        assert target.sram_blocks_per_stage == 4
        assert target.tcam_blocks_per_stage == 2
        assert target.sram_block_bytes == EXAMPLE_TARGET.sram_block_bytes
        assert target.tcam_block_bytes == EXAMPLE_TARGET.tcam_block_bytes
        assert (
            target.max_tables_per_stage
            == EXAMPLE_TARGET.max_tables_per_stage
        )
        assert "6x4x2" in target.name

    def test_boundary_shape_is_valid(self):
        shape = TargetShape(num_stages=1, sram_blocks=1, tcam_blocks=1)
        assert shape.apply(EXAMPLE_TARGET).num_stages == 1

    @pytest.mark.parametrize("stages", [0, -1, -12])
    def test_rejects_non_positive_stages(self, stages):
        with pytest.raises(ValueError, match="num_stages"):
            TargetShape(num_stages=stages, sram_blocks=8, tcam_blocks=4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_stages": 4, "sram_blocks": 0, "tcam_blocks": 4},
            {"num_stages": 4, "sram_blocks": 8, "tcam_blocks": -2},
        ],
    )
    def test_rejects_non_positive_blocks(self, kwargs):
        with pytest.raises(ValueError, match="must be positive"):
            TargetShape(**kwargs)

    @pytest.mark.parametrize("bad", [True, 2.5, "4", None])
    def test_rejects_non_integer_axes(self, bad):
        with pytest.raises(ValueError, match="must be an integer"):
            TargetShape(num_stages=bad, sram_blocks=8, tcam_blocks=4)

    def test_of_roundtrips_a_target(self):
        shape = TargetShape.of(EXAMPLE_TARGET)
        assert shape.num_stages == EXAMPLE_TARGET.num_stages
        assert shape.sram_blocks == EXAMPLE_TARGET.sram_blocks_per_stage


class TestTargetModelValidation:
    """Satellite 3: nonsensical pipeline shapes fail loudly at target
    construction, with the offending parameter named."""

    def test_one_stage_target_is_valid(self):
        assert TargetModel(num_stages=1).num_stages == 1

    @pytest.mark.parametrize(
        "field",
        [
            "num_stages",
            "sram_blocks_per_stage",
            "tcam_blocks_per_stage",
            "sram_block_bytes",
            "tcam_block_bytes",
            "max_tables_per_stage",
        ],
    )
    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects_non_positive(self, field, value):
        with pytest.raises(CompilationError, match=field):
            TargetModel(**{field: value})

    @pytest.mark.parametrize("value", [True, 1.5, "12"])
    def test_rejects_non_integer_stages(self, value):
        with pytest.raises(CompilationError, match="num_stages"):
            TargetModel(num_stages=value)

    def test_rejects_empty_name(self):
        with pytest.raises(CompilationError, match="name"):
            TargetModel(name="")

    def test_fingerprint_separates_same_named_shapes(self):
        a = TargetModel(name="t", num_stages=4)
        b = TargetModel(name="t", num_stages=8)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == TargetModel(name="t", num_stages=4).fingerprint()


class TestParseGrid:
    def test_product_nests_stages_sram_tcam(self):
        shapes = parse_grid("stages=3,6;sram=8,16", EXAMPLE_TARGET)
        assert [s.shape_id for s in shapes] == [
            "3x8x8", "3x16x8", "6x8x8", "6x16x8",
        ]

    def test_missing_axes_stay_at_base(self):
        (shape,) = parse_grid("tcam=4", EXAMPLE_TARGET)
        assert shape.num_stages == EXAMPLE_TARGET.num_stages
        assert shape.sram_blocks == EXAMPLE_TARGET.sram_blocks_per_stage
        assert shape.tcam_blocks == 4

    def test_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="bad grid clause"):
            parse_grid("stages=4;phv=8", EXAMPLE_TARGET)

    def test_rejects_non_integer_values(self):
        with pytest.raises(ValueError, match="comma-separated integers"):
            parse_grid("stages=4,lots", EXAMPLE_TARGET)

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="no values"):
            parse_grid("stages=", EXAMPLE_TARGET)

    def test_rejects_non_positive_values(self):
        with pytest.raises(ValueError, match="must be positive"):
            parse_grid("stages=0", EXAMPLE_TARGET)


class TestDesignSpace:
    def test_points_enumerate_in_axis_order(self, small_space):
        points = small_space.points()
        assert len(points) == small_space.size == 12
        expected = [
            DesignPoint(program=p, shape=s, order=o, policy=c)
            for p in small_space.programs
            for s in small_space.shapes
            for o in small_space.orders
            for c in small_space.policies
        ]
        assert points == expected

    def test_sample_is_seeded_and_order_preserving(self, small_space):
        first = small_space.sample(5, seed=7)
        second = small_space.sample(5, seed=7)
        assert first == second
        assert len(first) == 5
        enumeration = small_space.points()
        indices = [enumeration.index(point) for point in first]
        assert indices == sorted(indices)
        assert small_space.sample(5, seed=8) != first

    def test_sample_larger_than_space_returns_all(self, small_space):
        assert small_space.sample(999) == small_space.points()

    def test_sample_rejects_non_positive(self, small_space):
        with pytest.raises(ValueError, match="sample size"):
            small_space.sample(0)

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="at least one"):
            DesignSpace(programs=(), shapes=(TargetShape(4, 8, 4),))

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown candidate policy"):
            DesignSpace(
                programs=("example_firewall",),
                shapes=(TargetShape(4, 8, 4),),
                policies=("best-first",),
            )

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phases"):
            DesignSpace(
                programs=("example_firewall",),
                shapes=(TargetShape(4, 8, 4),),
                orders=((2, 5),),
            )

    def test_seed_space_covers_the_ablation_axes(self):
        space = seed_space()
        assert (2, 3, 4) in space.orders and (4, 2, 3) in space.orders
        assert "lowest-hit-rate" in space.policies
        assert "highest-hit-rate" in space.policies
        assert space.size == len(space.points())


# ----------------------------------------------------------------------
# Frontier extraction (satellite 1: brute-force equivalence)


def brute_force_front(items):
    """The O(n²) dominance recount the fast extraction must equal."""
    vectors = [objective_vector(m) for m in items]
    return [
        items[i]
        for i, vi in enumerate(vectors)
        if not any(
            dominates(vj, vi)
            for j, vj in enumerate(vectors)
            if j != i
        )
    ]


METRICS = st.fixed_dictionaries(
    {
        "stages_used": st.integers(min_value=1, max_value=12),
        "controller_load": st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False
        ),
        "profile_coverage": st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False
        ),
        "compile_count": st.integers(min_value=0, max_value=200),
    }
)


class TestParetoFront:
    @given(st.lists(METRICS, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force_recount(self, items):
        assert pareto_front(items) == brute_force_front(items)

    @given(st.lists(METRICS, min_size=1, max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_no_survivor_is_dominated_and_every_survivor_is_nondominated(
        self, items
    ):
        front = pareto_front(items)
        vectors = [objective_vector(m) for m in items]
        front_vectors = [objective_vector(m) for m in front]
        for fv in front_vectors:
            assert not any(dominates(v, fv) for v in vectors)
        for i, vi in enumerate(vectors):
            if not any(
                dominates(vj, vi)
                for j, vj in enumerate(vectors)
                if j != i
            ):
                assert items[i] in front

    def test_equal_vectors_tie_and_both_survive_in_input_order(self):
        a = {
            "stages_used": 3,
            "controller_load": 0.1,
            "profile_coverage": 0.9,
            "compile_count": 10,
        }
        b = dict(a)
        worse = dict(a, stages_used=5, compile_count=20)
        assert pareto_front([a, worse, b]) == [a, b]

    def test_preserves_input_order(self):
        best_stages = {
            "stages_used": 1,
            "controller_load": 0.5,
            "profile_coverage": 1.0,
            "compile_count": 50,
        }
        best_load = dict(
            best_stages, stages_used=9, controller_load=0.0
        )
        assert pareto_front([best_load, best_stages]) == [
            best_load,
            best_stages,
        ]

    def test_single_point_is_the_frontier(self):
        point = {
            "stages_used": 4,
            "controller_load": 0.0,
            "profile_coverage": 1.0,
            "compile_count": 1,
        }
        assert pareto_front([point]) == [point]
        assert pareto_front([]) == []

    def test_dominates_is_strict(self):
        assert dominates((1, 1), (1, 2))
        assert not dominates((1, 2), (1, 2))
        assert not dominates((1, 2), (2, 1))
        with pytest.raises(ValueError, match="share a length"):
            dominates((1,), (1, 2))

    def test_objective_vector_negates_max_axes(self):
        metrics = {
            "stages_used": 4,
            "controller_load": 0.25,
            "profile_coverage": 0.75,
            "compile_count": 9,
        }
        assert objective_vector(metrics) == (4.0, 0.25, -0.75, 9.0)
        with pytest.raises(ValueError, match="unknown sense"):
            objective_vector(metrics, (("stages_used", "minimize"),))


class TestFitBreakpoints:
    def test_smallest_fitting_shape_per_program(self):
        records = [
            {"program": "a", "shape": (3, 8, 4), "fits": False},
            {"program": "a", "shape": (6, 8, 4), "fits": True},
            {"program": "a", "shape": (12, 16, 8), "fits": True},
            {"program": "b", "shape": (3, 8, 4), "fits": False},
        ]
        breakpoints = fit_breakpoints(records)
        assert breakpoints["a"]["smallest_fit"] == [6, 8, 4]
        assert breakpoints["a"]["shapes_fit"] == 2
        assert breakpoints["a"]["shapes_swept"] == 3
        assert breakpoints["b"]["smallest_fit"] is None

    def test_any_point_on_a_shape_rescues_it(self):
        records = [
            {"program": "a", "shape": (6, 8, 4), "fits": False},
            {"program": "a", "shape": (6, 8, 4), "fits": True},
        ]
        assert fit_breakpoints(records)["a"]["smallest_fit"] == [6, 8, 4]


# ----------------------------------------------------------------------
# The sweep itself


class TestSweep:
    def test_frontier_points_are_feasible_and_fit(self, sweep):
        frontier = sweep.frontier()
        assert any(front for front in frontier.values())
        for front in frontier.values():
            for outcome in front:
                assert outcome.feasible and outcome.fits

    def test_cold_sweep_reuses_probes_across_points(self, sweep):
        aggregate = sweep.aggregate()
        assert aggregate["probe_disk_hits"] > 0
        assert 0.0 < aggregate["disk_reuse_rate"] < 1.0
        assert (
            aggregate["probe_executions"] + aggregate["probe_disk_hits"]
            <= aggregate["probe_calls"]
        )

    def test_breakpoints_find_the_smallest_fitting_shape(self, sweep):
        info = sweep.breakpoints()["example_firewall"]
        assert info["smallest_fit"] is not None
        assert info["shapes_swept"] == 3
        # The example program spills past 3 stages before optimization,
        # so the smallest swept shape must not be the 3-stage one.
        assert info["smallest_fit"][0] > 3

    def test_metrics_carry_every_pareto_objective(self, sweep):
        for outcome in sweep.outcomes:
            assert outcome.feasible, outcome.reason
            for key in (
                "stages_used",
                "controller_load",
                "profile_coverage",
                "compile_count",
                "fits",
            ):
                assert key in outcome.metrics
            assert 0.0 <= outcome.metrics["profile_coverage"] <= 1.0
            assert outcome.metrics["compile_count"] > 0

    def test_canonical_dict_excludes_scheduling_facts(self, sweep):
        payload = sweep.as_dict()
        serialized = json.dumps(payload)
        assert "workers" not in payload
        assert "seconds" not in serialized
        assert "store_root" not in serialized
        assert payload["space"]["points_run"] == len(sweep.outcomes)
        assert set(payload["frontier"]) == {"example_firewall"}

    def test_report_renders(self, sweep):
        report = render_explore_report(sweep)
        assert "example_firewall" in report
        assert "cross-point reuse" in report
        assert "smallest fitting shape" in report

    def test_warm_second_sweep_executes_nothing(
        self, small_space, store_root, sweep
    ):
        """Satellite 2: every probe of a repeat sweep is answered by
        the store the first sweep filled."""
        warm = Explorer(
            small_space, packets=PACKETS, workers=1, store=store_root
        ).run()
        aggregate = warm.aggregate()
        assert aggregate["probe_executions"] == 0
        assert aggregate["probe_disk_hits"] > 0
        # Same metrics, frontier, and breakpoints as the cold sweep —
        # only the aggregate provenance (who paid) may differ.
        warm_payload, cold_payload = warm.as_dict(), sweep.as_dict()
        warm_payload.pop("aggregate")
        cold_payload.pop("aggregate")
        assert json.dumps(warm_payload, sort_keys=True) == json.dumps(
            cold_payload, sort_keys=True
        )

    def test_worker_counts_serialize_byte_identically(
        self, tmp_path
    ):
        """Satellite 2: same seed/grid at workers 1 vs 4 yields
        byte-identical canonical JSON (fresh store each, so the lease
        protocol's exactly-once execution keeps even the aggregate
        provenance deterministic)."""
        space = DesignSpace(
            programs=("example_firewall",),
            shapes=parse_grid("stages=3,6", EXAMPLE_TARGET),
        )
        serialized = []
        for workers in (1, 4):
            result = Explorer(
                space,
                packets=PACKETS,
                workers=workers,
                sample=6,
                seed=3,
                store=str(tmp_path / f"store-w{workers}"),
            ).run()
            serialized.append(
                json.dumps(result.as_dict(), sort_keys=True)
            )
        assert serialized[0] == serialized[1]

    def test_infeasible_shapes_are_recorded_not_raised(self, tmp_path):
        """A shape whose SRAM cannot hold the program's register array
        at all becomes an infeasible outcome, and an all-infeasible
        grid yields an empty frontier."""
        space = DesignSpace(
            programs=("example_firewall",),
            shapes=parse_grid("stages=12;sram=1", EXAMPLE_TARGET),
            orders=((2, 3, 4),),
            policies=("lowest-hit-rate",),
        )
        result = Explorer(
            space, packets=PACKETS, workers=1, store=str(tmp_path / "s")
        ).run()
        (outcome,) = result.outcomes
        assert outcome.status == "infeasible"
        assert "AllocationError" in outcome.reason
        assert outcome.metrics == {}
        assert result.frontier() == {"example_firewall": []}
        assert result.aggregate()["frontier_points"] == 0
        assert (
            result.breakpoints()["example_firewall"]["smallest_fit"]
            is None
        )
