"""Unit tests for table lookup semantics (exact, LPM, ternary)."""

import pytest

from repro.exceptions import SimulationError
from repro.p4.expressions import FieldRef
from repro.p4.tables import MatchKind, Table, TableKey
from repro.sim.match import lookup
from repro.sim.runtime import TableEntry


def make_table(kind, nkeys=1):
    keys = tuple(
        TableKey(FieldRef("h", f"f{i}"), kind) for i in range(nkeys)
    )
    return Table(name="t", keys=keys, actions=("a",))


class TestExact:
    def test_hit(self):
        table = make_table(MatchKind.EXACT)
        entries = [TableEntry((5,), "a"), TableEntry((7,), "a", (1,))]
        entry = lookup(table, [16], [7], entries)
        assert entry is not None and entry.action_args == (1,)

    def test_miss(self):
        table = make_table(MatchKind.EXACT)
        assert lookup(table, [16], [9], [TableEntry((5,), "a")]) is None

    def test_multi_key_all_must_match(self):
        table = make_table(MatchKind.EXACT, nkeys=2)
        entries = [TableEntry((1, 2), "a")]
        assert lookup(table, [16, 16], [1, 2], entries) is not None
        assert lookup(table, [16, 16], [1, 3], entries) is None

    def test_key_arity_checked(self):
        table = make_table(MatchKind.EXACT, nkeys=2)
        with pytest.raises(SimulationError):
            lookup(table, [16], [1], [])


class TestLpm:
    def test_longest_prefix_wins(self):
        table = make_table(MatchKind.LPM)
        entries = [
            TableEntry(((0x0A000000, 8),), "a", (8,)),
            TableEntry(((0x0A010000, 16),), "a", (16,)),
            TableEntry(((0, 0),), "a", (0,)),
        ]
        entry = lookup(table, [32], [0x0A010203], entries)
        assert entry.action_args == (16,)
        entry = lookup(table, [32], [0x0A990203], entries)
        assert entry.action_args == (8,)
        entry = lookup(table, [32], [0xC0000001], entries)
        assert entry.action_args == (0,)

    def test_default_route_matches_everything(self):
        table = make_table(MatchKind.LPM)
        entries = [TableEntry(((0, 0),), "a")]
        assert lookup(table, [32], [0xDEADBEEF], entries) is not None

    def test_prefix_boundary(self):
        table = make_table(MatchKind.LPM)
        entries = [TableEntry(((0b10100000, 3),), "a")]
        assert lookup(table, [8], [0b10111111], entries) is not None
        assert lookup(table, [8], [0b11100000], entries) is None


class TestTernary:
    def test_mask_applies(self):
        table = make_table(MatchKind.TERNARY)
        entries = [TableEntry(((0x0A00, 0xFF00),), "a")]
        assert lookup(table, [16], [0x0A55], entries) is not None
        assert lookup(table, [16], [0x0B55], entries) is None

    def test_priority_breaks_overlap(self):
        table = make_table(MatchKind.TERNARY)
        entries = [
            TableEntry(((0, 0),), "a", (1,), priority=1),
            TableEntry(((5, 0xFFFF),), "a", (2,), priority=10),
        ]
        assert lookup(table, [16], [5], entries).action_args == (2,)
        assert lookup(table, [16], [6], entries).action_args == (1,)

    def test_zero_mask_is_wildcard(self):
        table = make_table(MatchKind.TERNARY)
        entries = [TableEntry(((123, 0),), "a")]
        assert lookup(table, [16], [999], entries) is not None


class TestEmpty:
    def test_no_entries_is_miss(self):
        table = make_table(MatchKind.EXACT)
        assert lookup(table, [16], [1], []) is None
