"""Tests for stage allocation — packing, spilling, dependency separation."""

import pytest

from repro.analysis.dependencies import build_dependency_graph
from repro.exceptions import AllocationError
from repro.p4 import (
    Apply,
    Const,
    Drop,
    FieldRef,
    ModifyField,
    ProgramBuilder,
    Seq,
)
from repro.target.allocation import allocate
from repro.target.compiler import compile_program
from repro.target.model import TargetModel

SMALL = TargetModel(
    name="small",
    num_stages=8,
    sram_blocks_per_stage=4,
    tcam_blocks_per_stage=2,
    sram_block_bytes=64,
    tcam_block_bytes=32,
    max_tables_per_stage=2,
)


def build(tables, ingress=None, registers=(), deps=True):
    b = ProgramBuilder("p")
    b.header_type("h_t", [("f1", 16), ("f2", 16)])
    b.header("h", "h_t")
    b.metadata("m", [("x", 16)])
    for name, width, size in registers:
        b.register(name, width=width, size=size)
    b.action("drop_it", [Drop()])
    b.action("mark", [ModifyField(FieldRef("m", "x"), Const(1))])
    for name, kwargs in tables:
        b.table(name, **kwargs)
    nodes = ingress or [Apply(name) for name, _k in tables]
    b.ingress(Seq(nodes))
    return b.build()


class TestPacking:
    def test_independent_tables_share_a_stage(self):
        program = build(
            [
                ("ta", dict(keys=[("h.f1", "exact")], actions=["mark"],
                            size=4)),
                ("tb", dict(keys=[("h.f2", "exact")], actions=["drop_it"],
                            size=4)),
            ]
        )
        result = compile_program(program, SMALL)
        assert result.stages_used == 1
        assert set(result.stage_map()[0]) == {"ta", "tb"}

    def test_action_dependent_tables_separate(self):
        program = build(
            [
                ("ta", dict(keys=[("h.f1", "exact")], actions=["drop_it"],
                            size=4)),
                ("tb", dict(keys=[("h.f2", "exact")], actions=["drop_it"],
                            size=4)),
            ]
        )
        result = compile_program(program, SMALL)
        assert result.stages_used == 2

    def test_successor_shares_stage(self):
        program = build(
            [
                ("ta", dict(keys=[("h.f1", "exact")], actions=["drop_it"],
                            size=4)),
                ("tb", dict(keys=[("h.f2", "exact")], actions=["drop_it"],
                            size=4)),
            ],
            ingress=[Apply("ta", on_miss=Apply("tb"))],
        )
        result = compile_program(program, SMALL)
        # Miss-guarded: the ACTION conflict cannot manifest, RMT
        # predication packs both into one stage (the §3.2 rewrite's whole
        # point).
        assert result.stages_used == 1

    def test_memory_forces_spill_across_stages(self):
        # 4 blocks/stage of 64B = 256B/stage; an exact table of 128
        # entries x 4B = 512B must span 2 stages.
        program = build(
            [("big", dict(keys=[("h.f1", "exact")], actions=["mark"],
                          size=128))]
        )
        result = compile_program(program, SMALL)
        placement = result.allocation.placements["big"]
        assert placement.first_stage == 0
        assert placement.last_stage == 1

    def test_dependent_of_spanning_table_lands_after_last_stage(self):
        program = build(
            [
                ("big", dict(keys=[("h.f1", "exact")], actions=["drop_it"],
                             size=128)),
                ("next", dict(keys=[("h.f2", "exact")], actions=["drop_it"],
                              size=4)),
            ]
        )
        result = compile_program(program, SMALL)
        assert result.allocation.placements["next"].first_stage == 2

    def test_table_slot_limit(self):
        # max_tables_per_stage=2: three tiny tables with write-free
        # actions (hence no dependencies) still need 2 stages.
        program = build(
            [
                ("t1", dict(keys=[("h.f1", "exact")], actions=[], size=2)),
                ("t2", dict(keys=[("h.f2", "exact")], actions=[], size=2)),
                ("t3", dict(keys=[("h.f1", "exact")], actions=[], size=2)),
            ]
        )
        result = compile_program(program, SMALL)
        assert result.stages_used == 2

    @staticmethod
    def _register_program(cells: int):
        from repro.p4.actions import RegisterWrite

        b = ProgramBuilder("p")
        b.header_type("h_t", [("f1", 16)]).header("h", "h_t")
        b.register("reg", width=8, size=cells)
        b.action("wr", [RegisterWrite("reg", Const(0), Const(1))])
        b.table("t", keys=[], actions=[], default_action="wr")
        b.ingress(Apply("t"))
        return b.build()

    def test_register_must_fit_one_stage(self):
        program = self._register_program(1024)  # 1KB > 256B/stage
        dep_graph = build_dependency_graph(program)
        with pytest.raises(AllocationError):
            allocate(program, dep_graph, SMALL)

    def test_register_colocated_with_table(self):
        program = self._register_program(128)  # 2 blocks
        result = compile_program(program, SMALL)
        placement = result.allocation.placements["t"]
        assert dict(placement.register_stage)["reg"] in placement.stages()


class TestVirtualStages:
    def test_oversubscribed_program_reports_not_fits(self):
        tiny = TargetModel(
            name="tiny",
            num_stages=1,
            sram_blocks_per_stage=4,
            tcam_blocks_per_stage=2,
            sram_block_bytes=64,
            tcam_block_bytes=32,
            max_tables_per_stage=2,
        )
        program = build(
            [
                ("ta", dict(keys=[("h.f1", "exact")], actions=["drop_it"],
                            size=4)),
                ("tb", dict(keys=[("h.f2", "exact")], actions=["drop_it"],
                            size=4)),
            ]
        )
        result = compile_program(program, tiny)
        # Compiles in simulation (§2.2 "what if the program does not
        # fit") but reports the overflow.
        assert result.stages_used == 2
        assert not result.fits


class TestStageAccounting:
    def test_sram_usage_reported(self):
        program = build(
            [("t", dict(keys=[("h.f1", "exact")], actions=["mark"],
                        size=4))]
        )
        result = compile_program(program, SMALL)
        assert sum(result.allocation.sram_used_by_stage) >= 1

    def test_stage_map_lists_spanning_table_in_each_stage(self):
        program = build(
            [("big", dict(keys=[("h.f1", "exact")], actions=["mark"],
                          size=128))]
        )
        result = compile_program(program, SMALL)
        stage_map = result.stage_map()
        assert stage_map[0] == ["big"]
        assert stage_map[1] == ["big"]
