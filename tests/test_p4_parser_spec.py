"""Unit tests for parser specs and parser-based validity reasoning."""

import pytest

from repro.exceptions import P4ValidationError
from repro.p4.expressions import FieldRef
from repro.p4.parser_spec import ACCEPT, ParserSpec, ParserState


def ethernet_chain():
    """eth -> ipv4 -> {udp -> {dns | dhcp}, gre}."""
    return ParserSpec(
        states={
            "start": ParserState(
                "start",
                extracts=("ethernet",),
                select=FieldRef("ethernet", "etherType"),
                transitions={0x800: "parse_ipv4"},
            ),
            "parse_ipv4": ParserState(
                "parse_ipv4",
                extracts=("ipv4",),
                select=FieldRef("ipv4", "protocol"),
                transitions={17: "parse_udp", 47: "parse_gre"},
            ),
            "parse_udp": ParserState(
                "parse_udp",
                extracts=("udp",),
                select=FieldRef("udp", "dstPort"),
                transitions={53: "parse_dns", 67: "parse_dhcp"},
            ),
            "parse_gre": ParserState("parse_gre", extracts=("gre",)),
            "parse_dns": ParserState("parse_dns", extracts=("dns",)),
            "parse_dhcp": ParserState("parse_dhcp", extracts=("dhcp",)),
        },
        start="start",
    )


class TestValidation:
    def test_valid_spec_passes(self):
        ethernet_chain().validate()

    def test_unknown_start_rejected(self):
        spec = ParserSpec(states={}, start="ghost")
        with pytest.raises(P4ValidationError):
            spec.validate()

    def test_dangling_transition_rejected(self):
        spec = ParserSpec(
            states={
                "start": ParserState(
                    "start",
                    extracts=("eth",),
                    select=FieldRef("eth", "t"),
                    transitions={1: "ghost"},
                )
            },
            start="start",
        )
        with pytest.raises(P4ValidationError):
            spec.validate()

    def test_cycle_rejected(self):
        spec = ParserSpec(
            states={
                "a": ParserState("a", extracts=("h1",), default="b"),
                "b": ParserState("b", extracts=("h2",), default="a"),
            },
            start="a",
        )
        with pytest.raises(P4ValidationError):
            spec.validate()

    def test_transitions_without_select_rejected(self):
        with pytest.raises(P4ValidationError):
            ParserState("s", transitions={1: ACCEPT})


class TestValidHeaderSets:
    def test_all_paths_enumerated(self):
        sets = ethernet_chain().valid_header_sets()
        assert frozenset({"ethernet"}) in sets  # non-IPv4
        assert frozenset({"ethernet", "ipv4"}) in sets
        assert frozenset({"ethernet", "ipv4", "udp"}) in sets
        assert frozenset({"ethernet", "ipv4", "udp", "dns"}) in sets
        assert frozenset({"ethernet", "ipv4", "udp", "dhcp"}) in sets
        assert frozenset({"ethernet", "ipv4", "gre"}) in sets

    def test_no_dns_and_dhcp_together(self):
        """DNS and DHCP live on different parser branches — the static
        mutual exclusivity Ex. 1's analysis relies on."""
        assert not ethernet_chain().may_both_be_valid("dns", "dhcp")

    def test_udp_and_dns_together(self):
        assert ethernet_chain().may_both_be_valid("udp", "dns")

    def test_same_header_trivially_covalid(self):
        assert ethernet_chain().may_both_be_valid("udp", "udp")


class TestImplication:
    def test_dhcp_implies_udp(self):
        """Every DHCP packet is a UDP packet — what makes the paper's
        ACL_DHCP relocation into ACL_UDP's miss branch safe (§3.2)."""
        assert ethernet_chain().implies_valid("dhcp", "udp")

    def test_udp_does_not_imply_dns(self):
        assert not ethernet_chain().implies_valid("udp", "dns")

    def test_gre_implies_ipv4(self):
        assert ethernet_chain().implies_valid("gre", "ipv4")

    def test_everything_implies_ethernet(self):
        spec = ethernet_chain()
        for header in ("ipv4", "udp", "dns", "dhcp", "gre"):
            assert spec.implies_valid(header, "ethernet")


class TestReachability:
    def test_reachable_states(self):
        assert ethernet_chain().reachable_states() == {
            "start",
            "parse_ipv4",
            "parse_udp",
            "parse_gre",
            "parse_dns",
            "parse_dhcp",
        }

    def test_headers_extracted(self):
        assert "dns" in ethernet_chain().headers_extracted()
