"""Seed determinism of the traffic generators (and the fuzz generator).

The paper's methodology replays one recorded trace many times; this
repo's substitute is seeded generation, so every consumer — profiling,
the oracle axes, the cross-run session store — relies on the same seed
producing the same bytes.  Pinned three ways: within a process, across
seeds (different seed, different trace), and across *processes* (no
hidden dependence on hash randomization or interpreter state).
"""

import hashlib
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.traffic.generators import (
    dhcp_stream,
    dns_stream,
    interleave,
    tcp_background,
    udp_background,
)

SRC = str(Path(__file__).parent.parent / "src")


def _digest(packets) -> str:
    h = hashlib.sha256()
    for packet in packets:
        data, port = (
            packet if isinstance(packet, tuple) else (packet, -1)
        )
        h.update(port.to_bytes(2, "big", signed=True))
        h.update(len(data).to_bytes(4, "big"))
        h.update(data)
    return h.hexdigest()


def _sample(seed: int):
    rng = random.Random(seed)
    groups = [
        udp_background(40, rng, dst_ports=(53, 137, 445)),
        tcp_background(40, rng),
        dns_stream(0x0A000001, 0xC0A80001, 10, query_id_base=seed),
        dhcp_stream(20, rng, ingress_port=5),
    ]
    return interleave(rng, *groups)


@pytest.mark.parametrize("seed", (0, 1, 1337))
def test_same_seed_is_byte_identical(seed):
    assert _digest(_sample(seed)) == _digest(_sample(seed))


def test_different_seeds_differ():
    assert _digest(_sample(1)) != _digest(_sample(2))


#: Child-process probe: prints the digest of the seeded sample (and of a
#: seeded fuzz case) so the parent can compare across interpreters.
_CHILD = """
import hashlib, random, sys
sys.path.insert(0, {src!r})
from tests.test_traffic_determinism import _digest, _sample
from repro.fuzz import generate_case
from repro.p4.dsl import print_program

seed = int(sys.argv[1])
case = generate_case(seed, trace_packets=20)
print(_digest(_sample(seed)))
print(hashlib.sha256(print_program(case.program).encode()).hexdigest())
print(_digest(case.trace))
"""


def _child_digests(seed: int):
    root = str(Path(__file__).parent.parent)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD.format(src=SRC), str(seed)],
        capture_output=True,
        text=True,
        check=True,
        cwd=root,
        env={"PYTHONPATH": SRC + ":" + root, "PYTHONHASHSEED": "random"},
    )
    return out.stdout.split()


def test_determinism_across_processes():
    """Two fresh interpreters (randomized hash seeds) agree byte for
    byte — on the traffic sample, the fuzz-generated program, and the
    fuzz-generated trace."""
    first = _child_digests(9)
    second = _child_digests(9)
    assert first == second
    # And the parent process agrees with the children on the sample.
    assert first[0] == _digest(_sample(9))


def test_fuzz_case_differs_across_seeds_in_subprocess():
    assert _child_digests(9) != _child_digests(10)
