"""Tests for §3.1's program instrumentation.

Key paper claims encoded here: instrumentation marks each executed action
in a distinct profiling-header field, introduces no new dependencies,
cannot increase the required stages, and does not change the program's
behaviour.
"""

import pytest

from repro.analysis.dependencies import build_dependency_graph
from repro.core.instrument import (
    PROFILE_HEADER,
    instrument,
)
from repro.exceptions import ProfilingError
from repro.p4 import ProgramBuilder
from repro.packets.craft import dns_query, udp_packet
from repro.programs import example_firewall
from repro.sim import BehavioralSwitch
from repro.target import compile_program
from tests.conftest import build_toy_program, toy_config


@pytest.fixture(scope="module")
def instrumented_toy():
    return instrument(build_toy_program())


class TestStructure:
    def test_profile_header_added(self, instrumented_toy):
        program = instrumented_toy.program
        assert PROFILE_HEADER in program.headers
        assert not program.headers[PROFILE_HEADER].metadata

    def test_one_bit_per_table_action_pair(self, instrumented_toy):
        pairs = set(instrumented_toy.bit_fields)
        assert ("fib", "fwd") in pairs
        assert ("fib", "NoAction") in pairs
        assert ("acl", "deny") in pairs
        assert ("acl", "NoAction") in pairs

    def test_actions_cloned_per_table(self, instrumented_toy):
        program = instrumented_toy.program
        assert "fwd__prof__fib" in program.actions
        assert "NoAction__prof__fib" in program.actions
        assert "NoAction__prof__acl" in program.actions
        # Distinct clones: one extra primitive each, writing distinct bits.
        fib_clone = program.actions["NoAction__prof__fib"]
        acl_clone = program.actions["NoAction__prof__acl"]
        assert fib_clone.writes() != acl_clone.writes()

    def test_profile_header_is_auto_valid(self, instrumented_toy):
        """The parser adds the header for every packet — no init table,
        no match-action resources consumed."""
        inst = instrumented_toy.program.headers[PROFILE_HEADER]
        assert inst.auto_valid
        assert (
            instrumented_toy.program.tables_in_control_order()
            == instrumented_toy.original.tables_in_control_order()
        )

    def test_original_untouched(self, instrumented_toy):
        original = instrumented_toy.original
        assert PROFILE_HEADER not in original.headers

    def test_program_without_tables_rejected(self):
        b = ProgramBuilder("empty")
        b.header_type("h_t", [("f", 8)]).header("h", "h_t")
        with pytest.raises(ProfilingError):
            instrument(b.build())


class TestNoNewDependencies:
    def test_no_cross_table_deps_from_profiling_bits(self, instrumented_toy):
        """Each bit is written by exactly one cloned action, so
        instrumentation adds no ACTION dependencies between the original
        tables (§3.1)."""
        original_graph = build_dependency_graph(instrumented_toy.original)
        instr_graph = build_dependency_graph(instrumented_toy.program)
        original_pairs = {
            (d.src, d.dst) for d in original_graph.edges()
        }
        instr_pairs = {(d.src, d.dst) for d in instr_graph.edges()}
        assert instr_pairs == original_pairs

    def test_stage_count_not_increased_toy(self, instrumented_toy):
        from repro.programs.common import EXAMPLE_TARGET

        before = compile_program(
            instrumented_toy.original, EXAMPLE_TARGET
        ).stages_used
        after = compile_program(
            instrumented_toy.program, EXAMPLE_TARGET
        ).stages_used
        assert after <= before

    def test_stage_count_not_increased_firewall(self, firewall_program):
        instrumented = instrument(firewall_program)
        before = compile_program(
            firewall_program, example_firewall.TARGET
        ).stages_used
        after = compile_program(
            instrumented.program, example_firewall.TARGET
        ).stages_used
        assert after <= before


class TestBehaviorPreserved:
    def test_same_forwarding_decisions(self):
        program = build_toy_program()
        config = toy_config()
        instrumented = instrument(program)
        plain = BehavioralSwitch(program, config)
        marked = BehavioralSwitch(
            instrumented.program, instrumented.adapt_config(config)
        )
        packets = [
            udp_packet("1.1.1.1", "10.0.0.9", 5, 53),
            udp_packet("1.1.1.1", "10.0.0.9", 5, 80),
            udp_packet("1.1.1.1", "99.0.0.9", 5, 9999),
        ]
        for pkt in packets:
            a = plain.process(pkt)
            b = marked.process(pkt)
            assert a.forwarding_decision() == b.forwarding_decision()


class TestDecoding:
    def test_bits_reflect_executed_actions(self):
        program = build_toy_program()
        config = toy_config()
        instrumented = instrument(program)
        switch = BehavioralSwitch(
            instrumented.program, instrumented.adapt_config(config)
        )
        result = switch.process(udp_packet("1.1.1.1", "10.0.0.9", 5, 53))
        pairs = set(instrumented.decode_result_bits(result.headers))
        assert pairs == {("fib", "fwd"), ("acl", "deny")}

    def test_miss_sets_default_bit(self):
        program = build_toy_program()
        config = toy_config()
        instrumented = instrument(program)
        switch = BehavioralSwitch(
            instrumented.program, instrumented.adapt_config(config)
        )
        result = switch.process(udp_packet("1.1.1.1", "10.0.0.9", 5, 80))
        pairs = set(instrumented.decode_result_bits(result.headers))
        assert ("acl", "NoAction") in pairs

    def test_packet_level_decode_matches_phv_decode(self):
        """§3.1's actual mechanism: read the marked bits off the emitted
        packet bytes."""
        program = build_toy_program()
        config = toy_config()
        instrumented = instrument(program)
        switch = BehavioralSwitch(
            instrumented.program, instrumented.adapt_config(config)
        )
        for pkt in (
            udp_packet("1.1.1.1", "10.0.0.9", 5, 53, b"payload"),
            dns_query("2.2.2.2", "8.8.8.8"),
        ):
            result = switch.process(pkt)
            from_phv = set(instrumented.decode_result_bits(result.headers))
            from_bytes = set(
                instrumented.decode_packet_bits(result.output_bytes)
            )
            assert from_bytes == from_phv

    def test_adapt_config_rejects_unknown_table(self):
        from repro.sim import RuntimeConfig

        instrumented = instrument(build_toy_program())
        bad = RuntimeConfig().add_entry("ghost", [1], "deny")
        with pytest.raises(ProfilingError):
            instrumented.adapt_config(bad)
