"""Tests for dot-source rendering of analysis artifacts."""

import pytest

from repro.analysis.render import dependency_graph_dot, stage_map_dot
from repro.target import compile_program
from repro.programs import example_firewall


class TestDependencyGraphDot:
    def test_firewall_graph_renders(self, firewall_program):
        dot = dependency_graph_dot(firewall_program, title="Fig. 1")
        assert dot.startswith("digraph dependencies {")
        assert dot.rstrip().endswith("}")
        assert 'label="Fig. 1"' in dot

    def test_tables_are_boxes_conditions_diamonds(self, firewall_program):
        dot = dependency_graph_dot(firewall_program)
        assert 'shape=box, label="Sketch_Min"' in dot
        assert "shape=diamond" in dot
        assert "dns_cms_meta.count >= 128" in dot

    def test_edge_styles_match_figure(self, firewall_program):
        dot = dependency_graph_dot(firewall_program)
        assert "dashdotted" in dot  # action deps
        assert "style=dashed" in dot  # match deps

    def test_balanced_braces(self, firewall_program):
        dot = dependency_graph_dot(firewall_program)
        assert dot.count("{") == dot.count("}")


class TestStageMapDot:
    def test_stage_map_renders(self, firewall_program):
        result = compile_program(firewall_program, example_firewall.TARGET)
        dot = stage_map_dot(result.stage_map(), title="initial")
        assert dot.count("[shape=record") <= 1  # set once on node attr
        assert "stage 1|IPv4" in dot
        assert "s0 -> s1" in dot

    def test_empty_stage_rendered_as_dash(self):
        dot = stage_map_dot([["a"], []])
        assert "stage 2|-" in dot
