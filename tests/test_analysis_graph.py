"""Unit + property tests for the generic digraph algorithms."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.graph import CycleError, Digraph


def chain(*nodes, weight=1):
    g = Digraph()
    for a, b in zip(nodes, nodes[1:]):
        g.add_edge(a, b, weight)
    return g


class TestBasics:
    def test_nodes_and_edges(self):
        g = chain("a", "b", "c")
        assert g.nodes() == {"a", "b", "c"}
        assert ("a", "b", 1) in g.edges()
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_parallel_edges_keep_heaviest(self):
        g = Digraph()
        g.add_edge("a", "b", 1)
        g.add_edge("a", "b", 3)
        g.add_edge("a", "b", 2)
        assert g.weight("a", "b") == 3

    def test_predecessors_successors(self):
        g = chain("a", "b", "c")
        assert g.predecessors("c") == {"b"}
        assert g.successors("a") == {"b": 1}

    def test_missing_weight_raises(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            chain("a", "b").weight("b", "a")


class TestTopologicalOrder:
    def test_chain_order(self):
        assert chain("a", "b", "c").topological_order() == ["a", "b", "c"]

    def test_cycle_detected(self):
        g = chain("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(CycleError):
            g.topological_order()

    def test_isolated_nodes_included(self):
        g = chain("a", "b")
        g.add_node("z")
        assert set(g.topological_order()) == {"a", "b", "z"}


class TestLongestPath:
    def test_simple_chain(self):
        weight, path = chain("a", "b", "c").longest_path()
        assert weight == 2
        assert path == ["a", "b", "c"]

    def test_weighted_edges(self):
        g = Digraph()
        g.add_edge("a", "b", 1)
        g.add_edge("a", "c", 5)
        g.add_edge("b", "d", 1)
        g.add_edge("c", "d", 1)
        weight, path = g.longest_path()
        assert weight == 6
        assert path == ["a", "c", "d"]

    def test_zero_weight_edges(self):
        g = Digraph()
        g.add_edge("a", "b", 0)
        g.add_edge("b", "c", 1)
        weight, _path = g.longest_path()
        assert weight == 1

    def test_empty_graph(self):
        assert Digraph().longest_path() == (0, [])


class TestCriticalEdges:
    def test_single_chain_all_critical(self):
        g = chain("a", "b", "c")
        assert g.critical_edges() == {("a", "b"), ("b", "c")}

    def test_shorter_branch_not_critical(self):
        g = Digraph()
        g.add_edge("a", "b", 1)
        g.add_edge("b", "c", 1)
        g.add_edge("a", "c", 1)  # shortcut: not on the longest path
        assert ("a", "c") not in g.critical_edges()
        assert ("a", "b") in g.critical_edges()

    def test_parallel_longest_paths_all_critical(self):
        g = Digraph()
        g.add_edge("a", "b", 1)
        g.add_edge("b", "d", 1)
        g.add_edge("a", "c", 1)
        g.add_edge("c", "d", 1)
        assert g.critical_edges() == {
            ("a", "b"), ("b", "d"), ("a", "c"), ("c", "d"),
        }

    def test_zero_weight_successor_edge_not_critical_alone(self):
        g = Digraph()
        g.add_edge("a", "b", 1)
        g.add_edge("a", "c", 0)
        assert g.critical_edges() == {("a", "b")}


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        max_size=40,
    )
)
def test_longest_path_consistency(edge_pairs):
    """On random DAGs (edges forced forward), the longest path's weight
    equals the max of the per-node longest-path lengths."""
    g = Digraph()
    for a, b in edge_pairs:
        if a < b:
            g.add_edge(a, b, 1)
    if not g.nodes():
        return
    lengths = g.longest_path_lengths()
    weight, path = g.longest_path()
    assert weight == max(lengths.values())
    assert len(path) >= 1
    # The returned path is genuinely a path.
    for src, dst in zip(path, path[1:]):
        assert g.has_edge(src, dst)
