"""Unit tests for repro.p4.actions: primitives and compound actions."""

import pytest

from repro.exceptions import P4SemanticsError
from repro.p4.actions import (
    Action,
    AddHeader,
    AddToField,
    CONTROLLER_REASON,
    DROP_FLAG,
    Drop,
    EGRESS_PORT,
    HashFields,
    MinOf,
    ModifyField,
    NoOp,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SendToController,
    SetEgressPort,
    SubtractFromField,
    TO_CONTROLLER,
)
from repro.p4.expressions import Const, FieldRef, ParamRef, RegisterSize

DST = FieldRef("m", "x")
SRC = FieldRef("h", "y")


class TestModifyField:
    def test_reads_and_writes(self):
        prim = ModifyField(DST, SRC)
        assert prim.writes() == {DST}
        assert prim.reads() == {SRC}

    def test_const_source_reads_nothing(self):
        assert ModifyField(DST, Const(1)).reads() == frozenset()

    def test_param_source(self):
        assert ModifyField(DST, ParamRef("p")).params() == {"p"}


class TestArithmeticPrimitives:
    def test_add_reads_own_destination(self):
        prim = AddToField(DST, Const(1))
        assert DST in prim.reads()
        assert prim.writes() == {DST}

    def test_subtract_reads_own_destination(self):
        prim = SubtractFromField(DST, SRC)
        assert prim.reads() == {DST, SRC}


class TestDrop:
    def test_writes_egress_and_flag(self):
        """Drop writes the egress port — this is the root of the paper's
        ACL/ACL action dependency (§2.1)."""
        writes = Drop().writes()
        assert EGRESS_PORT in writes
        assert DROP_FLAG in writes


class TestSendToController:
    def test_writes_controller_fields(self):
        writes = SendToController(3).writes()
        assert TO_CONTROLLER in writes
        assert CONTROLLER_REASON in writes
        assert EGRESS_PORT in writes


class TestRegisterPrimitives:
    def test_read_touches_register(self):
        prim = RegisterRead(DST, "reg", Const(0))
        assert prim.registers_read() == {"reg"}
        assert prim.writes() == {DST}

    def test_write_touches_register(self):
        prim = RegisterWrite("reg", Const(0), SRC)
        assert prim.registers_written() == {"reg"}
        assert SRC in prim.reads()

    def test_register_size_index_counts_as_register_read(self):
        prim = RegisterRead(DST, "reg", RegisterSize("other"))
        assert prim.registers_read() == {"reg", "other"}


class TestHashFields:
    def test_requires_inputs(self):
        with pytest.raises(P4SemanticsError):
            HashFields(DST, "crc32", (), Const(16))

    def test_reads_inputs(self):
        prim = HashFields(DST, "crc32", (SRC,), RegisterSize("reg"))
        assert SRC in prim.reads()
        assert prim.registers_read() == {"reg"}


class TestMinOf:
    def test_reads_both_operands(self):
        prim = MinOf(DST, SRC, FieldRef("m", "z"))
        assert prim.reads() == {SRC, FieldRef("m", "z")}
        assert prim.writes() == {DST}


class TestHeaderPrimitives:
    def test_add_header(self):
        assert AddHeader("gre").headers_added() == {"gre"}

    def test_remove_header(self):
        assert RemoveHeader("gre").headers_removed() == {"gre"}


class TestAction:
    def test_aggregates_primitives(self):
        action = Action(
            name="a",
            primitives=(ModifyField(DST, SRC), RegisterWrite("r", Const(0), Const(1))),
        )
        assert action.writes() == {DST}
        assert action.reads() == {SRC}
        assert action.registers_written() == {"r"}

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(P4SemanticsError):
            Action(name="a", parameters=("p", "p"))

    def test_undeclared_parameter_rejected(self):
        with pytest.raises(P4SemanticsError):
            Action(
                name="a",
                parameters=(),
                primitives=(ModifyField(DST, ParamRef("ghost")),),
            )

    def test_declared_parameter_accepted(self):
        action = Action(
            name="a",
            parameters=("port",),
            primitives=(SetEgressPort(ParamRef("port")),),
        )
        assert action.params_referenced() == {"port"}

    def test_with_extra_primitives_appends_and_renames(self):
        base = Action(name="a", primitives=(NoOp(),))
        extended = base.with_extra_primitives(
            [ModifyField(DST, Const(1))], new_name="a2"
        )
        assert extended.name == "a2"
        assert len(extended.primitives) == 2
        assert isinstance(extended.primitives[0], NoOp)
        # The original is untouched.
        assert len(base.primitives) == 1

    def test_headers_added_removed(self):
        action = Action(
            name="a", primitives=(AddHeader("x"), RemoveHeader("y"))
        )
        assert action.headers_added() == {"x"}
        assert action.headers_removed() == {"y"}
