"""Tests for table-dependency-graph construction (the Fig. 1 machinery)."""

import pytest

from repro.analysis.dependencies import (
    DependencyKind,
    build_dependency_graph,
    figure_edges,
)
from repro.p4 import (
    Apply,
    Const,
    Drop,
    FieldRef,
    If,
    ModifyField,
    ProgramBuilder,
    RegisterWrite,
    Seq,
    SetEgressPort,
    ParamRef,
    ValidExpr,
    BinOp,
)


def two_table_program(action_a, action_b, shared_register=False,
                      key_b="h.f2"):
    b = ProgramBuilder("p")
    b.header_type("h_t", [("f1", 16), ("f2", 16)])
    b.header("h", "h_t")
    b.metadata("m", [("x", 16), ("y", 16)])
    if shared_register:
        b.register("reg", width=8, size=4)
    b.action("act_a", action_a)
    b.action("act_b", action_b)
    b.table("ta", keys=[("h.f1", "exact")], actions=["act_a"])
    b.table("tb", keys=[(key_b, "exact")], actions=["act_b"])
    b.ingress(Seq([Apply("ta"), Apply("tb")]))
    return b.build()


class TestDependencyKinds:
    def test_match_dependency_via_key(self):
        """tb matches on a field ta's action writes -> MATCH."""
        program = two_table_program(
            [ModifyField(FieldRef("h", "f2"), Const(1))],
            [Drop()],
        )
        graph = build_dependency_graph(program)
        dep = graph.between("ta", "tb")
        assert dep is not None and dep.kind is DependencyKind.MATCH

    def test_action_dependency_write_write(self):
        """Both actions write the egress port -> ACTION (the paper's two
        drop actions)."""
        program = two_table_program([Drop()], [Drop()])
        dep = build_dependency_graph(program).between("ta", "tb")
        assert dep is not None and dep.kind is DependencyKind.ACTION

    def test_action_dependency_read_after_write(self):
        program = two_table_program(
            [ModifyField(FieldRef("m", "x"), Const(1))],
            [ModifyField(FieldRef("m", "y"), FieldRef("m", "x"))],
        )
        dep = build_dependency_graph(program).between("ta", "tb")
        assert dep is not None and dep.kind is DependencyKind.ACTION

    def test_shared_register_is_action_dependency(self):
        program = two_table_program(
            [RegisterWrite("reg", Const(0), Const(1))],
            [RegisterWrite("reg", Const(1), Const(2))],
            shared_register=True,
        )
        dep = build_dependency_graph(program).between("ta", "tb")
        assert dep is not None and dep.kind is DependencyKind.ACTION
        assert any("reg" in c.registers for c in dep.causes)

    def test_reverse_dependency_later_writer(self):
        """tb writes the field ta matches on -> REVERSE (anti-dep):
        same-stage legal, earlier-stage not."""
        program = two_table_program(
            [Drop()],
            [ModifyField(FieldRef("h", "f1"), Const(9))],
        )
        dep = build_dependency_graph(program).between("ta", "tb")
        assert dep is not None and dep.kind is DependencyKind.REVERSE
        assert dep.min_stage_separation == 0
        assert dep.kind.aligns_to_first_stage

    def test_reverse_dependency_constrains_placement(self):
        """The writer must not land in an earlier stage than a reader
        whose memory pushed it deep into the pipeline."""
        from repro.target.compiler import compile_program
        from repro.target.model import TargetModel

        tiny = TargetModel(
            name="tiny",
            num_stages=8,
            sram_blocks_per_stage=4,
            tcam_blocks_per_stage=2,
            sram_block_bytes=64,
            tcam_block_bytes=32,
            max_tables_per_stage=2,
        )
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f1", 16), ("f2", 16)])
        b.header("h", "h_t")
        b.action("big_act", [Drop()])
        b.action("writer", [ModifyField(FieldRef("h", "f1"), Const(1))])
        # 'reader' matches f1 and needs two stages of memory (128 x 4B).
        b.table("reader", keys=[("h.f1", "exact")], actions=["big_act"],
                size=128)
        b.table("writer_t", keys=[("h.f2", "exact")], actions=["writer"],
                size=2)
        b.ingress(Seq([Apply("reader"), Apply("writer_t")]))
        result = compile_program(b.build(), tiny)
        placements = result.allocation.placements
        assert (
            placements["writer_t"].first_stage
            >= placements["reader"].first_stage
        )

    def test_independent_tables_have_no_edge(self):
        program = two_table_program(
            [ModifyField(FieldRef("m", "x"), Const(1))],
            [ModifyField(FieldRef("m", "y"), Const(2))],
        )
        assert build_dependency_graph(program).between("ta", "tb") is None

    def test_successor_dependency(self):
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 16)]).header("h", "h_t")
        b.action("a1", [ModifyField(FieldRef("h", "f"), Const(1))])
        b.action("a2", [])
        b.table("ta", keys=[("h.f", "exact")], actions=["a1"])
        b.table("tb", keys=[], actions=[], default_action="a2")
        b.ingress(Apply("ta", on_miss=Apply("tb")))
        dep = build_dependency_graph(b.build()).between("ta", "tb")
        assert dep is not None and dep.kind is DependencyKind.SUCCESSOR
        assert dep.min_stage_separation == 0

    def test_match_dependency_via_guard_condition(self):
        """A condition reading ta's output guards tb -> MATCH (the paper's
        Sketch_Min -> condition -> DNS_Drop chain)."""
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 16)]).header("h", "h_t")
        b.metadata("m", [("count", 32)])
        b.action("bump", [ModifyField(FieldRef("m", "count"), Const(1))])
        b.action("d", [Drop()])
        b.table("ta", keys=[("h.f", "exact")], actions=["bump"])
        b.table("tb", keys=[("h.f", "exact")], actions=["d"])
        b.ingress(
            Seq(
                [
                    Apply("ta"),
                    If(
                        BinOp(">=", FieldRef("m", "count"), Const(1)),
                        Apply("tb"),
                    ),
                ]
            )
        )
        dep = build_dependency_graph(b.build()).between("ta", "tb")
        assert dep is not None and dep.kind is DependencyKind.MATCH

    def test_exclusive_branches_no_action_dependency(self):
        """Tables in a then/else pair never co-execute -> no dependency
        despite both dropping."""
        b = ProgramBuilder("p")
        b.header_type("h_t", [("f", 16)]).header("h", "h_t")
        b.parser_state("start", extracts=["h"])
        b.action("d1", [Drop()])
        b.action("d2", [Drop()])
        b.table("ta", keys=[("h.f", "exact")], actions=["d1"])
        b.table("tb", keys=[("h.f", "exact")], actions=["d2"])
        b.ingress(
            If(ValidExpr("h"), Apply("ta"), Apply("tb"))
        )
        # valid(h) is always true here (parser always extracts), so only
        # the ta branch is feasible; tb is unreachable -> no dep.
        assert build_dependency_graph(b.build()).between("ta", "tb") is None


class TestFirewallGraph:
    """Fig. 1's structure, recovered from the real Ex. 1 program."""

    @pytest.fixture(scope="class")
    def graph(self, firewall_program):
        return build_dependency_graph(firewall_program)

    def test_acl_chain_action_deps(self, graph):
        assert graph.between("IPv4", "ACL_UDP").kind is DependencyKind.ACTION
        assert graph.between("IPv4", "ACL_DHCP").kind is DependencyKind.ACTION
        assert (
            graph.between("ACL_UDP", "ACL_DHCP").kind is DependencyKind.ACTION
        )

    def test_sketch_match_deps(self, graph):
        assert (
            graph.between("Sketch_1", "Sketch_Min").kind
            is DependencyKind.ACTION
        )
        assert (
            graph.between("Sketch_2", "Sketch_Min").kind
            is DependencyKind.ACTION
        )

    def test_condition_match_dep_to_dns_drop(self, graph):
        assert (
            graph.between("Sketch_Min", "DNS_Drop").kind
            is DependencyKind.MATCH
        )

    def test_parser_exclusive_pairs_absent(self, graph):
        assert graph.between("ACL_DHCP", "Sketch_1") is None
        assert graph.between("ACL_DHCP", "DNS_Drop") is None

    def test_action_cause_names_conflicting_actions(self, graph):
        dep = graph.between("ACL_UDP", "ACL_DHCP")
        pairs = {(c.src_action, c.dst_action) for c in dep.causes}
        assert ("acl_udp_drop", "acl_dhcp_drop") in pairs

    def test_critical_dependencies_nonempty(self, graph):
        critical = graph.critical_dependencies()
        assert critical
        edges = {(d.src, d.dst) for d in critical}
        assert ("ACL_UDP", "ACL_DHCP") in edges

    def test_longest_path(self, graph):
        weight, _path = graph.longest_path()
        assert weight >= 2


class TestFigureEdges:
    def test_firewall_figure_contains_condition_node(self, firewall_program):
        edges = figure_edges(firewall_program)
        kinds = {(e.src, e.dst, e.kind) for e in edges}
        cond = "(dns_cms_meta.count >= 128)"
        assert ("Sketch_Min", cond, "match") in kinds
        assert (cond, "DNS_Drop", "control") in kinds
        assert ("IPv4", "ACL_UDP", "action") in kinds
