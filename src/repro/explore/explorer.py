"""The design-space explorer: every point through the full pipeline.

:class:`Explorer.run` fans a :class:`~repro.explore.space.DesignSpace`'s
points out through the existing run machinery — each point is one
:class:`~repro.core.pipeline.SwitchRun` (serial probes, exactly like a
fleet switch) on a process pool against **one shared persistent store**,
so probes that overlap across design points are paid for once.  The big
overlap is profiling: profile entries are keyed by (program, config,
trace) with *no target in the key*, so every shape of a program answers
its profiling probes from the first shape's replays; compile entries are
keyed by the target's content fingerprint and are shared between points
that differ only in phase order or policy.

Determinism contract (the fleet coordinator's, inherited):

* Results merge in **submission order** (the space's enumeration
  order), so the outcome list — and the canonical JSON
  (:meth:`ExploreResult.as_dict`) — is byte-identical for any worker
  count.  Per-point metrics and probe *calls* are deterministic
  outright; aggregate execution/disk-hit splits are deterministic on a
  fresh store because the lease protocol executes every distinct probe
  exactly once sweep-wide.  What is *not* deterministic — per-point
  provenance (who paid for a shared probe), timings, lease contention —
  stays off the canonical dict and appears only in the human report.
* A point whose program cannot be allocated on its shape at all (an
  unsplittable register array larger than a stage — AllocationError)
  is recorded as ``status="infeasible"`` with the reason; the sweep
  continues.  Shapes the program compiles onto but spills past
  (virtual stages, §2.2) are feasible points with ``fits=False`` —
  they carry metrics and feed the fit breakpoints, but only fitting
  points enter the Pareto frontier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.fleet import family_inputs
from repro.core.pipeline import P2GOResult, SwitchRun
from repro.core.session import (
    OptimizationContext,
    SessionCounters,
    resolve_workers,
)
from repro.core.store import DEFAULT_LEASE_TTL, SessionStore, resolve_store
from repro.exceptions import ReproError
from repro.explore.frontier import fit_breakpoints, pareto_front
from repro.explore.space import DesignPoint, DesignSpace
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.target.model import TargetModel
from repro.traffic.generators import TracePacket

__all__ = [
    "Explorer",
    "ExploreResult",
    "PointOutcome",
    "PointSpec",
    "profile_coverage",
]


def profile_coverage(result: P2GOResult) -> float:
    """Apply-rate-weighted fraction of the original program's tables
    still executed on-switch after optimization.  1.0 until phase 4
    moves a segment to the controller (dependency removal and memory
    reduction keep every table; offloading replaces the segment's
    tables with a redirect) — the "how much of the profiled behaviour
    still runs at line rate" Pareto objective."""
    profile = result.initial_profile
    original = result.original_program.tables_in_control_order()
    surviving = set(result.optimized_program.tables_in_control_order())
    total = sum(profile.apply_rate(table) for table in original)
    if total == 0:
        return 1.0
    kept = sum(
        profile.apply_rate(table)
        for table in original
        if table in surviving
    )
    return kept / total


@dataclass
class PointSpec:
    """One design point resolved to concrete, picklable pipeline
    inputs (the point's program family loaded, its shape applied to
    the family's base target)."""

    point: DesignPoint
    program: Program
    config: RuntimeConfig
    trace: List[TracePacket]
    target: TargetModel

    def build_run(self, lease_probes: bool = False) -> SwitchRun:
        return SwitchRun(
            self.program,
            self.config,
            self.trace,
            self.target,
            name=self.point.point_id,
            phases=self.point.order,
            workers=1,
            lease_probes=lease_probes,
            candidate_policy=self.point.policy,
        )


@dataclass
class PointOutcome:
    """One design point's outcome.

    ``metrics`` (feasible points only) holds the Pareto objectives plus
    ``fits``; ``counters``/``store_stats``/``seconds`` are provenance
    and timing — deliberately absent from :meth:`as_dict`, which is the
    worker-count-independent canonical form (per-point *calls* are
    deterministic; who executed vs. disk-hit a shared probe is not).
    """

    point: DesignPoint
    status: str  # "ok" | "infeasible"
    reason: Optional[str]
    metrics: Dict
    counters: Optional[SessionCounters]
    store_stats: Optional[dict]
    seconds: float

    @property
    def feasible(self) -> bool:
        return self.status == "ok"

    @property
    def fits(self) -> bool:
        return bool(self.metrics.get("fits", False))

    def as_dict(self) -> Dict:
        payload: Dict = {
            "point": self.point.point_id,
            "program": self.point.program,
            "shape": [
                self.point.shape.num_stages,
                self.point.shape.sram_blocks,
                self.point.shape.tcam_blocks,
            ],
            "order": list(self.point.order),
            "policy": self.point.policy,
            "status": self.status,
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.metrics:
            payload["metrics"] = {
                key: (
                    round(value, 6) if isinstance(value, float) else value
                )
                for key, value in sorted(self.metrics.items())
            }
        if self.counters is not None:
            payload["probes"] = {
                "compile_calls": self.counters.compile_calls,
                "profile_calls": self.counters.profile_calls,
            }
        return payload


def _point_task(
    spec: PointSpec,
    store_root: Optional[str],
    lease_probes: bool,
    lease_ttl: float,
) -> PointOutcome:
    """One design point end to end (runs inside a pool worker): open
    this process's handle on the shared store, execute, score.  A
    :class:`~repro.exceptions.ReproError` (the program cannot exist on
    this shape) becomes an infeasible outcome; the session is closed —
    and any held probe leases released — either way."""
    t0 = time.perf_counter()
    store = (
        SessionStore(store_root, lease_ttl=lease_ttl)
        if store_root is not None
        else None
    )
    run = spec.build_run(lease_probes=lease_probes and store is not None)
    ctx = run.create_session(store=store)
    status, reason, metrics = "ok", None, {}
    store_stats = None
    try:
        result = run.execute(session=ctx)
        metrics = {
            "stages_before": result.stages_before,
            "stages_used": result.stages_after,
            "controller_load": float(result.controller_load),
            "profile_coverage": profile_coverage(result),
            "compile_count": ctx.counters.compile_calls,
            "offloaded_tables": len(result.offloaded_tables),
            "fits": result.stages_after <= spec.target.num_stages,
        }
    except ReproError as exc:
        status = "infeasible"
        reason = f"{type(exc).__name__}: {exc}"
    finally:
        counters = ctx.counters
        if ctx.store is not None:
            store_stats = ctx.store.stats()
        ctx.close()
    return PointOutcome(
        point=spec.point,
        status=status,
        reason=reason,
        metrics=metrics,
        counters=counters,
        store_stats=store_stats,
        seconds=time.perf_counter() - t0,
    )


@dataclass
class ExploreResult:
    """Everything one sweep produces, in submission order."""

    outcomes: List[PointOutcome]
    space: DesignSpace
    sample: Optional[int]
    seed: int
    workers: int
    store_root: Optional[str]
    lease_probes: bool
    wall_seconds: float
    _aggregate: Optional[Dict] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def frontier(self) -> Dict[str, List[PointOutcome]]:
        """Per-program Pareto frontier over the feasible, fitting
        points (input order preserved; equal-vector ties all kept)."""
        frontier: Dict[str, List[PointOutcome]] = {}
        for program in self.space.programs:
            candidates = [
                outcome
                for outcome in self.outcomes
                if outcome.point.program == program
                and outcome.feasible
                and outcome.fits
            ]
            frontier[program] = pareto_front(
                candidates, key=lambda outcome: outcome.metrics
            )
        return frontier

    def breakpoints(self) -> Dict[str, Dict]:
        """Per-program smallest-shape-that-still-fits (infeasible
        points count as not fitting their shape)."""
        records = [
            {
                "program": outcome.point.program,
                "shape": (
                    outcome.point.shape.num_stages,
                    outcome.point.shape.sram_blocks,
                    outcome.point.shape.tcam_blocks,
                ),
                "fits": outcome.feasible and outcome.fits,
            }
            for outcome in self.outcomes
        ]
        return fit_breakpoints(records)

    def aggregate(self) -> Dict:
        """Sweep-wide counts: point census, probe provenance, the
        cross-point reuse rate the shared store bought."""
        if self._aggregate is not None:
            return self._aggregate
        calls = executions = disk_hits = 0
        for outcome in self.outcomes:
            counters = outcome.counters
            if counters is not None:
                calls += counters.compile_calls + counters.profile_calls
                executions += (
                    counters.compile_executions
                    + counters.profile_executions
                )
                disk_hits += (
                    counters.compile_disk_hits
                    + counters.profile_disk_hits
                )
        frontier = self.frontier()
        self._aggregate = {
            "points": len(self.outcomes),
            "feasible": sum(1 for o in self.outcomes if o.feasible),
            "infeasible": sum(
                1 for o in self.outcomes if not o.feasible
            ),
            "fitting": sum(
                1 for o in self.outcomes if o.feasible and o.fits
            ),
            "frontier_points": sum(
                len(front) for front in frontier.values()
            ),
            "probe_calls": calls,
            "probe_executions": executions,
            "probe_disk_hits": disk_hits,
            "disk_reuse_rate": round(
                disk_hits / calls if calls else 0.0, 4
            ),
        }
        return self._aggregate

    def as_dict(self) -> Dict:
        """The canonical JSON form: everything deterministic for a
        given ``(space, sample, seed)`` and a fresh store — worker
        count, store location, timings, and lease contention are
        deliberately excluded (``p2go explore --workers 1`` and
        ``--workers 4`` must serialize byte-identically;
        ``tests/test_explore.py`` pins that)."""
        space = self.space.describe()
        space["points_run"] = len(self.outcomes)
        space["sample"] = self.sample
        space["seed"] = self.seed
        return {
            "space": space,
            "points": [outcome.as_dict() for outcome in self.outcomes],
            "frontier": {
                program: [outcome.point.point_id for outcome in front]
                for program, front in self.frontier().items()
            },
            "breakpoints": self.breakpoints(),
            "aggregate": self.aggregate(),
        }


class Explorer:
    """Run a design space through the pipeline on a process pool.

    ``packets``/``trace_seed`` feed each program family's traffic
    generator **once per program** — every shape/order/policy of a
    program sees the same trace, which is what makes its profiling
    probes shape-independent and reusable.  ``sample``/``seed`` thin
    large grids deterministically (:meth:`DesignSpace.sample`).
    ``store`` follows :func:`~repro.core.store.resolve_store` semantics
    (instance / path / None → ``$P2GO_STORE`` / False → off); without
    one, points still run — there is just no cross-point reuse.
    ``workers`` sizes the coordinator pool (None → ``$P2GO_WORKERS``,
    then 1); per-point sessions probe serially, exactly like fleet
    switches, so parallelism lives at point granularity.
    """

    def __init__(
        self,
        space: DesignSpace,
        packets: Optional[int] = None,
        trace_seed: int = 0,
        sample: Optional[int] = None,
        seed: int = 0,
        workers: Optional[int] = None,
        store: Union[SessionStore, str, bool, None] = None,
        lease_probes: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ):
        self.space = space
        self.packets = packets
        self.trace_seed = trace_seed
        self.sample = sample
        self.seed = seed
        self.workers = workers
        self.store = store
        self.lease_probes = lease_probes
        self.lease_ttl = lease_ttl

    def points(self) -> List[DesignPoint]:
        if self.sample is not None:
            return self.space.sample(self.sample, self.seed)
        return self.space.points()

    def build_specs(self) -> List[PointSpec]:
        """The sweep's points resolved to concrete inputs, in
        submission order.  Family inputs are loaded once per program
        (one trace per program — see the class docstring)."""
        inputs = {
            program: family_inputs(
                program, packets=self.packets, trace_seed=self.trace_seed
            )
            for program in self.space.programs
        }
        specs = []
        for point in self.points():
            program, config, trace, base_target = inputs[point.program]
            specs.append(
                PointSpec(
                    point=point,
                    program=program,
                    config=config,
                    trace=trace,
                    target=point.shape.apply(base_target),
                )
            )
        return specs

    def run(self) -> ExploreResult:
        """Execute the sweep; outcomes merge in submission order."""
        specs = self.build_specs()
        workers = resolve_workers(self.workers)
        resolved = resolve_store(self.store)
        store_root = None if resolved is None else str(resolved.root)
        t0 = time.perf_counter()
        if workers == 1 or len(specs) <= 1:
            outcomes = [
                _point_task(
                    spec, store_root, self.lease_probes, self.lease_ttl
                )
                for spec in specs
            ]
        else:
            pool = OptimizationContext._make_pool(
                min(workers, len(specs)), use_processes=True
            )
            try:
                futures = [
                    pool.submit(
                        _point_task,
                        spec,
                        store_root,
                        self.lease_probes,
                        self.lease_ttl,
                    )
                    for spec in specs
                ]
                outcomes = [future.result() for future in futures]
            finally:
                pool.shutdown(wait=True)
        return ExploreResult(
            outcomes=outcomes,
            space=self.space,
            sample=self.sample,
            seed=self.seed,
            workers=workers,
            store_root=store_root,
            lease_probes=self.lease_probes and store_root is not None,
            wall_seconds=time.perf_counter() - t0,
        )
