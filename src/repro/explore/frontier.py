"""Multi-objective Pareto extraction over design-point metrics.

The explorer scores every feasible design point on four objectives —
pipeline stages used (min), controller load (min), profile coverage
(max), compile count (min) — and the *frontier* is the subset no other
point dominates.  Domination is the standard strong Pareto relation on
min-normalized vectors: ``a`` dominates ``b`` when ``a`` is no worse on
every objective and strictly better on at least one.  Points with
*equal* objective vectors tie: neither dominates, so both survive —
deterministically, in input order.

:func:`pareto_front` exploits that domination implies lexicographic
precedence (if ``a`` dominates ``b`` then ``vec(a) < vec(b)``
lexicographically): scanning points in lex order, only the running
archive of survivors can dominate the next candidate, so each point is
compared against the frontier-so-far instead of every other point.
``tests/test_explore.py`` property-checks it against the O(n²)
every-pair recount.

:func:`fit_breakpoints` answers the deployment question a shape sweep
exists for: per program, the smallest swept shape the optimized program
still fits — below it, buying fewer stages means the program spills
into virtual stages.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

__all__ = [
    "DEFAULT_OBJECTIVES",
    "dominates",
    "fit_breakpoints",
    "objective_vector",
    "pareto_front",
]

T = TypeVar("T")

#: The explorer's objectives: ``(metric key, sense)``.  ``min``/``max``
#: is per objective; vectors are normalized so smaller is always
#: better (``max`` axes are negated).
DEFAULT_OBJECTIVES: Tuple[Tuple[str, str], ...] = (
    ("stages_used", "min"),
    ("controller_load", "min"),
    ("profile_coverage", "max"),
    ("compile_count", "min"),
)


def objective_vector(
    metrics: Mapping,
    objectives: Sequence[Tuple[str, str]] = DEFAULT_OBJECTIVES,
) -> Tuple[float, ...]:
    """``metrics`` projected onto ``objectives``, min-normalized."""
    vector = []
    for key, sense in objectives:
        if sense not in ("min", "max"):
            raise ValueError(
                f"objective {key!r} has unknown sense {sense!r}; "
                "use 'min' or 'max'"
            )
        value = float(metrics[key])
        vector.append(value if sense == "min" else -value)
    return tuple(vector)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Strong Pareto domination on min-normalized vectors: ``a`` no
    worse everywhere and strictly better somewhere.  Equal vectors
    dominate in neither direction (ties survive extraction)."""
    if len(a) != len(b):
        raise ValueError(
            f"vectors must share a length, got {len(a)} and {len(b)}"
        )
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(
    items: Sequence[T],
    objectives: Sequence[Tuple[str, str]] = DEFAULT_OBJECTIVES,
    key: Optional[Callable[[T], Mapping]] = None,
) -> List[T]:
    """The non-dominated subset of ``items``, in input order.

    ``key`` maps an item to its metrics mapping (identity by default).
    Deterministic: output order is input order, and equal-vector ties
    all survive.  Lex-sorted archive scan — each candidate is checked
    against current survivors only, which is sufficient because a
    dominator always precedes its victim lexicographically.
    """
    getter = key if key is not None else (lambda item: item)
    vectors = [objective_vector(getter(item), objectives) for item in items]
    order = sorted(range(len(vectors)), key=lambda i: (vectors[i], i))
    archive: List[int] = []
    surviving: List[int] = []
    for i in order:
        if not any(dominates(vectors[j], vectors[i]) for j in archive):
            archive.append(i)
            surviving.append(i)
    surviving.sort()
    return [items[i] for i in surviving]


def fit_breakpoints(
    records: Sequence[Mapping],
) -> Dict[str, Dict]:
    """Per-program fit breakpoints over a shape sweep.

    ``records``: mappings with ``program`` (str), ``shape`` (a
    3-sequence ``(num_stages, sram_blocks, tcam_blocks)``), and
    ``fits`` (bool — did the *optimized* program fit that shape).  A
    shape counts as fitting when any swept point on it fits (phase
    order/policy may rescue a shape another configuration spills on).

    Returns, per program (sorted): ``smallest_fit`` — the minimal
    fitting shape as ``[stages, sram, tcam]`` (ordered by stages, then
    total blocks; ``None`` when no swept shape fits) — plus the
    ``shapes_fit`` / ``shapes_swept`` census behind it.
    """
    by_program: Dict[str, Dict[Tuple[int, int, int], bool]] = {}
    for record in records:
        shape = tuple(int(v) for v in record["shape"])
        shapes = by_program.setdefault(str(record["program"]), {})
        shapes[shape] = shapes.get(shape, False) or bool(record["fits"])
    breakpoints: Dict[str, Dict] = {}
    for program in sorted(by_program):
        shapes = by_program[program]
        fitting = sorted(
            (shape for shape, fits in shapes.items() if fits),
            key=lambda s: (s[0], s[1] + s[2], s[1]),
        )
        breakpoints[program] = {
            "smallest_fit": list(fitting[0]) if fitting else None,
            "shapes_fit": len(fitting),
            "shapes_swept": len(shapes),
        }
    return breakpoints
