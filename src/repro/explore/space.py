"""Declarative design space for P2GO sweeps.

A *design point* is one complete configuration of a hypothetical
deployment: which evaluation program runs, what pipeline shape the
target offers (stages x SRAM blocks x TCAM blocks per stage), which
phase order P2GO applies, and which phase-3 candidate-selection policy
it uses.  A :class:`DesignSpace` is the cross product of those axes; the
explorer (:mod:`repro.explore.explorer`) runs every point (or a seeded
sample of them) through the full pipeline and hands the outcomes to the
Pareto extractor (:mod:`repro.explore.frontier`).

Everything here is declarative and picklable: a point crosses a process
boundary as data (program *names*, shape integers, order tuples, policy
*names*) and is resolved to executable objects inside the worker.  The
enumeration order is fixed (programs, then shapes, then orders, then
policies) and :meth:`DesignSpace.sample` draws from it with a seeded
RNG, so the same ``(space, sample, seed)`` always yields the same point
list — the submission order the explorer's determinism contract merges
results in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.phase_memory import CANDIDATE_POLICIES
from repro.target.model import TargetModel

__all__ = [
    "DEFAULT_ORDERS",
    "DEFAULT_POLICIES",
    "DEFAULT_PROGRAMS",
    "DesignPoint",
    "DesignSpace",
    "TargetShape",
    "parse_grid",
    "seed_space",
]

#: Phase orders the phase-order ablation bench compares: the paper's
#: offload-last order and the offload-first anti-order.
DEFAULT_ORDERS: Tuple[Tuple[int, ...], ...] = ((2, 3, 4), (4, 2, 3))

#: Candidate policies the candidate-choice ablation bench compares.
DEFAULT_POLICIES: Tuple[str, ...] = ("lowest-hit-rate", "highest-hit-rate")

#: The program corpus the seed sweep covers — the paper's running
#: example (the program both ablation benches measure).
DEFAULT_PROGRAMS: Tuple[str, ...] = ("example_firewall",)

_VALID_PHASES = frozenset({2, 3, 4})


@dataclass(frozen=True)
class TargetShape:
    """One pipeline shape: the three axes a design sweep varies.

    Block sizes and the per-stage table bound are deployment constants,
    not exploration axes — :meth:`apply` inherits them from a base
    target.  Validation raises :class:`ValueError` (a malformed *shape*
    is a caller bug, unlike a malformed target *file*, which raises
    :class:`~repro.exceptions.CompilationError` at load time).
    """

    num_stages: int
    sram_blocks: int
    tcam_blocks: int

    def __post_init__(self) -> None:
        for field_name in ("num_stages", "sram_blocks", "tcam_blocks"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"shape axis {field_name!r} must be an integer, "
                    f"got {value!r}"
                )
            if value <= 0:
                raise ValueError(
                    f"shape axis {field_name!r} must be positive, "
                    f"got {value}"
                )

    @property
    def shape_id(self) -> str:
        """Compact ``stages x sram x tcam`` label (e.g. ``6x16x8``)."""
        return f"{self.num_stages}x{self.sram_blocks}x{self.tcam_blocks}"

    def key(self) -> Tuple[int, int, int]:
        """Sort key: fewer stages first, then less memory.  The order
        :func:`~repro.explore.frontier.fit_breakpoints` calls
        "smallest"."""
        return (
            self.num_stages,
            self.sram_blocks + self.tcam_blocks,
            self.sram_blocks,
        )

    def apply(self, base: TargetModel) -> TargetModel:
        """This shape as a concrete target: the three axes replaced,
        everything else (block bytes, tables/stage) inherited from
        ``base``.  The derived name embeds the shape, but identity is
        carried by :meth:`~repro.target.model.TargetModel.fingerprint`
        — two shapes never share compile cache entries regardless of
        naming."""
        return TargetModel(
            name=f"{base.name}@{self.shape_id}",
            num_stages=self.num_stages,
            sram_blocks_per_stage=self.sram_blocks,
            tcam_blocks_per_stage=self.tcam_blocks,
            sram_block_bytes=base.sram_block_bytes,
            tcam_block_bytes=base.tcam_block_bytes,
            max_tables_per_stage=base.max_tables_per_stage,
        )

    @classmethod
    def of(cls, target: TargetModel) -> "TargetShape":
        """The shape of an existing target."""
        return cls(
            num_stages=target.num_stages,
            sram_blocks=target.sram_blocks_per_stage,
            tcam_blocks=target.tcam_blocks_per_stage,
        )


@dataclass(frozen=True)
class DesignPoint:
    """One fully specified sweep configuration (pure data)."""

    program: str
    shape: TargetShape
    order: Tuple[int, ...]
    policy: str

    @property
    def point_id(self) -> str:
        """Stable human-readable identity, e.g.
        ``example_firewall/6x16x8/o234/lowest-hit-rate``."""
        order = "".join(str(phase) for phase in self.order)
        return (
            f"{self.program}/{self.shape.shape_id}/o{order}/{self.policy}"
        )


class DesignSpace:
    """The cross product of the four sweep axes.

    Axes are validated at construction (unknown policies and phase
    numbers fail here, not inside a pool worker mid-sweep) and
    normalized to tuples; :meth:`points` enumerates the product in a
    fixed order and :meth:`sample` draws a seeded subset of it,
    preserving that order.
    """

    def __init__(
        self,
        programs: Sequence[str],
        shapes: Sequence[TargetShape],
        orders: Sequence[Sequence[int]] = DEFAULT_ORDERS,
        policies: Sequence[str] = DEFAULT_POLICIES,
    ):
        self.programs: Tuple[str, ...] = tuple(programs)
        self.shapes: Tuple[TargetShape, ...] = tuple(shapes)
        self.orders: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(order) for order in orders
        )
        self.policies: Tuple[str, ...] = tuple(policies)
        for axis in ("programs", "shapes", "orders", "policies"):
            if not getattr(self, axis):
                raise ValueError(f"design space needs at least one of {axis}")
        for order in self.orders:
            unknown = set(order) - _VALID_PHASES
            if unknown:
                raise ValueError(
                    f"phase order {order} contains unknown phases "
                    f"{sorted(unknown)}; valid phases are 2, 3, 4"
                )
        for policy in self.policies:
            if policy not in CANDIDATE_POLICIES:
                raise ValueError(
                    f"unknown candidate policy {policy!r}; known "
                    "policies: " + ", ".join(sorted(CANDIDATE_POLICIES))
                )

    @property
    def size(self) -> int:
        return (
            len(self.programs)
            * len(self.shapes)
            * len(self.orders)
            * len(self.policies)
        )

    def points(self) -> List[DesignPoint]:
        """Every point, in the canonical axis-nesting order."""
        return [
            DesignPoint(
                program=program, shape=shape, order=order, policy=policy
            )
            for program in self.programs
            for shape in self.shapes
            for order in self.orders
            for policy in self.policies
        ]

    def sample(self, n: int, seed: int = 0) -> List[DesignPoint]:
        """A seeded ``n``-point subset, in enumeration order (sampling
        thins the grid; it never reorders it, so explorer submission
        order — and therefore output bytes — depend only on
        ``(space, n, seed)``)."""
        if n <= 0:
            raise ValueError(f"sample size must be positive, got {n}")
        points = self.points()
        if n >= len(points):
            return points
        indices = sorted(random.Random(seed).sample(range(len(points)), n))
        return [points[i] for i in indices]

    def describe(self) -> dict:
        """The axes as JSON-safe data (for reports and canonical
        output)."""
        return {
            "programs": list(self.programs),
            "shapes": [shape.shape_id for shape in self.shapes],
            "orders": [list(order) for order in self.orders],
            "policies": list(self.policies),
            "size": self.size,
        }


# ----------------------------------------------------------------------
# Grid parsing and the seed sweep


def parse_grid(spec: str, base: TargetModel) -> List[TargetShape]:
    """Shapes from a CLI grid spec: ``;``-separated axis clauses, each
    ``axis=v1,v2,...`` with axes ``stages``, ``sram``, ``tcam``.  A
    missing axis stays at ``base``'s value; the product nests in that
    axis order.  Example: ``stages=3,6,12;sram=8,16`` over the default
    example target yields six shapes.  Raises :class:`ValueError` on
    unknown axes, empty clauses, or non-positive values (via
    :class:`TargetShape`).
    """
    axes = {
        "stages": [base.num_stages],
        "sram": [base.sram_blocks_per_stage],
        "tcam": [base.tcam_blocks_per_stage],
    }
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, sep, values = clause.partition("=")
        name = name.strip()
        if not sep or name not in axes:
            raise ValueError(
                f"bad grid clause {clause!r}; expected "
                "'stages=...', 'sram=...', or 'tcam=...'"
            )
        try:
            parsed = [int(v) for v in values.split(",") if v.strip()]
        except ValueError:
            raise ValueError(
                f"grid axis {name!r} needs comma-separated integers, "
                f"got {values!r}"
            ) from None
        if not parsed:
            raise ValueError(f"grid axis {name!r} has no values")
        axes[name] = parsed
    return [
        TargetShape(
            num_stages=stages, sram_blocks=sram, tcam_blocks=tcam
        )
        for stages in axes["stages"]
        for sram in axes["sram"]
        for tcam in axes["tcam"]
    ]


def seed_space(
    programs: Optional[Sequence[str]] = None,
    base: Optional[TargetModel] = None,
) -> DesignSpace:
    """The default sweep, seeded from the existing ablation benchmarks:
    their two phase orders and two candidate policies, crossed with a
    stage/SRAM grid around the example target (down to shapes the
    programs stop fitting on, so the frontier and the fit breakpoints
    are both non-trivial out of the box)."""
    if base is None:
        from repro.programs.common import EXAMPLE_TARGET

        base = EXAMPLE_TARGET
    shapes = parse_grid("stages=2,3,4,6,12;sram=8,16", base)
    return DesignSpace(
        programs=tuple(programs) if programs else DEFAULT_PROGRAMS,
        shapes=shapes,
        orders=DEFAULT_ORDERS,
        policies=DEFAULT_POLICIES,
    )
