"""Cost-aware design-space exploration (``p2go explore``).

Three layers: :mod:`~repro.explore.space` declares the sweep (target
shapes x phase orders x candidate policies x programs),
:mod:`~repro.explore.explorer` runs every point through the existing
pipeline machinery against one shared store, and
:mod:`~repro.explore.frontier` extracts the Pareto frontier and the
per-program fit breakpoints from the outcomes.
"""

from repro.explore.explorer import (
    Explorer,
    ExploreResult,
    PointOutcome,
    PointSpec,
    profile_coverage,
)
from repro.explore.frontier import (
    DEFAULT_OBJECTIVES,
    dominates,
    fit_breakpoints,
    objective_vector,
    pareto_front,
)
from repro.explore.space import (
    DesignPoint,
    DesignSpace,
    TargetShape,
    parse_grid,
    seed_space,
)

__all__ = [
    "DEFAULT_OBJECTIVES",
    "DesignPoint",
    "DesignSpace",
    "Explorer",
    "ExploreResult",
    "PointOutcome",
    "PointSpec",
    "TargetShape",
    "dominates",
    "fit_breakpoints",
    "objective_vector",
    "pareto_front",
    "parse_grid",
    "profile_coverage",
    "seed_space",
]
