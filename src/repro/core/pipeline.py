"""The P2GO orchestrator (Fig. 2).

Runs the four phases in order: profile, remove dependencies, reduce
memory, offload code.  Every modification is recorded as an observation;
an optional review hook lets the programmer accept or reject each change
(§2.2: "the programmer can then choose to selectively accept or reject
them based on her knowledge of the general traffic").
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core import phase_dependencies, phase_memory, phase_offload
from repro.core.observations import (
    Observation,
    ObservationKind,
    ObservationLog,
    Phase,
)
from repro.core.profiler import Profile, Profiler
from repro.p4.program import Program
from repro.sim.perf import PerfCounters
from repro.sim.runtime import RuntimeConfig
from repro.target.compiler import compile_program
from repro.target.model import DEFAULT_TARGET, TargetModel
from repro.traffic.generators import TracePacket

#: Review hook: receives each optimization observation, returns True to
#: accept.  The default accepts everything (batch mode).
ReviewHook = Callable[[Observation], bool]


@dataclass
class PhaseOutcome:
    """Stage count after a phase (Table 2's rows)."""

    phase: Phase
    stages: int
    stage_map: List[List[str]]


@dataclass
class P2GOResult:
    """Everything one P2GO run produces."""

    original_program: Program
    optimized_program: Program
    final_config: RuntimeConfig
    observations: ObservationLog
    initial_profile: Profile
    outcomes: List[PhaseOutcome]
    offloaded_tables: Tuple[str, ...] = ()
    #: Perf counters of the initial profiling replay (packets/s, flow-cache
    #: hit rate, per-table lookups) — the engine cost every later phase
    #: re-pays on each re-profile.
    profiling_perf: Optional[PerfCounters] = None

    @property
    def stages_before(self) -> int:
        return self.outcomes[0].stages

    @property
    def stages_after(self) -> int:
        return self.outcomes[-1].stages

    def stage_history(self) -> List[Tuple[str, int]]:
        return [(o.phase.name.lower(), o.stages) for o in self.outcomes]


class P2GO:
    """Profile-guided optimizer for P4 programs.

    Parameters mirror the knobs the paper describes: which phases run, how
    many dependencies to remove, how many resizes to accept, the minimum
    stage savings and controller-load ceiling for offloading, and the
    review hook through which a programmer can veto changes.
    """

    def __init__(
        self,
        program: Program,
        config: RuntimeConfig,
        trace: Sequence[TracePacket],
        target: TargetModel = DEFAULT_TARGET,
        phases: Sequence[int] = (2, 3, 4),
        max_dependency_removals: int = 8,
        max_memory_reductions: int = 1,
        offload_min_stage_savings: int = 1,
        max_redirect_fraction: float = phase_offload.DEFAULT_MAX_REDIRECT,
        review_hook: Optional[ReviewHook] = None,
    ):
        program.validate()
        config.validate(program)
        self.program = program
        self.config = config
        self.trace = list(trace)
        self.target = target
        self.phases = tuple(phases)
        self.max_dependency_removals = max_dependency_removals
        self.max_memory_reductions = max_memory_reductions
        self.offload_min_stage_savings = offload_min_stage_savings
        self.max_redirect_fraction = max_redirect_fraction
        self.review_hook = review_hook

    # ------------------------------------------------------------------
    def _accepted(self, log: ObservationLog, obs: Observation) -> bool:
        log.add(obs)
        if (
            obs.kind is ObservationKind.OPTIMIZATION
            and self.review_hook is not None
        ):
            accepted = self.review_hook(obs)
            if not accepted:
                log.add(
                    Observation(
                        phase=obs.phase,
                        kind=ObservationKind.REJECTED,
                        title=f"programmer rejected: {obs.title}",
                        details="change rolled back at review",
                    )
                )
            return accepted
        return True

    def run(self) -> P2GOResult:
        log = ObservationLog()
        outcomes: List[PhaseOutcome] = []

        # Phase 1: profiling (batched replay through the flow-cache
        # engine; perf counters ride along on the result).
        initial_profile, profiling_perf = Profiler(
            self.program, self.config
        ).profile_trace(self.trace)
        log.add(
            Observation(
                phase=Phase.PROFILING,
                kind=ObservationKind.PROFILE,
                title=(
                    f"profiled {initial_profile.total_packets} packets, "
                    f"{len(initial_profile.nonexclusive_sets)} distinct "
                    f"non-exclusive action sets"
                ),
                details=(
                    f"replayed at {profiling_perf.packets_per_second():,.0f} "
                    f"packets/s (flow-cache hit rate "
                    f"{profiling_perf.cache_hit_rate():.1%}); "
                    "per-table hit rates: "
                    + ", ".join(
                        f"{t}={initial_profile.hit_rate(t):.1%}"
                        for t in self.program.tables_in_control_order()
                    )
                ),
            )
        )
        current = self.program
        config = self.config
        profile = initial_profile
        result = compile_program(current, self.target)
        outcomes.append(
            PhaseOutcome(
                phase=Phase.PROFILING,
                stages=result.stages_used,
                stage_map=result.stage_map(),
            )
        )

        # Optimization phases, honouring the requested order.  The paper's
        # default runs offloading last so the data plane is optimized
        # first (§2.2 explains why offloading earlier can waste work);
        # the ablation bench deliberately reorders.
        offloaded_tables: Tuple[str, ...] = ()
        for phase_number in self.phases:
            if phase_number == 2:
                for _round in range(self.max_dependency_removals):
                    step = phase_dependencies.run_phase(
                        current, result, profile
                    )
                    applied = False
                    for obs in step.observations:
                        if obs.kind is ObservationKind.OPTIMIZATION:
                            if self._accepted(log, obs):
                                applied = True
                        else:
                            log.add(obs)
                    if step.removed is None or not applied:
                        break
                    current = step.program
                    result = compile_program(current, self.target)
                    profile = Profiler(current, config).profile(self.trace)
                outcomes.append(
                    PhaseOutcome(
                        phase=Phase.REMOVE_DEPENDENCIES,
                        stages=result.stages_used,
                        stage_map=result.stage_map(),
                    )
                )
            elif phase_number == 3:
                for _round in range(self.max_memory_reductions):
                    step = phase_memory.run_phase(
                        current, config, self.trace, self.target, profile
                    )
                    applied = False
                    for obs in step.observations:
                        if obs.kind is ObservationKind.OPTIMIZATION:
                            if self._accepted(log, obs):
                                applied = True
                        else:
                            log.add(obs)
                    if step.accepted is None or not applied:
                        break
                    current = step.program
                    result = compile_program(current, self.target)
                    profile = Profiler(current, config).profile(self.trace)
                result = compile_program(current, self.target)
                outcomes.append(
                    PhaseOutcome(
                        phase=Phase.REDUCE_MEMORY,
                        stages=result.stages_used,
                        stage_map=result.stage_map(),
                    )
                )
            elif phase_number == 4:
                step = phase_offload.run_phase(
                    current,
                    config,
                    self.trace,
                    self.target,
                    min_stage_savings=self.offload_min_stage_savings,
                    max_redirect_fraction=self.max_redirect_fraction,
                )
                applied = False
                for obs in step.observations:
                    if obs.kind is ObservationKind.OPTIMIZATION:
                        if self._accepted(log, obs):
                            applied = True
                    else:
                        log.add(obs)
                if step.offloaded is not None and applied:
                    current = step.program
                    config = step.config
                    offloaded_tables = step.offloaded.candidate.tables
                    result = compile_program(current, self.target)
                    profile = Profiler(current, config).profile(self.trace)
                else:
                    result = compile_program(current, self.target)
                outcomes.append(
                    PhaseOutcome(
                        phase=Phase.OFFLOAD_CODE,
                        stages=result.stages_used,
                        stage_map=result.stage_map(),
                    )
                )
            else:
                raise ValueError(
                    f"unknown optimization phase {phase_number!r}; "
                    "valid phases are 2, 3, 4"
                )

        return P2GOResult(
            original_program=self.program,
            optimized_program=current,
            final_config=config,
            observations=log,
            initial_profile=initial_profile,
            outcomes=outcomes,
            offloaded_tables=offloaded_tables,
            profiling_perf=profiling_perf,
        )


def optimize(
    program: Program,
    config: RuntimeConfig,
    trace: Sequence[TracePacket],
    target: TargetModel = DEFAULT_TARGET,
    **kwargs,
) -> P2GOResult:
    """One-call convenience wrapper around :class:`P2GO`."""
    return P2GO(program, config, trace, target, **kwargs).run()
