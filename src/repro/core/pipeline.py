"""The P2GO orchestrator (Fig. 2).

Runs the four phases in order: profile, remove dependencies, reduce
memory, offload code.  Every modification is recorded as an observation;
an optional review hook lets the programmer accept or reject each change
(§2.2: "the programmer can then choose to selectively accept or reject
them based on her knowledge of the general traffic").

The loop itself lives in :class:`~repro.core.passes.PassManager`: each
phase is an :class:`~repro.core.passes.OptimizationPass` over a shared
:class:`~repro.core.session.OptimizationContext`, so all candidate
probing — the halving binary search of phase 3, the per-segment redirect
variants of phase 4, the re-profiles after each accepted change — goes
through one content-keyed compile/profile memo cache.  The session's
invocation counters ride along on :class:`P2GOResult` so callers can see
exactly how many compiles and trace replays a run cost (and how many the
cache absorbed).  ``tests/test_passes.py`` pins result equivalence with
the seed ``if/elif`` orchestrator, which is kept verbatim in
:mod:`repro.core.seed_pipeline` as the reference.

The run *lifecycle* — build the passes, create or adopt a session, wire
its trace/store, run the phases, flush and close — is its own unit:
:class:`SwitchRun`.  :class:`P2GO` is the single-switch convenience
wrapper on top of it; the fleet coordinator
(:mod:`repro.core.fleet`) drives many :class:`SwitchRun`\\ s, one per
switch of a fabric, against one shared persistent store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.observations import (
    Observation,
    ObservationKind,
    ObservationLog,
    Phase,
)
from repro.core.passes import (
    OptimizationPass,
    PassManager,
    PhaseOutcome,
    ReviewHook,
)
from repro.core.phase_dependencies import DependencyRemovalPass
from repro.core.phase_memory import (
    MemoryReductionPass,
    resolve_candidate_policy,
)
from repro.core.phase_offload import DEFAULT_MAX_REDIRECT, OffloadPass
from repro.core.profiler import Profile
from repro.core.session import (
    OptimizationContext,
    SessionCounters,
    resolve_workers,
)
from repro.core.store import SessionStore, resolve_store
from repro.p4.program import Program
from repro.sim.perf import PerfCounters
from repro.sim.runtime import RuntimeConfig
from repro.target.model import DEFAULT_TARGET, TargetModel
from repro.traffic.generators import TracePacket

__all__ = [
    "P2GO",
    "P2GOResult",
    "PhaseOutcome",
    "ReviewHook",
    "SwitchRun",
    "optimize",
]


@dataclass
class P2GOResult:
    """Everything one P2GO run produces."""

    original_program: Program
    optimized_program: Program
    final_config: RuntimeConfig
    observations: ObservationLog
    initial_profile: Profile
    outcomes: List[PhaseOutcome]
    offloaded_tables: Tuple[str, ...] = ()
    #: Fraction of the trace the optimized program redirects to the
    #: controller (summed over every offloaded segment's redirect
    #: table; 0.0 when phase 4 offloaded nothing).  One of the
    #: design-space explorer's Pareto objectives
    #: (:mod:`repro.explore.frontier`).
    controller_load: float = 0.0
    #: Perf counters of the initial profiling replay (packets/s, flow-cache
    #: hit rate, per-table lookups) — the engine cost every later phase
    #: re-pays on each re-profile (per-phase re-pay shows up on each
    #: outcome's ``profiling_perf``).
    profiling_perf: Optional[PerfCounters] = None
    #: Compile/profile invocation counters of the run's session: how many
    #: times the phases asked, how many times the memo cache answered.
    session_counters: Optional[SessionCounters] = None
    #: Worker count the run's session probed candidates with (1 = serial).
    #: Metadata only: the optimization outcome is identical for any value
    #: (``tests/test_parallel.py`` pins that).
    workers: int = 1
    #: Census + counters of the persistent session store, when one was
    #: attached (``store=``/``$P2GO_STORE``); None for memory-only runs.
    #: Metadata only: the optimization outcome is identical with or
    #: without a store (``tests/test_store.py`` pins that).
    store_stats: Optional[dict] = None
    #: Whether the profiling replays ran on the exec-compiled fast path
    #: (:mod:`repro.sim.fastpath`).  Metadata only: fast-path results are
    #: bit-identical to the cached engine's, so the optimization outcome
    #: is the same either way (``tests/test_fastpath.py`` pins that).
    fastpath: bool = False
    #: Why the fast path did not engage (None when ``fastpath`` is True):
    #: "disabled" when the knob/env left it off, otherwise the
    #: specializer's refusal reason for this program.
    fastpath_reason: Optional[str] = None

    @property
    def stages_before(self) -> int:
        return self.outcomes[0].stages

    @property
    def stages_after(self) -> int:
        return self.outcomes[-1].stages

    def stage_history(self) -> List[Tuple[str, int]]:
        return [(o.phase.name.lower(), o.stages) for o in self.outcomes]


class SwitchRun:
    """One switch's optimization lifecycle as a reusable unit.

    This is the run lifecycle that used to be embedded in
    ``P2GO.run()``: build the requested passes, create (or adopt and
    re-wire) an :class:`~repro.core.session.OptimizationContext`, run
    the phases, flush the store, close what it owns.  Extracting it
    breaks the one-run-per-object assumption: a single process — or a
    fleet coordinator's worker pool (:mod:`repro.core.fleet`) — can
    hold many :class:`SwitchRun` units, execute each against its own
    fresh session or a shared one, and point them all at one persistent
    store.

    ``name`` labels the switch in fleet reports (defaults to the
    program name).  ``lease_probes=True`` opts the run's session into
    the store's cross-process probe leases, so concurrent runs in other
    processes never execute the same fingerprinted probe twice (see
    :meth:`~repro.core.store.SessionStore.claim_probe`).  All other
    parameters mean exactly what they mean on :class:`P2GO`.
    """

    def __init__(
        self,
        program: Program,
        config: RuntimeConfig,
        trace: Sequence[TracePacket],
        target: TargetModel = DEFAULT_TARGET,
        name: Optional[str] = None,
        phases: Sequence[int] = (2, 3, 4),
        max_dependency_removals: int = 8,
        max_memory_reductions: int = 1,
        offload_min_stage_savings: int = 1,
        max_redirect_fraction: float = DEFAULT_MAX_REDIRECT,
        review_hook: Optional[ReviewHook] = None,
        memoize: bool = True,
        workers: Optional[int] = None,
        fastpath: Optional[bool] = None,
        lease_probes: bool = False,
        candidate_policy: Optional[str] = None,
    ):
        # Fail on an unknown policy name at construction, not inside a
        # pool worker mid-sweep.
        resolve_candidate_policy(candidate_policy)
        program.validate()
        config.validate(program)
        if fastpath is not None:
            # Don't mutate the caller's config object.
            config = config.clone()
            config.enable_fastpath = fastpath
        self.name = name if name is not None else program.name
        self.program = program
        self.config = config
        self.trace = list(trace)
        self.target = target
        self.phases = tuple(phases)
        self.max_dependency_removals = max_dependency_removals
        self.max_memory_reductions = max_memory_reductions
        self.offload_min_stage_savings = offload_min_stage_savings
        self.max_redirect_fraction = max_redirect_fraction
        self.review_hook = review_hook
        self.memoize = memoize
        self.workers = workers
        self.lease_probes = lease_probes
        self.candidate_policy = candidate_policy

    # ------------------------------------------------------------------
    def build_passes(self) -> List[OptimizationPass]:
        """The requested phase order as configured pass instances."""
        passes: List[OptimizationPass] = []
        for phase_number in self.phases:
            if phase_number == 2:
                passes.append(
                    DependencyRemovalPass(
                        max_rounds=self.max_dependency_removals
                    )
                )
            elif phase_number == 3:
                passes.append(
                    MemoryReductionPass(
                        max_rounds=self.max_memory_reductions,
                        candidate_order=resolve_candidate_policy(
                            self.candidate_policy
                        ),
                    )
                )
            elif phase_number == 4:
                passes.append(
                    OffloadPass(
                        min_stage_savings=self.offload_min_stage_savings,
                        max_redirect_fraction=self.max_redirect_fraction,
                    )
                )
            else:
                raise ValueError(
                    f"unknown optimization phase {phase_number!r}; "
                    "valid phases are 2, 3, 4"
                )
        return passes

    def create_session(
        self, store: Optional[SessionStore] = None
    ) -> OptimizationContext:
        """A fresh session wired to this run's inputs (and ``store``)."""
        return OptimizationContext(
            self.program,
            self.config,
            self.trace,
            self.target,
            memoize=self.memoize,
            workers=self.workers,
            store=store,
            lease_probes=self.lease_probes and store is not None,
        )

    def adopt_session(self, ctx: OptimizationContext) -> None:
        """Re-wire an injected (possibly shared) session to this run.

        The session keeps its memo cache, counters, and store; it
        starts this run from our inputs.  The trace assignment re-keys
        the profile memo and any pending disk hydration: a shared
        session previously replayed other traffic (e.g. before an
        OnlineProfiler drift alert) must not serve profiles recorded on
        it.  Equal-content traces hash to the same key, so this never
        costs a cached run anything.
        """
        ctx.program = self.program
        ctx.config = self.config
        ctx.trace = self.trace
        if self.workers is not None:
            ctx.workers = resolve_workers(self.workers)

    def execute(
        self,
        session: Optional[OptimizationContext] = None,
        store: Optional[SessionStore] = None,
    ) -> P2GOResult:
        """Run the full lifecycle and return the result.

        With no ``session`` the run creates, drives, and closes its own
        (attaching ``store`` when given).  An injected session is
        adopted instead — it stays open afterwards, with this run's
        executed probes flushed so another process can warm-start —
        and ``store`` is ignored in favour of the session's own.  If an
        adopted run raises, the session's (program, config, trace) are
        restored to their pre-adoption state: a failed re-run (e.g. a
        drift-triggered ``reoptimize``) must not leave a shared session
        re-keyed on this run's trace for subsequent callers.
        """
        passes = self.build_passes()
        if session is None:
            ctx = self.create_session(store=store)
            try:
                result = self._run_phases(ctx, passes)
            finally:
                # Flush store write-backs and release worker pools; the
                # result keeps the counters.
                ctx.close()
        else:
            ctx = session
            with ctx.state_guard():
                self.adopt_session(ctx)
                try:
                    result = self._run_phases(ctx, passes)
                finally:
                    # A shared session stays open, but this run's
                    # executed probes persist now so another process
                    # can warm-start.
                    ctx.flush_store()
        if ctx.store is not None:
            result.store_stats = ctx.store.stats()
        return result

    def _run_phases(
        self, ctx: OptimizationContext, passes: List[OptimizationPass]
    ) -> P2GOResult:
        log = ObservationLog()

        # Phase 1: profiling (batched replay through the flow-cache
        # engine; perf counters ride along on the result).
        ctx.start_perf_window()
        initial_profile, profiling_perf = ctx.profile_with_perf()
        log.add(
            Observation(
                phase=Phase.PROFILING,
                kind=ObservationKind.PROFILE,
                title=(
                    f"profiled {initial_profile.total_packets} packets, "
                    f"{len(initial_profile.nonexclusive_sets)} distinct "
                    f"non-exclusive action sets"
                ),
                details=(
                    f"replayed at {profiling_perf.packets_per_second():,.0f} "
                    f"packets/s (flow-cache hit rate "
                    f"{profiling_perf.cache_hit_rate():.1%}); "
                    "per-table hit rates: "
                    + ", ".join(
                        f"{t}={initial_profile.hit_rate(t):.1%}"
                        for t in self.program.tables_in_control_order()
                    )
                ),
            )
        )
        result = ctx.compile()
        outcomes: List[PhaseOutcome] = [
            PhaseOutcome(
                phase=Phase.PROFILING,
                stages=result.stages_used,
                stage_map=result.stage_map(),
                profiling_perf=ctx.take_perf_window(),
            )
        ]

        # Optimization phases, honouring the requested order.  The paper's
        # default runs offloading last so the data plane is optimized
        # first (§2.2 explains why offloading earlier can waste work);
        # the ablation bench deliberately reorders.
        manager = PassManager(ctx, review_hook=self.review_hook, log=log)
        outcomes.extend(manager.run(passes))

        from repro.sim.fastpath import can_specialize, resolve_fastpath

        if resolve_fastpath(self.config.enable_fastpath):
            fastpath_reason = can_specialize(self.program, self.config)
            fastpath_on = fastpath_reason is None
        else:
            fastpath_on, fastpath_reason = False, "disabled"

        return P2GOResult(
            original_program=self.program,
            optimized_program=ctx.program,
            final_config=ctx.config,
            observations=log,
            initial_profile=initial_profile,
            outcomes=outcomes,
            offloaded_tables=tuple(
                manager.info.get("offloaded_tables", ())
            ),
            controller_load=float(
                manager.info.get("controller_load", 0.0)
            ),
            profiling_perf=profiling_perf,
            session_counters=ctx.counters,
            workers=ctx.workers,
            fastpath=fastpath_on,
            fastpath_reason=fastpath_reason,
        )


class P2GO:
    """Profile-guided optimizer for P4 programs.

    Parameters mirror the knobs the paper describes: which phases run, how
    many dependencies to remove, how many resizes to accept, the minimum
    stage savings and controller-load ceiling for offloading, and the
    review hook through which a programmer can veto changes.  The run
    lifecycle itself lives in :class:`SwitchRun`; this class is the
    single-switch wrapper that resolves the ``session``/``store`` knobs
    the way library callers expect.

    ``session`` lets several runs (or a run plus baselines/online
    monitoring) share one compile/profile cache; by default each run gets
    a fresh :class:`~repro.core.session.OptimizationContext`.
    ``memoize=False`` disables the cache (every probe recompiles and
    re-replays — the benchmark's reference mode).  ``workers`` sets how
    many candidates the phases probe concurrently (None defers to the
    ``P2GO_WORKERS`` environment variable, then to 1 — the serial path;
    the result is identical either way).

    ``store`` warm-starts the run from a persistent cross-run cache
    (:class:`~repro.core.store.SessionStore`): pass a store instance or
    a directory path; ``None`` (the default) uses ``$P2GO_STORE`` when
    set and no store otherwise; ``False`` disables the store even when
    the environment variable is set.  A second run over an unchanged
    program + config + trace is served entirely from disk — zero
    compiles, zero replays.  When a ``session`` is injected its own
    store (or lack of one) is respected and ``store`` is ignored.
    ``lease_probes=True`` additionally coordinates probe executions
    with concurrent runs in *other processes* through store-level
    leases (the fleet coordinator's dedup mechanism; it changes who
    pays for a probe, never the result).

    ``fastpath`` opts the profiling replays into the exec-compiled
    whole-pipeline fast path (:mod:`repro.sim.fastpath`): ``True``/
    ``False`` force it, ``None`` (the default) defers to
    ``$P2GO_FASTPATH``.  Fast-path results are bit-identical to the
    cached engine's, so this only changes replay speed; whether it
    engaged (and why not) rides along on ``P2GOResult.fastpath`` /
    ``fastpath_reason``.
    """

    def __init__(
        self,
        program: Program,
        config: RuntimeConfig,
        trace: Sequence[TracePacket],
        target: TargetModel = DEFAULT_TARGET,
        phases: Sequence[int] = (2, 3, 4),
        max_dependency_removals: int = 8,
        max_memory_reductions: int = 1,
        offload_min_stage_savings: int = 1,
        max_redirect_fraction: float = DEFAULT_MAX_REDIRECT,
        review_hook: Optional[ReviewHook] = None,
        session: Optional[OptimizationContext] = None,
        memoize: bool = True,
        workers: Optional[int] = None,
        store=None,
        fastpath: Optional[bool] = None,
        lease_probes: bool = False,
        candidate_policy: Optional[str] = None,
    ):
        self.switch_run = SwitchRun(
            program,
            config,
            trace,
            target,
            phases=phases,
            max_dependency_removals=max_dependency_removals,
            max_memory_reductions=max_memory_reductions,
            offload_min_stage_savings=offload_min_stage_savings,
            max_redirect_fraction=max_redirect_fraction,
            review_hook=review_hook,
            memoize=memoize,
            workers=workers,
            fastpath=fastpath,
            lease_probes=lease_probes,
            candidate_policy=candidate_policy,
        )
        # Mirror the normalized inputs (the fastpath knob may have
        # cloned the config) so callers keep seeing the familiar
        # attributes.
        self.program = self.switch_run.program
        self.config = self.switch_run.config
        self.trace = self.switch_run.trace
        self.target = self.switch_run.target
        self.phases = self.switch_run.phases
        self.max_dependency_removals = max_dependency_removals
        self.max_memory_reductions = max_memory_reductions
        self.offload_min_stage_savings = offload_min_stage_savings
        self.max_redirect_fraction = max_redirect_fraction
        self.review_hook = review_hook
        self.session = session
        self.memoize = memoize
        self.workers = workers
        self.store = store

    # ------------------------------------------------------------------
    def build_passes(self) -> List[OptimizationPass]:
        """The requested phase order as configured pass instances."""
        return self.switch_run.build_passes()

    def run(self) -> P2GOResult:
        if self.session is not None:
            return self.switch_run.execute(session=self.session)
        return self.switch_run.execute(store=resolve_store(self.store))


def optimize(
    program: Program,
    config: RuntimeConfig,
    trace: Sequence[TracePacket],
    target: TargetModel = DEFAULT_TARGET,
    **kwargs,
) -> P2GOResult:
    """One-call convenience wrapper around :class:`P2GO`."""
    return P2GO(program, config, trace, target, **kwargs).run()
