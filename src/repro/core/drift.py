"""Profile drift detection (§6, "dynamic compilation").

P2GO's optimizations hold "for as long as the computed profile remains
representative".  This module implements the first step of the paper's
future-work agenda: given the profile the optimizations were derived from
and a *fresh* trace, re-check every profile-based observation and flag
the ones the new traffic violates — the trigger for re-running P2GO.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import List, Optional, Sequence

from repro.analysis.dependencies import Dependency
from repro.core.phase_dependencies import dependency_manifests
from repro.core.profiler import Profile, Profiler
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.traffic.generators import TracePacket


class DriftKind(enum.Enum):
    #: A removed dependency now manifests in live traffic.
    DEPENDENCY_MANIFESTS = "dependency_manifests"
    #: An offloaded segment redirects more traffic than budgeted.
    CONTROLLER_OVERLOAD = "controller_overload"
    #: A table's hit rate moved beyond tolerance.
    HIT_RATE_SHIFT = "hit_rate_shift"


@dataclass(frozen=True)
class DriftFinding:
    """One violated observation."""

    kind: DriftKind
    subject: str
    details: str


@dataclass
class DriftReport:
    """Outcome of re-checking a profile against fresh traffic."""

    findings: List[DriftFinding] = dc_field(default_factory=list)

    @property
    def drifted(self) -> bool:
        return bool(self.findings)

    def render(self) -> str:
        if not self.findings:
            return "no drift: every optimization-time observation holds"
        lines = [f"{len(self.findings)} observation(s) violated:"]
        for f in self.findings:
            lines.append(f"  [{f.kind.value}] {f.subject}: {f.details}")
        return "\n".join(lines)


class DriftDetector:
    """Re-validates optimization-time observations on fresh traffic.

    Construct it with the *original* program and config (profiling runs
    against the unoptimized semantics, which define correctness), the
    baseline profile, and the evidence to watch: removed dependencies and
    the offloaded redirect budget.
    """

    def __init__(
        self,
        program: Program,
        config: RuntimeConfig,
        baseline: Profile,
        removed_dependencies: Sequence[Dependency] = (),
        offload_tables: Sequence[str] = (),
        offload_budget: Optional[float] = None,
        hit_rate_tolerance: float = 0.05,
    ):
        self.program = program
        self.config = config
        self.baseline = baseline
        self.removed_dependencies = tuple(removed_dependencies)
        self.offload_tables = tuple(offload_tables)
        self.offload_budget = offload_budget
        self.hit_rate_tolerance = hit_rate_tolerance

    def check(self, fresh_trace: Sequence[TracePacket]) -> DriftReport:
        fresh = Profiler(self.program, self.config).profile(fresh_trace)
        report = DriftReport()

        for dep in self.removed_dependencies:
            if dependency_manifests(dep, fresh):
                report.findings.append(
                    DriftFinding(
                        kind=DriftKind.DEPENDENCY_MANIFESTS,
                        subject=f"{dep.src} -> {dep.dst}",
                        details=(
                            "the fresh trace contains packets exercising "
                            "both tables' conflicting actions; the phase-2 "
                            "rewrite now changes behaviour for them"
                        ),
                    )
                )

        if self.offload_tables and self.offload_budget is not None:
            # Redirected traffic = packets that traverse any offloaded
            # table in the original semantics — the union over packets.
            # A per-table max undercounts when offloaded tables are
            # reached by disjoint packet sets (two tables each seeing
            # 30% disjoint traffic redirect 60%, not 30%).
            redirect = fresh.traversal_rate(self.offload_tables)
            if redirect > self.offload_budget:
                report.findings.append(
                    DriftFinding(
                        kind=DriftKind.CONTROLLER_OVERLOAD,
                        subject=", ".join(self.offload_tables),
                        details=(
                            f"fresh traffic reaches the offloaded segment "
                            f"at {redirect:.1%}, above the "
                            f"{self.offload_budget:.1%} budget"
                        ),
                    )
                )

        for table in self.program.tables:
            old = self.baseline.hit_rate(table)
            new = fresh.hit_rate(table)
            if abs(new - old) > self.hit_rate_tolerance:
                report.findings.append(
                    DriftFinding(
                        kind=DriftKind.HIT_RATE_SHIFT,
                        subject=table,
                        details=f"hit rate {old:.1%} -> {new:.1%}",
                    )
                )
        return report
