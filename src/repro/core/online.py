"""Online profiling (§6, "dynamic compilation").

The paper's future-work direction: "online profiling in which we would
instrument the program with monitoring instructions that update the
profile at runtime ... enables real-time adaptation of programs".

This module implements the monitoring half: an :class:`OnlineProfiler`
runs the *instrumented* program (the same §3.1 instrumentation the
offline profiler uses — the "monitoring instructions") and maintains
streaming statistics over a sliding window.  Against a baseline profile
it raises alerts the moment live traffic invalidates an optimization-time
observation:

* a **new non-exclusive action combination** appears (e.g. the two ACL
  drops fire on one packet — a removed dependency just manifested),
* a table's **windowed hit rate drifts** beyond tolerance.

Reacting is the caller's decision, mirroring the paper's cost trade-off
discussion — but once taken, :meth:`OnlineProfiler.reoptimize` re-runs
P2GO on a trace of the drifted traffic *warm*: through the shared
optimization session (and its persistent
:class:`~repro.core.store.SessionStore`, when attached), every candidate
whose content is unchanged is answered from cache instead of being
recompiled or replayed.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.instrument import instrument
from repro.core.profiler import Profile

if TYPE_CHECKING:  # pragma: no cover — typing-only import, no cycle
    from repro.core.session import OptimizationContext
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.sim.switch import BehavioralSwitch, SwitchResult

ActionPair = Tuple[str, str]


class AlertKind(enum.Enum):
    NEW_ACTION_COMBINATION = "new_action_combination"
    HIT_RATE_DRIFT = "hit_rate_drift"


@dataclass(frozen=True)
class OnlineAlert:
    kind: AlertKind
    subject: str
    details: str
    packet_index: int


AlertCallback = Callable[[OnlineAlert], None]


class OnlineProfiler:
    """Live per-packet profiling with sliding-window drift alerts."""

    def __init__(
        self,
        program: Program,
        config: RuntimeConfig,
        baseline: Optional[Profile] = None,
        window: int = 1000,
        hit_rate_tolerance: float = 0.10,
        alert_callback: Optional[AlertCallback] = None,
        session: Optional["OptimizationContext"] = None,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        if baseline is None and session is not None:
            # Share the optimization run's compile/profile session: the
            # baseline is the (memoized) profile of this program/config
            # on the session's trace — free when P2GO already computed
            # it, replayed once and cached otherwise.
            baseline = session.profile(program, config)
        self._instrumented = instrument(program)
        self._switch = BehavioralSwitch(
            self._instrumented.program,
            self._instrumented.adapt_config(config),
        )
        self.program = program
        self.config = config
        #: The shared optimization session, when one was provided —
        #: :meth:`reoptimize` re-runs P2GO through it so every candidate
        #: the original run probed (and everything a persistent store
        #: holds) is reused.
        self.session = session
        self.baseline = baseline
        self.window = window
        self.hit_rate_tolerance = hit_rate_tolerance
        self.alert_callback = alert_callback

        self._packets_seen = 0
        self._window_hits: Deque[FrozenSet[str]] = deque(maxlen=window)
        self._hit_counts: Dict[str, int] = {}
        self._seen_combinations: Set[FrozenSet[ActionPair]] = set(
            baseline.nonexclusive_sets
        ) if baseline is not None else set()
        self._drifting: Set[str] = set()
        self.alerts: List[OnlineAlert] = []

    # ------------------------------------------------------------------
    def _emit(self, alert: OnlineAlert) -> None:
        self.alerts.append(alert)
        if self.alert_callback is not None:
            self.alert_callback(alert)

    def process(self, data: bytes, ingress_port: int = 0) -> SwitchResult:
        """Forward one packet and update the live profile."""
        result = self._switch.process(data, ingress_port)
        index = self._packets_seen
        self._packets_seen += 1

        pairs = frozenset(
            self._instrumented.decode_result_bits(result.headers)
        )
        hit_tables = frozenset(
            step.table for step in result.steps if step.hit
        )

        # Maintain the sliding window of hit sets.
        if len(self._window_hits) == self.window:
            evicted = self._window_hits[0]
            for table in evicted:
                self._hit_counts[table] -= 1
        self._window_hits.append(hit_tables)
        for table in hit_tables:
            self._hit_counts[table] = self._hit_counts.get(table, 0) + 1

        # Alert on never-before-seen action combinations.  Combinations
        # are marked seen only when the alert condition is actually
        # evaluated on real multi-table hits: a combination first seen on
        # a packet where only one table hit must not permanently suppress
        # a later genuine multi-hit sighting of the same pairs.
        if self.baseline is not None and len(pairs) > 1:
            hits_only = {p for p in pairs if p[0] in hit_tables}
            if len({p[0] for p in hits_only}) > 1:
                if pairs not in self._seen_combinations:
                    self._seen_combinations.add(pairs)
                    self._emit(
                        OnlineAlert(
                            kind=AlertKind.NEW_ACTION_COMBINATION,
                            subject=", ".join(
                                sorted(f"{t}.{a}" for t, a in hits_only)
                            ),
                            details=(
                                "action combination never observed during "
                                "offline profiling"
                            ),
                            packet_index=index,
                        )
                    )

        # Windowed hit-rate drift, once the window is full.
        if (
            self.baseline is not None
            and len(self._window_hits) == self.window
        ):
            for table in self.program.tables:
                live = self.window_hit_rate(table)
                base = self.baseline.hit_rate(table)
                if abs(live - base) > self.hit_rate_tolerance:
                    if table not in self._drifting:
                        self._drifting.add(table)
                        self._emit(
                            OnlineAlert(
                                kind=AlertKind.HIT_RATE_DRIFT,
                                subject=table,
                                details=(
                                    f"windowed hit rate {live:.1%} vs "
                                    f"baseline {base:.1%}"
                                ),
                                packet_index=index,
                            )
                        )
                else:
                    self._drifting.discard(table)
        return result

    # ------------------------------------------------------------------
    def reoptimize(self, trace, *, store=None, target=None, **p2go_kwargs):
        """Re-run P2GO on drifted traffic (§6's dynamic-compilation
        loop: a drift alert means the optimization-time profile no
        longer matches reality, so the program is re-optimized against
        a trace of the *new* traffic).

        With a shared ``session`` (the recommended setup: pass the
        optimization run's session to this profiler), the re-run starts
        warm — assigning the new trace re-keys the profile memo and any
        pending disk hydration, so every candidate whose behaviour is
        unchanged under the new traffic is served from the session memo
        or the persistent store instead of being recompiled/replayed.
        Without one, a fresh session is created; ``store`` (path,
        :class:`~repro.core.store.SessionStore`, or None for
        ``$P2GO_STORE``) lets that cold session still warm-start from
        disk.  Returns the new :class:`~repro.core.pipeline.P2GOResult`.
        """
        from repro.core.pipeline import P2GO
        from repro.target.model import DEFAULT_TARGET

        trace = list(trace)
        if self.session is not None:
            # Re-keys the profile memo + disk hydration on the drifted
            # traffic before any probe runs.  The guard restores the
            # prior trace if the re-run raises: a shared session must
            # not stay keyed on the drifted traffic for subsequent
            # callers when no re-optimization actually landed.
            with self.session.state_guard():
                self.session.trace = trace
                return P2GO(
                    self.program,
                    self.config,
                    trace,
                    self.session.target,
                    session=self.session,
                    **p2go_kwargs,
                ).run()
        return P2GO(
            self.program,
            self.config,
            trace,
            target if target is not None else DEFAULT_TARGET,
            store=store,
            **p2go_kwargs,
        ).run()

    # ------------------------------------------------------------------
    def window_hit_rate(self, table: str) -> float:
        if not self._window_hits:
            return 0.0
        return self._hit_counts.get(table, 0) / len(self._window_hits)

    @property
    def packets_seen(self) -> int:
        return self._packets_seen

    def snapshot(self) -> Dict[str, float]:
        """Current windowed hit rates for every table."""
        return {
            table: self.window_hit_rate(table)
            for table in self.program.tables
        }
