"""The pass framework: Fig. 2's loop as first-class passes.

The paper's optimization loop — profile, remove dependencies, reduce
memory, offload — was a hard-coded ``if/elif`` chain in ``P2GO.run()``
with one accept/observe/recompile block copied per phase.  Here each
phase is an :class:`OptimizationPass`: a named object that inspects the
shared :class:`~repro.core.session.OptimizationContext`, may *propose* a
single candidate change on it, and reports what it saw as observations.
The :class:`PassManager` owns the loop that used to be triplicated:

1. run the pass (it proposes at most one change per round);
2. log its observations, routing ``OPTIMIZATION`` ones through the
   review hook;
3. commit the proposal when accepted, roll it back when the programmer
   vetoes it (a real state rollback on the session, §2.2's "selectively
   accept or reject");
4. repeat up to the pass's ``max_rounds``, then record the phase's
   :class:`PhaseOutcome` — stage count, stage map, and the profiling
   perf the phase's own replays cost (memo hits cost nothing and show up
   as ``None``).

Phase ordering stays a plain sequence of passes, so the paper's default
(2, 3, 4) and the ablation reorderings are just different lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core.observations import (
    Observation,
    ObservationKind,
    ObservationLog,
    Phase,
)
from repro.core.session import OptimizationContext
from repro.sim.perf import PerfCounters

#: Review hook: receives each optimization observation, returns True to
#: accept.  The default accepts everything (batch mode).
ReviewHook = Callable[[Observation], bool]


@dataclass
class PhaseOutcome:
    """Stage count after a phase (Table 2's rows), plus what the phase's
    own profiling replays cost."""

    phase: Phase
    stages: int
    stage_map: List[List[str]]
    #: Merged perf counters of the trace replays this phase triggered,
    #: merged in submission order (parallel batches included).  None
    #: when the phase ran no new replay — every profile it asked for was
    #: a session memo hit.  Replays outside the phase's perf window
    #: (pipeline setup, online monitoring) are never attributed here.
    profiling_perf: Optional[PerfCounters] = None


@dataclass
class PassResult:
    """What one round of a pass did.

    A pass that found an optimization proposes it on the session (via
    :meth:`OptimizationContext.propose`) *before* returning, and sets
    ``changed=True`` — the manager then commits or rolls the proposal
    back depending on the review.  ``info`` carries pass-specific
    extras (e.g. the offloaded table set).
    """

    changed: bool
    observations: List[Observation] = dc_field(default_factory=list)
    info: Dict[str, Any] = dc_field(default_factory=dict)


@runtime_checkable
class OptimizationPass(Protocol):
    """One of Fig. 2's optimization phases, behind a uniform interface."""

    #: Stable identifier (CLI/report labels).
    name: str
    #: The paper phase this pass implements.
    phase: Phase
    #: Upper bound on rounds the manager runs this pass per occurrence.
    max_rounds: int

    def run(self, ctx: OptimizationContext) -> PassResult:
        """Inspect ``ctx``, propose at most one change, report it."""
        ...


class PassManager:
    """Runs a sequence of passes over one optimization session.

    Passes may evaluate independent candidates through the session's
    batch probes (``compile_many`` / ``profile_many`` / ``probe_many``);
    the manager's own accept/commit/rollback loop stays strictly serial
    — the session refuses to batch while a proposal is open, so a pass
    must finish probing before it proposes.
    """

    def __init__(
        self,
        ctx: OptimizationContext,
        review_hook: Optional[ReviewHook] = None,
        log: Optional[ObservationLog] = None,
    ):
        self.ctx = ctx
        self.review_hook = review_hook
        self.log = log if log is not None else ObservationLog()
        #: Merged ``info`` of every pass round (later rounds win ties).
        self.info: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _accepted(self, obs: Observation) -> bool:
        """Log one observation; route optimizations through the review
        hook, recording a rejection observation on veto."""
        self.log.add(obs)
        if (
            obs.kind is ObservationKind.OPTIMIZATION
            and self.review_hook is not None
        ):
            accepted = self.review_hook(obs)
            if not accepted:
                self.log.add(
                    Observation(
                        phase=obs.phase,
                        kind=ObservationKind.REJECTED,
                        title=f"programmer rejected: {obs.title}",
                        details="change rolled back at review",
                    )
                )
            return accepted
        return True

    def run_pass(self, pass_: OptimizationPass) -> PhaseOutcome:
        """Run one pass to quiescence (its ``max_rounds`` bound) and
        record its outcome."""
        self.ctx.start_perf_window()
        for _round in range(max(1, pass_.max_rounds)):
            step = pass_.run(self.ctx)
            applied = False
            for obs in step.observations:
                if obs.kind is ObservationKind.OPTIMIZATION:
                    if self._accepted(obs):
                        applied = True
                else:
                    self.log.add(obs)
            if not step.changed:
                if self.ctx.in_transaction:  # defensive: nothing proposed
                    self.ctx.rollback()
                break
            if not applied:
                self.ctx.rollback()
                break
            self.ctx.commit()
            self.info.update(step.info)
        result = self.ctx.compile()
        return PhaseOutcome(
            phase=pass_.phase,
            stages=result.stages_used,
            stage_map=result.stage_map(),
            profiling_perf=self.ctx.take_perf_window(),
        )

    def run(self, passes: Sequence[OptimizationPass]) -> List[PhaseOutcome]:
        """The Fig. 2 loop: run every pass in order."""
        return [self.run_pass(pass_) for pass_ in passes]
