"""Persistent cross-run session store (ROADMAP: "cross-run profile
persistence").

The memoizing session (:mod:`repro.core.session`) dies with the process,
so every ``p2go optimize`` run starts cold — it recompiles and replays
probes that an earlier run over the same program family already paid
for.  :class:`SessionStore` is the disk tier behind that memo cache:
keys are the session's already-content-addressed fingerprints
(``(program_fingerprint, target)`` for compiles,
``(program_fingerprint, config_fingerprint, trace_fingerprint)`` for
profiles), values are pickled :class:`~repro.target.compiler.CompileResult`
objects and ``(Profile, PerfCounters)`` pairs.  A second run over an
unchanged program + trace is served entirely from disk: zero compiles,
zero replays (``benchmarks/bench_store.py`` gates that in CI).

Durability and safety contract (DESIGN.md §10):

* **Versioned layout.**  Entries live under ``<root>/v<SCHEMA_VERSION>/
  {compile,profile}/<sha1-of-key>.pkl``; ``<root>`` defaults to
  ``$P2GO_STORE`` and then ``~/.cache/p2go``.  A ``manifest.json``
  carries the schema version and a **code fingerprint** (a hash over
  the source of every module whose classes end up inside an entry
  pickle).  A manifest that is missing-but-entries-exist, unreadable,
  or mismatched means the on-disk format can no longer be trusted: the
  existing entries are sidelined into ``quarantine/`` and the store
  starts cold — never an exception, never a wrong result.
* **Atomic writes.**  Every entry is written to a uniquely-named
  (``O_EXCL``) temp file in the same directory and ``os.replace``\\d
  into place, so readers — including concurrent ones in other
  processes — only ever see complete entries.
* **Corruption tolerance.**  A truncated, garbage, or wrong-key entry
  file is quarantined on load and counted; the caller sees a plain
  miss.
* **Multi-process safety without locks.**  One file per entry plus
  atomic rename means concurrent writers at worst both pay for the
  same probe and the last rename wins — both files hold the identical
  content-addressed value.  There is no global lock and no shared
  mutable index.
* **LRU size cap.**  Loads refresh an entry's mtime; when the store
  exceeds ``max_bytes`` after a write, the least-recently-used entries
  are evicted (oldest mtime first, name as the deterministic
  tie-break).
* **Probe leases.**  ``probe_many`` already dedupes equal-fingerprint
  probes *in-process*; the lease protocol extends that across
  processes (the fleet coordinator's whole point).  A process about to
  execute a probe first tries :meth:`SessionStore.claim_probe`: an
  ``O_EXCL``-created ``<entry>.lease`` claim file beside the entry.
  Losing the claim means another process is already executing that
  exact fingerprinted probe — :meth:`SessionStore.wait_for_probe`
  polls until the entry lands (a cross-process disk hit) or the lease
  goes stale.  Leases carry a TTL (``lease_ttl``): a holder that died
  mid-execution is reaped by the next claimant instead of wedging the
  fleet, and a wait never outlives the TTL — at worst two processes
  re-pay one probe, they never produce different content.  Lease
  telemetry (claims, waits, wait hits, reaps) rides on
  :class:`StoreCounters`.  Lease files are invisible to the census,
  the LRU sweep, and ``clear()``.

The session hydrates from the store on memo miss and flushes executed
probes back on ``commit()`` / ``close()`` (serial path) and in the
``probe_many`` merge wave (parallel path) — see
:class:`~repro.core.session.OptimizationContext`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover — typing-only imports, no cycle
    from repro.core.profiler import Profile
    from repro.sim.perf import PerfCounters
    from repro.target.compiler import CompileResult

__all__ = [
    "SCHEMA_VERSION",
    "ProbeLease",
    "SessionStore",
    "StoreCounters",
    "code_fingerprint",
    "default_store_root",
    "human_bytes",
    "resolve_store",
]

#: Bump when the entry layout or payload framing changes; old schema
#: directories (``v<N>/``) are simply never read by a newer store.
SCHEMA_VERSION = 1

#: Environment variable naming the store root (consulted by
#: :func:`default_store_root` / :func:`resolve_store`).
STORE_ENV = "P2GO_STORE"

#: Default size cap before LRU eviction kicks in.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Default age after which another process's lease is considered dead
#: and may be reaped.  Must comfortably exceed one probe's execution
#: time (a compile or a trace replay — seconds), so an expiry almost
#: always means the holder crashed, not that it is slow.
DEFAULT_LEASE_TTL = 120.0

#: Suffixes of files in the entry directories that are not entries.
_NON_ENTRY_SUFFIXES = (".tmp", ".lease")


def human_bytes(count: int) -> str:
    """``1234567`` → ``"1.2 MiB"`` (exact bytes below 1 KiB)."""
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024
    raise AssertionError("unreachable")  # pragma: no cover

#: Modules whose pickled classes appear inside store entries.  Their
#: source bytes feed the manifest's code fingerprint: touching any of
#: them invalidates (quarantines) existing stores instead of risking an
#: unpickle of a stale layout into current code.
_FINGERPRINTED_MODULES = (
    "repro.core.profiler",
    "repro.sim.perf",
    "repro.sim.runtime",
    "repro.target.compiler",
    "repro.target.allocation",
    "repro.target.model",
    "repro.analysis.dependencies",
    "repro.analysis.control_graph",
    "repro.p4.program",
)

_code_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-1 over the source of every module whose instances are
    pickled into store entries (computed once per process)."""
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        import importlib

        digest = hashlib.sha1()
        for name in _FINGERPRINTED_MODULES:
            module = importlib.import_module(name)
            digest.update(Path(module.__file__).read_bytes())
        _code_fingerprint_cache = digest.hexdigest()
    return _code_fingerprint_cache


def default_store_root() -> Path:
    """``$P2GO_STORE`` when set and non-empty, else ``~/.cache/p2go``."""
    raw = os.environ.get(STORE_ENV, "").strip()
    if raw:
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "p2go"


def resolve_store(
    store: Union["SessionStore", str, Path, bool, None],
) -> Optional["SessionStore"]:
    """The store a pipeline run should use.

    * a :class:`SessionStore` — used as-is;
    * a path — a store rooted there;
    * ``False`` — no store, even when ``$P2GO_STORE`` is set;
    * ``None`` — a store rooted at ``$P2GO_STORE`` when that is set and
      non-empty, otherwise no store (the library never writes to the
      user cache dir unless explicitly asked).
    """
    if store is False or store is None and not os.environ.get(
        STORE_ENV, ""
    ).strip():
        return None
    if isinstance(store, SessionStore):
        return store
    if store is None or store is True:
        return SessionStore(default_store_root())
    return SessionStore(store)


@dataclass
class StoreCounters:
    """What this process asked of the store and what happened on disk."""

    #: Loads answered from disk, per kind.
    compile_hits: int = 0
    profile_hits: int = 0
    #: Loads that found no (usable) entry.
    misses: int = 0
    #: Entries written (after executions).
    writes: int = 0
    #: Entries evicted by the LRU size cap.
    evictions: int = 0
    #: Corrupt/foreign entry files sidelined into ``quarantine/``.
    quarantined: int = 0
    #: Whole-store invalidations (schema or code-fingerprint mismatch,
    #: unreadable manifest) — each one is a forced cold start.
    resets: int = 0
    #: I/O or pickling failures that were swallowed (the store degrades
    #: to a miss / dropped write, never an exception).
    errors: int = 0
    #: Probe leases this process won (it executed those probes).
    lease_claims: int = 0
    #: Leases released after the entry was written.
    lease_releases: int = 0
    #: Times this process lost a claim and waited on another process's
    #: in-flight probe (cross-process contention).
    lease_waits: int = 0
    #: Waits that ended with the other process's entry served (the
    #: cross-process analogue of an in-flight dedup hit).
    lease_wait_hits: int = 0
    #: Stale leases (holder dead past the TTL) broken by this process.
    leases_reaped: int = 0

    @property
    def hits(self) -> int:
        return self.compile_hits + self.profile_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "compile_hits": self.compile_hits,
            "profile_hits": self.profile_hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "resets": self.resets,
            "errors": self.errors,
            "lease_claims": self.lease_claims,
            "lease_releases": self.lease_releases,
            "lease_waits": self.lease_waits,
            "lease_wait_hits": self.lease_wait_hits,
            "leases_reaped": self.leases_reaped,
        }


@dataclass
class ProbeLease:
    """An exclusive cross-process claim on one in-flight probe.

    Won via :meth:`SessionStore.claim_probe`; the holder executes the
    probe, writes the entry, then calls :meth:`release` so waiters in
    other processes see the entry instead of re-executing.  A lease
    whose holder dies is reaped by the next claimant once it is older
    than the store's ``lease_ttl``.
    """

    store: "SessionStore"
    kind: str
    key: Tuple
    path: Path
    released: bool = False

    def release(self) -> None:
        if self.released:
            return
        self.released = True
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self.store.counters.lease_releases += 1


class SessionStore:
    """Disk tier behind the session's compile/profile memo cache.

    ``root`` is the *unversioned* base directory (default:
    :func:`default_store_root`); entries live under its
    ``v<SCHEMA_VERSION>/`` subdirectory so schema bumps never read old
    layouts.  ``max_bytes`` caps the summed size of entry files; the
    least-recently-used entries are evicted past it.
    ``code_fp`` overrides the manifest code fingerprint (tests use this
    to simulate a store written by different code).  ``lease_ttl`` is
    the age past which another process's probe lease counts as dead
    (and the longest a :meth:`wait_for_probe` can block).

    Every public method is exception-safe: I/O and pickling failures
    degrade to a miss (loads) or a dropped write (stores) and are
    counted on :attr:`counters`, so a broken disk can cost performance
    but never a crash or a wrong result.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        code_fp: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        self.root = Path(root).expanduser() if root else default_store_root()
        self.base = self.root / f"v{SCHEMA_VERSION}"
        self.max_bytes = max_bytes
        self.lease_ttl = lease_ttl
        self.counters = StoreCounters()
        self._code_fp = code_fp
        self._seq = 0
        self._ready = False

    # ------------------------------------------------------------------
    # Layout / manifest

    @property
    def code_fp(self) -> str:
        if self._code_fp is None:
            self._code_fp = code_fingerprint()
        return self._code_fp

    def _dir(self, kind: str) -> Path:
        return self.base / kind

    def _manifest_path(self) -> Path:
        return self.base / "manifest.json"

    def _ensure_ready(self) -> bool:
        """Create the layout and reconcile the manifest (idempotent).

        Returns False when even the directory cannot be created — the
        store is then inert for this process.
        """
        if self._ready:
            return True
        try:
            for kind in ("compile", "profile", "quarantine"):
                self._dir(kind).mkdir(parents=True, exist_ok=True)
            expected = {"schema": SCHEMA_VERSION, "code": self.code_fp}
            manifest = self._read_manifest()
            if manifest is None:
                # Fresh directory — or one whose manifest was lost while
                # entries survived, which is just as untrustworthy.
                if self._has_entries():
                    self._invalidate()
                self._write_manifest(expected)
            elif manifest != expected:
                self._invalidate()
                self._write_manifest(expected)
            self._ready = True
            return True
        except OSError:
            self.counters.errors += 1
            return False

    def _read_manifest(self) -> Optional[Dict]:
        path = self._manifest_path()
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            manifest = json.loads(raw)
            return {
                "schema": manifest["schema"],
                "code": manifest["code"],
            }
        except (ValueError, KeyError, TypeError):
            # Unreadable/garbage manifest: report it as a mismatch (the
            # caller quarantines and rewrites) by returning a value that
            # can never equal the expected manifest.
            return {"schema": None, "code": None}

    def _write_manifest(self, manifest: Dict) -> None:
        self._atomic_write(
            self._manifest_path(),
            (json.dumps(manifest, sort_keys=True) + "\n").encode(),
        )

    @staticmethod
    def _is_entry_name(name: str) -> bool:
        return not name.endswith(_NON_ENTRY_SUFFIXES)

    def _has_entries(self) -> bool:
        for kind in ("compile", "profile"):
            try:
                for path in self._dir(kind).iterdir():
                    if self._is_entry_name(path.name):
                        return True
            except OSError:
                continue
        return False

    def _invalidate(self) -> None:
        """Sideline every existing entry: the on-disk format does not
        match this code.  Cold start, never an exception."""
        self.counters.resets += 1
        for kind in ("compile", "profile"):
            directory = self._dir(kind)
            try:
                names = sorted(p.name for p in directory.iterdir())
            except OSError:
                continue
            for name in names:
                if not self._is_entry_name(name):
                    # Stale temp/lease files from the old format are
                    # not worth preserving — just drop them.
                    try:
                        os.unlink(directory / name)
                    except OSError:
                        pass
                    continue
                self._quarantine(directory / name, count=False)

    # ------------------------------------------------------------------
    # Entry files

    @staticmethod
    def _entry_name(kind: str, key: Tuple) -> str:
        return hashlib.sha1(repr((kind, key)).encode()).hexdigest() + ".pkl"

    def _entry_path(self, kind: str, key: Tuple) -> Path:
        return self._dir(kind) / self._entry_name(kind, key)

    def _atomic_write(self, path: Path, data: bytes) -> None:
        """Write-to-temp + rename; the temp name is unique per process
        (pid + sequence) and opened ``O_EXCL`` so two processes never
        share a temp file."""
        self._seq += 1
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{self._seq}.tmp")
        fd = os.open(
            tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL | os.O_TRUNC, 0o644
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, path)

    def _quarantine(self, path: Path, count: bool = True) -> None:
        """Move a suspect file out of the entry namespace (best effort:
        a racing process may already have moved or replaced it)."""
        target = self._dir("quarantine") / (
            f"{path.name}.{os.getpid()}.{self._seq}"
        )
        self._seq += 1
        try:
            os.replace(path, target)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        if count:
            self.counters.quarantined += 1

    def _load(self, kind: str, key: Tuple):
        if not self._ensure_ready():
            return None
        path = self._entry_path(kind, key)
        try:
            data = path.read_bytes()
        except OSError:
            self.counters.misses += 1
            return None
        try:
            payload = pickle.loads(data)
            stored_key = payload["key"]
            value = payload["value"]
        except Exception:
            # Truncated write, garbage bytes, a pickle of foreign code —
            # all degrade to a miss; the file is sidelined so the cost
            # is paid once.
            self._quarantine(path)
            self.counters.misses += 1
            return None
        if stored_key != key:
            # SHA-1 collision or a corrupted-but-unpicklable-detectably
            # entry: treat exactly like corruption.
            self._quarantine(path)
            self.counters.misses += 1
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return value

    def _store(self, kind: str, key: Tuple, value) -> None:
        if not self._ensure_ready():
            return
        try:
            data = pickle.dumps(
                {"key": key, "value": value},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._atomic_write(self._entry_path(kind, key), data)
        except Exception:
            self.counters.errors += 1
            return
        self.counters.writes += 1
        self._evict_over_cap()

    # ------------------------------------------------------------------
    # Probe leases (cross-process in-flight dedup)

    def _lease_path(self, kind: str, key: Tuple) -> Path:
        return self._dir(kind) / (self._entry_name(kind, key) + ".lease")

    def _lease_age(self, path: Path) -> Optional[float]:
        """Seconds since the lease was taken, or None when it is gone."""
        try:
            return max(0.0, time.time() - path.stat().st_mtime)
        except OSError:
            return None

    def claim_probe(self, kind: str, key: Tuple) -> Optional[ProbeLease]:
        """Try to claim exclusive execution of one probe.

        Returns a :class:`ProbeLease` when this process won (it should
        execute the probe, write the entry, then ``release()``), or
        None when another process holds a fresh lease on the same
        fingerprint — the caller should :meth:`wait_for_probe` instead
        of executing.  A lease older than ``lease_ttl`` is reaped (its
        holder is presumed dead) and re-claimed.
        """
        if not self._ensure_ready():
            return None
        path = self._lease_path(kind, key)
        for _attempt in (0, 1):
            try:
                fd = os.open(
                    path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                age = self._lease_age(path)
                if age is not None and age <= self.lease_ttl:
                    return None
                if age is not None:
                    # Holder dead past the TTL: break the lease and
                    # retry the O_EXCL create (one racer wins it).
                    try:
                        os.unlink(path)
                        self.counters.leases_reaped += 1
                    except OSError:
                        pass
                continue
            except OSError:
                self.counters.errors += 1
                return None
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(json.dumps({"pid": os.getpid()}))
            except OSError:
                self.counters.errors += 1
            self.counters.lease_claims += 1
            return ProbeLease(self, kind, key, path)
        return None

    def wait_for_probe(
        self,
        kind: str,
        key: Tuple,
        deadline: Optional[float] = None,
        poll: float = 0.02,
    ):
        """Wait for another process's in-flight probe to land.

        Polls while the lease stays fresh.  Returns the loaded entry
        value (a cross-process dedup hit), or None when the lease
        vanished or went stale without producing an entry — the caller
        should retry :meth:`claim_probe` — or when ``deadline``
        (``time.monotonic()`` based; defaults to ``lease_ttl`` from
        now) passes, in which case the caller should just execute:
        duplicated work is always preferable to a wedged run.
        """
        if deadline is None:
            deadline = time.monotonic() + self.lease_ttl
        load = self.load_compile if kind == "compile" else self.load_profile
        entry = self._entry_path(kind, key)
        lease = self._lease_path(kind, key)
        self.counters.lease_waits += 1
        while True:
            if entry.exists():
                value = load(key)
                if value is not None:
                    self.counters.lease_wait_hits += 1
                    return value
                # The entry was corrupt (now quarantined) — fall
                # through to the lease check.
            age = self._lease_age(lease)
            if age is None:
                # Lease released: one final look for the entry.
                if entry.exists():
                    value = load(key)
                    if value is not None:
                        self.counters.lease_wait_hits += 1
                        return value
                return None
            if age > self.lease_ttl or time.monotonic() >= deadline:
                return None
            time.sleep(poll)

    # ------------------------------------------------------------------
    # Public API

    def load_compile(self, key: Tuple) -> Optional["CompileResult"]:
        """The stored compile result for ``key``, or None (miss)."""
        value = self._load("compile", key)
        if value is not None:
            self.counters.compile_hits += 1
        return value

    def store_compile(self, key: Tuple, result: "CompileResult") -> None:
        self._store("compile", key, result)

    def load_profile(
        self, key: Tuple
    ) -> Optional[Tuple["Profile", "PerfCounters"]]:
        """The stored ``(profile, perf)`` pair for ``key``, or None."""
        value = self._load("profile", key)
        if value is not None:
            self.counters.profile_hits += 1
        return value

    def store_profile(
        self, key: Tuple, profile: "Profile", perf: "PerfCounters"
    ) -> None:
        self._store("profile", key, (profile, perf))

    # ------------------------------------------------------------------
    # Eviction / maintenance

    def _entry_files(self) -> List[Tuple[float, str, int, Path]]:
        """(mtime, name, size, path) for every entry file, oldest first
        (name is the deterministic tie-break for equal mtimes)."""
        records = []
        for kind in ("compile", "profile"):
            directory = self._dir(kind)
            try:
                names = list(directory.iterdir())
            except OSError:
                continue
            for path in names:
                if not self._is_entry_name(path.name):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                records.append(
                    (stat.st_mtime, path.name, stat.st_size, path)
                )
        records.sort(key=lambda record: (record[0], record[1]))
        return records

    def _evict_over_cap(self) -> int:
        """Drop least-recently-used entries until under ``max_bytes``."""
        records = self._entry_files()
        total = sum(size for _mtime, _name, size, _path in records)
        evicted = 0
        for _mtime, _name, size, path in records:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        self.counters.evictions += evicted
        return evicted

    def clear(self) -> int:
        """Delete every entry (and quarantined file); returns how many
        entry files were removed.  The manifest survives."""
        if not self._ensure_ready():
            return 0
        removed = 0
        for kind in ("compile", "profile", "quarantine"):
            directory = self._dir(kind)
            try:
                paths = list(directory.iterdir())
            except OSError:
                continue
            for path in paths:
                try:
                    os.unlink(path)
                except OSError:
                    continue
                if kind != "quarantine" and self._is_entry_name(path.name):
                    removed += 1
        return removed

    def stats(self) -> Dict:
        """Census + this process's counters, JSON-ready."""
        entries = {"compile": 0, "profile": 0}
        entry_bytes = {"compile": 0, "profile": 0}
        if self._ensure_ready():
            for kind in entries:
                directory = self._dir(kind)
                try:
                    paths = list(directory.iterdir())
                except OSError:
                    continue
                for path in paths:
                    if not self._is_entry_name(path.name):
                        continue
                    try:
                        entry_bytes[kind] += path.stat().st_size
                    except OSError:
                        continue
                    entries[kind] += 1
            try:
                quarantine = sum(
                    1 for _ in self._dir("quarantine").iterdir()
                )
            except OSError:
                quarantine = 0
        else:
            quarantine = 0
        return {
            "root": str(self.root),
            "schema": SCHEMA_VERSION,
            "code": self.code_fp,
            "max_bytes": self.max_bytes,
            "compile_entries": entries["compile"],
            "profile_entries": entries["profile"],
            "compile_bytes": entry_bytes["compile"],
            "profile_bytes": entry_bytes["profile"],
            "quarantine_entries": quarantine,
            "total_bytes": entry_bytes["compile"] + entry_bytes["profile"],
            "counters": self.counters.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"SessionStore(root={str(self.root)!r})"
