"""Persistent cross-run session store (ROADMAP: "cross-run profile
persistence").

The memoizing session (:mod:`repro.core.session`) dies with the process,
so every ``p2go optimize`` run starts cold — it recompiles and replays
probes that an earlier run over the same program family already paid
for.  :class:`SessionStore` is the disk tier behind that memo cache:
keys are the session's already-content-addressed fingerprints
(``(program_fingerprint, target)`` for compiles,
``(program_fingerprint, config_fingerprint, trace_fingerprint)`` for
profiles), values are pickled :class:`~repro.target.compiler.CompileResult`
objects and ``(Profile, PerfCounters)`` pairs.  A second run over an
unchanged program + trace is served entirely from disk: zero compiles,
zero replays (``benchmarks/bench_store.py`` gates that in CI).

Durability and safety contract (DESIGN.md §10):

* **Versioned layout.**  Entries live under ``<root>/v<SCHEMA_VERSION>/
  {compile,profile}/<sha1-of-key>.pkl``; ``<root>`` defaults to
  ``$P2GO_STORE`` and then ``~/.cache/p2go``.  A ``manifest.json``
  carries the schema version and a **code fingerprint** (a hash over
  the source of every module whose classes end up inside an entry
  pickle).  A manifest that is missing-but-entries-exist, unreadable,
  or mismatched means the on-disk format can no longer be trusted: the
  existing entries are sidelined into ``quarantine/`` and the store
  starts cold — never an exception, never a wrong result.
* **Atomic writes.**  Every entry is written to a uniquely-named
  (``O_EXCL``) temp file in the same directory and ``os.replace``\\d
  into place, so readers — including concurrent ones in other
  processes — only ever see complete entries.
* **Corruption tolerance.**  A truncated, garbage, or wrong-key entry
  file is quarantined on load and counted; the caller sees a plain
  miss.
* **Multi-process safety without locks.**  One file per entry plus
  atomic rename means concurrent writers at worst both pay for the
  same probe and the last rename wins — both files hold the identical
  content-addressed value.  There is no global lock and no shared
  mutable index.
* **LRU size cap.**  Loads refresh an entry's mtime; when the store
  exceeds ``max_bytes`` after a write, the least-recently-used entries
  are evicted (oldest mtime first, name as the deterministic
  tie-break).

The session hydrates from the store on memo miss and flushes executed
probes back on ``commit()`` / ``close()`` (serial path) and in the
``probe_many`` merge wave (parallel path) — see
:class:`~repro.core.session.OptimizationContext`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover — typing-only imports, no cycle
    from repro.core.profiler import Profile
    from repro.sim.perf import PerfCounters
    from repro.target.compiler import CompileResult

__all__ = [
    "SCHEMA_VERSION",
    "SessionStore",
    "StoreCounters",
    "code_fingerprint",
    "default_store_root",
    "resolve_store",
]

#: Bump when the entry layout or payload framing changes; old schema
#: directories (``v<N>/``) are simply never read by a newer store.
SCHEMA_VERSION = 1

#: Environment variable naming the store root (consulted by
#: :func:`default_store_root` / :func:`resolve_store`).
STORE_ENV = "P2GO_STORE"

#: Default size cap before LRU eviction kicks in.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Modules whose pickled classes appear inside store entries.  Their
#: source bytes feed the manifest's code fingerprint: touching any of
#: them invalidates (quarantines) existing stores instead of risking an
#: unpickle of a stale layout into current code.
_FINGERPRINTED_MODULES = (
    "repro.core.profiler",
    "repro.sim.perf",
    "repro.sim.runtime",
    "repro.target.compiler",
    "repro.target.allocation",
    "repro.target.model",
    "repro.analysis.dependencies",
    "repro.analysis.control_graph",
    "repro.p4.program",
)

_code_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-1 over the source of every module whose instances are
    pickled into store entries (computed once per process)."""
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        import importlib

        digest = hashlib.sha1()
        for name in _FINGERPRINTED_MODULES:
            module = importlib.import_module(name)
            digest.update(Path(module.__file__).read_bytes())
        _code_fingerprint_cache = digest.hexdigest()
    return _code_fingerprint_cache


def default_store_root() -> Path:
    """``$P2GO_STORE`` when set and non-empty, else ``~/.cache/p2go``."""
    raw = os.environ.get(STORE_ENV, "").strip()
    if raw:
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "p2go"


def resolve_store(
    store: Union["SessionStore", str, Path, bool, None],
) -> Optional["SessionStore"]:
    """The store a pipeline run should use.

    * a :class:`SessionStore` — used as-is;
    * a path — a store rooted there;
    * ``False`` — no store, even when ``$P2GO_STORE`` is set;
    * ``None`` — a store rooted at ``$P2GO_STORE`` when that is set and
      non-empty, otherwise no store (the library never writes to the
      user cache dir unless explicitly asked).
    """
    if store is False or store is None and not os.environ.get(
        STORE_ENV, ""
    ).strip():
        return None
    if isinstance(store, SessionStore):
        return store
    if store is None or store is True:
        return SessionStore(default_store_root())
    return SessionStore(store)


@dataclass
class StoreCounters:
    """What this process asked of the store and what happened on disk."""

    #: Loads answered from disk, per kind.
    compile_hits: int = 0
    profile_hits: int = 0
    #: Loads that found no (usable) entry.
    misses: int = 0
    #: Entries written (after executions).
    writes: int = 0
    #: Entries evicted by the LRU size cap.
    evictions: int = 0
    #: Corrupt/foreign entry files sidelined into ``quarantine/``.
    quarantined: int = 0
    #: Whole-store invalidations (schema or code-fingerprint mismatch,
    #: unreadable manifest) — each one is a forced cold start.
    resets: int = 0
    #: I/O or pickling failures that were swallowed (the store degrades
    #: to a miss / dropped write, never an exception).
    errors: int = 0

    @property
    def hits(self) -> int:
        return self.compile_hits + self.profile_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "compile_hits": self.compile_hits,
            "profile_hits": self.profile_hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "resets": self.resets,
            "errors": self.errors,
        }


class SessionStore:
    """Disk tier behind the session's compile/profile memo cache.

    ``root`` is the *unversioned* base directory (default:
    :func:`default_store_root`); entries live under its
    ``v<SCHEMA_VERSION>/`` subdirectory so schema bumps never read old
    layouts.  ``max_bytes`` caps the summed size of entry files; the
    least-recently-used entries are evicted past it.
    ``code_fp`` overrides the manifest code fingerprint (tests use this
    to simulate a store written by different code).

    Every public method is exception-safe: I/O and pickling failures
    degrade to a miss (loads) or a dropped write (stores) and are
    counted on :attr:`counters`, so a broken disk can cost performance
    but never a crash or a wrong result.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        code_fp: Optional[str] = None,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = Path(root).expanduser() if root else default_store_root()
        self.base = self.root / f"v{SCHEMA_VERSION}"
        self.max_bytes = max_bytes
        self.counters = StoreCounters()
        self._code_fp = code_fp
        self._seq = 0
        self._ready = False

    # ------------------------------------------------------------------
    # Layout / manifest

    @property
    def code_fp(self) -> str:
        if self._code_fp is None:
            self._code_fp = code_fingerprint()
        return self._code_fp

    def _dir(self, kind: str) -> Path:
        return self.base / kind

    def _manifest_path(self) -> Path:
        return self.base / "manifest.json"

    def _ensure_ready(self) -> bool:
        """Create the layout and reconcile the manifest (idempotent).

        Returns False when even the directory cannot be created — the
        store is then inert for this process.
        """
        if self._ready:
            return True
        try:
            for kind in ("compile", "profile", "quarantine"):
                self._dir(kind).mkdir(parents=True, exist_ok=True)
            expected = {"schema": SCHEMA_VERSION, "code": self.code_fp}
            manifest = self._read_manifest()
            if manifest is None:
                # Fresh directory — or one whose manifest was lost while
                # entries survived, which is just as untrustworthy.
                if self._has_entries():
                    self._invalidate()
                self._write_manifest(expected)
            elif manifest != expected:
                self._invalidate()
                self._write_manifest(expected)
            self._ready = True
            return True
        except OSError:
            self.counters.errors += 1
            return False

    def _read_manifest(self) -> Optional[Dict]:
        path = self._manifest_path()
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            manifest = json.loads(raw)
            return {
                "schema": manifest["schema"],
                "code": manifest["code"],
            }
        except (ValueError, KeyError, TypeError):
            # Unreadable/garbage manifest: report it as a mismatch (the
            # caller quarantines and rewrites) by returning a value that
            # can never equal the expected manifest.
            return {"schema": None, "code": None}

    def _write_manifest(self, manifest: Dict) -> None:
        self._atomic_write(
            self._manifest_path(),
            (json.dumps(manifest, sort_keys=True) + "\n").encode(),
        )

    def _has_entries(self) -> bool:
        for kind in ("compile", "profile"):
            try:
                next(self._dir(kind).iterdir())
                return True
            except (StopIteration, OSError):
                continue
        return False

    def _invalidate(self) -> None:
        """Sideline every existing entry: the on-disk format does not
        match this code.  Cold start, never an exception."""
        self.counters.resets += 1
        for kind in ("compile", "profile"):
            directory = self._dir(kind)
            try:
                names = sorted(p.name for p in directory.iterdir())
            except OSError:
                continue
            for name in names:
                self._quarantine(directory / name, count=False)

    # ------------------------------------------------------------------
    # Entry files

    @staticmethod
    def _entry_name(kind: str, key: Tuple) -> str:
        return hashlib.sha1(repr((kind, key)).encode()).hexdigest() + ".pkl"

    def _entry_path(self, kind: str, key: Tuple) -> Path:
        return self._dir(kind) / self._entry_name(kind, key)

    def _atomic_write(self, path: Path, data: bytes) -> None:
        """Write-to-temp + rename; the temp name is unique per process
        (pid + sequence) and opened ``O_EXCL`` so two processes never
        share a temp file."""
        self._seq += 1
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{self._seq}.tmp")
        fd = os.open(
            tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL | os.O_TRUNC, 0o644
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, path)

    def _quarantine(self, path: Path, count: bool = True) -> None:
        """Move a suspect file out of the entry namespace (best effort:
        a racing process may already have moved or replaced it)."""
        target = self._dir("quarantine") / (
            f"{path.name}.{os.getpid()}.{self._seq}"
        )
        self._seq += 1
        try:
            os.replace(path, target)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        if count:
            self.counters.quarantined += 1

    def _load(self, kind: str, key: Tuple):
        if not self._ensure_ready():
            return None
        path = self._entry_path(kind, key)
        try:
            data = path.read_bytes()
        except OSError:
            self.counters.misses += 1
            return None
        try:
            payload = pickle.loads(data)
            stored_key = payload["key"]
            value = payload["value"]
        except Exception:
            # Truncated write, garbage bytes, a pickle of foreign code —
            # all degrade to a miss; the file is sidelined so the cost
            # is paid once.
            self._quarantine(path)
            self.counters.misses += 1
            return None
        if stored_key != key:
            # SHA-1 collision or a corrupted-but-unpicklable-detectably
            # entry: treat exactly like corruption.
            self._quarantine(path)
            self.counters.misses += 1
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return value

    def _store(self, kind: str, key: Tuple, value) -> None:
        if not self._ensure_ready():
            return
        try:
            data = pickle.dumps(
                {"key": key, "value": value},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._atomic_write(self._entry_path(kind, key), data)
        except Exception:
            self.counters.errors += 1
            return
        self.counters.writes += 1
        self._evict_over_cap()

    # ------------------------------------------------------------------
    # Public API

    def load_compile(self, key: Tuple) -> Optional["CompileResult"]:
        """The stored compile result for ``key``, or None (miss)."""
        value = self._load("compile", key)
        if value is not None:
            self.counters.compile_hits += 1
        return value

    def store_compile(self, key: Tuple, result: "CompileResult") -> None:
        self._store("compile", key, result)

    def load_profile(
        self, key: Tuple
    ) -> Optional[Tuple["Profile", "PerfCounters"]]:
        """The stored ``(profile, perf)`` pair for ``key``, or None."""
        value = self._load("profile", key)
        if value is not None:
            self.counters.profile_hits += 1
        return value

    def store_profile(
        self, key: Tuple, profile: "Profile", perf: "PerfCounters"
    ) -> None:
        self._store("profile", key, (profile, perf))

    # ------------------------------------------------------------------
    # Eviction / maintenance

    def _entry_files(self) -> List[Tuple[float, str, int, Path]]:
        """(mtime, name, size, path) for every entry file, oldest first
        (name is the deterministic tie-break for equal mtimes)."""
        records = []
        for kind in ("compile", "profile"):
            directory = self._dir(kind)
            try:
                names = list(directory.iterdir())
            except OSError:
                continue
            for path in names:
                if path.name.endswith(".tmp"):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                records.append(
                    (stat.st_mtime, path.name, stat.st_size, path)
                )
        records.sort(key=lambda record: (record[0], record[1]))
        return records

    def _evict_over_cap(self) -> int:
        """Drop least-recently-used entries until under ``max_bytes``."""
        records = self._entry_files()
        total = sum(size for _mtime, _name, size, _path in records)
        evicted = 0
        for _mtime, _name, size, path in records:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        self.counters.evictions += evicted
        return evicted

    def clear(self) -> int:
        """Delete every entry (and quarantined file); returns how many
        entry files were removed.  The manifest survives."""
        if not self._ensure_ready():
            return 0
        removed = 0
        for kind in ("compile", "profile", "quarantine"):
            directory = self._dir(kind)
            try:
                paths = list(directory.iterdir())
            except OSError:
                continue
            for path in paths:
                try:
                    os.unlink(path)
                except OSError:
                    continue
                if kind != "quarantine":
                    removed += 1
        return removed

    def stats(self) -> Dict:
        """Census + this process's counters, JSON-ready."""
        entries = {"compile": 0, "profile": 0}
        total_bytes = 0
        if self._ensure_ready():
            for kind in entries:
                directory = self._dir(kind)
                try:
                    paths = list(directory.iterdir())
                except OSError:
                    continue
                for path in paths:
                    if path.name.endswith(".tmp"):
                        continue
                    try:
                        total_bytes += path.stat().st_size
                    except OSError:
                        continue
                    entries[kind] += 1
            try:
                quarantine = sum(
                    1 for _ in self._dir("quarantine").iterdir()
                )
            except OSError:
                quarantine = 0
        else:
            quarantine = 0
        return {
            "root": str(self.root),
            "schema": SCHEMA_VERSION,
            "code": self.code_fp,
            "max_bytes": self.max_bytes,
            "compile_entries": entries["compile"],
            "profile_entries": entries["profile"],
            "quarantine_entries": quarantine,
            "total_bytes": total_bytes,
            "counters": self.counters.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"SessionStore(root={str(self.root)!r})"
