"""Phase 4 — offloading code segments to the controller (§3.4).

P2GO enumerates self-contained code segments, generates a variant of the
program per candidate where the segment is replaced by a table that
redirects matching traffic to the controller, compiles and profiles each
variant, and selects the candidate (or, in multi-segment mode, the
dynamic-programming combination of disjoint candidates) that saves at
least the requested stages with the least traffic redirected — bounded by
a controller-load budget so the data plane never drowns the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.observations import Observation, ObservationKind, Phase
from repro.core.passes import PassResult
from repro.core.session import OptimizationContext
from repro.exceptions import OffloadError
from repro.p4.actions import (
    Action,
    SendToController,
    STANDARD_METADATA,
)
from repro.p4.control import (
    Apply,
    ControlNode,
    If,
    iter_nodes,
    replace_subtree,
    tables_applied,
)
from repro.p4.expressions import FieldRef, fields_read
from repro.p4.program import Program
from repro.p4.tables import Table
from repro.sim.runtime import RuntimeConfig
from repro.target.compiler import compile_program
from repro.target.model import TargetModel
from repro.traffic.generators import TracePacket

#: Default ceiling on the fraction of traffic a segment may redirect
#: (§3.4: offloading must not overload the controller).
DEFAULT_MAX_REDIRECT = 0.10

TO_CTL_TABLE = "To_Ctl"
TO_CTL_ACTION = "to_controller"

#: Reason code carried by redirected packets.
OFFLOAD_REASON = 0x0F


@dataclass
class SegmentCandidate:
    """A self-contained subtree that could move to the controller."""

    subtree: ControlNode
    tables: Tuple[str, ...]
    boundary_guard: Optional[str]  # printable condition kept in data plane

    @property
    def key(self) -> FrozenSet[str]:
        return frozenset(self.tables)


@dataclass
class EvaluatedCandidate:
    """A candidate after compile + profile of its redirect variant."""

    candidate: SegmentCandidate
    program: Program
    stages_before: int
    stages_after: int
    redirect_fraction: float
    redirect_table: str = TO_CTL_TABLE

    @property
    def stages_saved(self) -> int:
        return self.stages_before - self.stages_after


def _is_standard(ref: FieldRef) -> bool:
    return ref.header == STANDARD_METADATA


def _segment_reads_writes(
    program: Program, subtree: ControlNode
) -> Tuple[Set[FieldRef], Set[FieldRef], Set[str]]:
    """(reads, writes, registers) of the segment's tables/actions/guards.

    When the subtree root is an If, its own condition is the *boundary
    guard*: it stays in the data plane, so its reads are excluded.
    """
    reads: Set[FieldRef] = set()
    writes: Set[FieldRef] = set()
    registers: Set[str] = set()
    for node in iter_nodes(subtree):
        if isinstance(node, If) and node is not subtree:
            reads.update(fields_read(node.condition))
        if isinstance(node, Apply):
            table = program.tables[node.table]
            reads.update(k.field for k in table.keys)
            for action_name in table.all_action_names():
                action = program.actions[action_name]
                reads.update(action.reads())
                writes.update(action.writes())
                registers.update(action.registers_read())
                registers.update(action.registers_written())
    return reads, writes, registers


def _outside_reads_writes(
    program: Program, subtree: ControlNode, inside_tables: Set[str]
) -> Tuple[Set[FieldRef], Set[FieldRef], Set[str]]:
    reads: Set[FieldRef] = set()
    writes: Set[FieldRef] = set()
    registers: Set[str] = set()
    inside_nodes = {id(n) for n in iter_nodes(subtree)}
    for control in (program.ingress, program.egress):
        for node in iter_nodes(control):
            if id(node) in inside_nodes:
                continue
            if isinstance(node, If):
                reads.update(fields_read(node.condition))
            if isinstance(node, Apply) and node.table not in inside_tables:
                table = program.tables[node.table]
                reads.update(k.field for k in table.keys)
                for action_name in table.all_action_names():
                    action = program.actions[action_name]
                    reads.update(action.reads())
                    writes.update(action.writes())
                    registers.update(action.registers_read())
                    registers.update(action.registers_written())
    return reads, writes, registers


def _is_metadata_field(program: Program, ref: FieldRef) -> bool:
    inst = program.headers.get(ref.header)
    return inst is not None and inst.metadata


def is_self_contained(program: Program, subtree: ControlNode) -> bool:
    """§3.4's offloadability test.

    The segment must need no state produced elsewhere (its tables read
    only packet headers, metadata it writes itself, or the read-only
    ingress port), and nothing downstream may consume what it produces
    (its metadata writes feed nothing outside; its registers are private).
    Writes to the standard metadata (forwarding decisions) are the
    segment's *output* and always allowed.
    """
    inside_tables = set(tables_applied(subtree))
    if not inside_tables:
        return False
    reads, writes, registers = _segment_reads_writes(program, subtree)
    out_reads, out_writes, out_registers = _outside_reads_writes(
        program, subtree, inside_tables
    )

    if registers & out_registers:
        return False
    ingress_port = FieldRef(STANDARD_METADATA, "ingress_port")
    for ref in reads:
        if not _is_metadata_field(program, ref):
            continue  # packet header fields travel with the packet
        if ref == ingress_port:
            continue  # arrives with the punted packet
        if _is_standard(ref):
            return False  # depends on earlier forwarding decisions
        if ref in out_writes:
            # Any outside write taints the field: even if the segment also
            # writes it, a key/hash read may observe the outside value
            # before the segment's own write.
            return False
    for ref in writes:
        if not _is_metadata_field(program, ref) or _is_standard(ref):
            continue
        if ref in out_reads:
            return False  # something downstream consumes our output
    return True


def enumerate_candidates(program: Program) -> List[SegmentCandidate]:
    """All self-contained subtrees (deduplicated by table set)."""
    candidates: List[SegmentCandidate] = []
    seen: Set[FrozenSet[str]] = set()
    all_tables = set(program.tables_in_control_order())
    for node in iter_nodes(program.ingress):
        if node is program.ingress:
            continue  # offloading the whole program is out of scope
        tables = tuple(tables_applied(node))
        if not tables:
            continue
        key = frozenset(tables)
        if key in seen or key == frozenset(all_tables):
            seen.add(key)
            continue
        seen.add(key)
        if not is_self_contained(program, node):
            continue
        guard = (
            str(node.condition) if isinstance(node, If) else None
        )
        candidates.append(
            SegmentCandidate(
                subtree=node, tables=tables, boundary_guard=guard
            )
        )
    return candidates


def unique_redirect_name(program: Program, base: str = TO_CTL_TABLE) -> str:
    """First unused ``To_Ctl``-style name (re-runs add To_Ctl_2, ...)."""
    if base not in program.tables:
        return base
    suffix = 2
    while f"{base}_{suffix}" in program.tables:
        suffix += 1
    return f"{base}_{suffix}"


def make_offloaded_program(
    program: Program,
    candidate: SegmentCandidate,
    table_name: Optional[str] = None,
    reason: int = OFFLOAD_REASON,
) -> Program:
    """Replace the segment with a redirect table.

    When the segment root is an If, the condition stays in the data plane
    and only its body is replaced — the redirect table then matches
    exactly the traffic the segment used to process, the paper's "rules
    equivalent to the superset of match-action rules of the segment".
    """
    if table_name is None:
        table_name = unique_redirect_name(program)
    if table_name in program.tables:
        raise OffloadError(
            f"table name {table_name!r} already exists in the program"
        )
    subtree = candidate.subtree
    redirect = Apply(table_name)
    if isinstance(subtree, If):
        replacement: ControlNode = If(
            subtree.condition, redirect, subtree.else_node
        )
    else:
        replacement = redirect
    new_ingress = replace_subtree(program.ingress, subtree, replacement)
    out = program.with_ingress(new_ingress)
    action_name = TO_CTL_ACTION
    if action_name not in out.actions:
        out.actions[action_name] = Action(
            name=action_name, primitives=(SendToController(reason),)
        )
    out.tables[table_name] = Table(
        name=table_name,
        keys=(),
        actions=(),
        default_action=action_name,
        size=1,
    )
    out.validate()
    return out


def make_combined_offloaded_program(
    program: Program,
    candidates: Sequence[SegmentCandidate],
    reason: int = OFFLOAD_REASON,
) -> Program:
    """Replace several *disjoint* segments with redirect tables.

    Candidates must come from :func:`enumerate_candidates` on ``program``
    (subtree identity matters) and must not overlap; each gets its own
    uniquely-named redirect table.
    """
    seen: Set[str] = set()
    for candidate in candidates:
        overlap = seen & set(candidate.tables)
        if overlap:
            raise OffloadError(
                f"segments overlap on tables {sorted(overlap)}"
            )
        seen.update(candidate.tables)

    out = program
    for candidate in candidates:
        # replace_subtree shares unmodified branches, so later candidates'
        # subtree nodes keep their identity as long as segments are
        # disjoint subtrees.
        out = make_offloaded_program(
            out, candidate, table_name=unique_redirect_name(out),
            reason=reason,
        )
    return out


def evaluate_candidates(
    program: Program,
    config: RuntimeConfig,
    trace: Sequence[TracePacket],
    target: TargetModel,
    candidates: Sequence[SegmentCandidate],
    baseline_stages: Optional[int] = None,
    session: Optional[OptimizationContext] = None,
) -> List[EvaluatedCandidate]:
    """Compile + profile the redirect variant of every candidate (§3.4:
    "P2GO compiles and profiles a modified program for each candidate").

    With a ``session``, every variant compile/profile is memoized — the
    accepted variant's later re-profile by the orchestrator (and repeat
    evaluations across re-runs on the same session) cost nothing.  The
    variants are independent, so they are evaluated as one mixed
    :meth:`~repro.core.session.OptimizationContext.probe_many` batch:
    compiles and trace replays of all candidates run concurrently when
    the session has workers, with results and counters identical to the
    serial loop.
    """
    if session is None:
        session = OptimizationContext(program, config, trace, target)
    if baseline_stages is None:
        baseline_stages = session.compile(program).stages_used

    # Build every redirect variant up front (pure rewriting), then
    # batch-probe: one compile and one replay per candidate.
    redirect_table = unique_redirect_name(program)
    variants: List[Tuple[Program, "RuntimeConfig"]] = []
    for candidate in candidates:
        modified = make_offloaded_program(
            program, candidate, table_name=redirect_table
        )
        remaining = [
            t for t in modified.tables if t not in candidate.tables
        ]
        variants.append((modified, config.restricted_to(remaining)))

    compiled, profiled = session.probe_many(
        programs=[modified for modified, _adapted in variants],
        variants=variants,
    )
    evaluated: List[EvaluatedCandidate] = []
    for candidate, (modified, _adapted), result, (profile, _perf) in zip(
        candidates, variants, compiled, profiled
    ):
        evaluated.append(
            EvaluatedCandidate(
                candidate=candidate,
                program=modified,
                stages_before=baseline_stages,
                stages_after=result.stages_used,
                redirect_fraction=profile.apply_rate(redirect_table),
                redirect_table=redirect_table,
            )
        )
    return evaluated


def select_candidate(
    evaluated: Sequence[EvaluatedCandidate],
    min_stage_savings: int = 1,
    max_redirect_fraction: float = DEFAULT_MAX_REDIRECT,
) -> Optional[EvaluatedCandidate]:
    """Least redirected traffic among candidates saving enough stages."""
    eligible = [
        e
        for e in evaluated
        if e.stages_saved >= min_stage_savings
        and e.redirect_fraction <= max_redirect_fraction
    ]
    if not eligible:
        return None
    return min(
        eligible,
        key=lambda e: (
            e.redirect_fraction,
            -e.stages_saved,
            len(e.candidate.tables),
            sorted(e.candidate.tables),
        ),
    )


def select_combination(
    evaluated: Sequence[EvaluatedCandidate],
    min_stage_savings: int,
    max_redirect_fraction: float = DEFAULT_MAX_REDIRECT,
) -> List[EvaluatedCandidate]:
    """Dynamic program over disjoint candidates: minimize total redirected
    traffic subject to a total stage-savings target.

    States are (candidates considered, stages saved so far); the load of a
    combination is estimated additively (disjoint segments redirect
    disjoint guard events) and the winning combination should be re-verified
    by compiling the combined program.
    """
    items = [
        e
        for e in evaluated
        if e.stages_saved > 0 and e.redirect_fraction <= max_redirect_fraction
    ]
    items.sort(key=lambda e: sorted(e.candidate.tables))

    # dp[(savings, used_tables)] = (load, chosen indices); savings capped.
    cap = max(min_stage_savings, 0)
    dp: Dict[Tuple[int, FrozenSet[str]], Tuple[float, Tuple[int, ...]]] = {
        (0, frozenset()): (0.0, ())
    }
    for i, item in enumerate(items):
        additions = []
        for (savings, used), (load, chosen) in dp.items():
            if item.candidate.key & used:
                continue
            new_savings = min(savings + item.stages_saved, cap)
            new_used = used | item.candidate.key
            new_load = load + item.redirect_fraction
            if new_load > max_redirect_fraction:
                continue
            key = (new_savings, new_used)
            if key not in dp or dp[key][0] > new_load:
                additions.append((key, (new_load, chosen + (i,))))
        for key, value in additions:
            if key not in dp or dp[key][0] > value[0]:
                dp[key] = value
    winners = [
        (load, chosen)
        for (savings, _used), (load, chosen) in dp.items()
        if savings >= min_stage_savings
    ]
    if not winners:
        return []
    _load, chosen = min(winners, key=lambda w: (w[0], len(w[1])))
    return [items[i] for i in chosen]


@dataclass
class OffloadResult:
    """Outcome of one phase-4 pass."""

    program: Program
    config: RuntimeConfig
    offloaded: Optional[EvaluatedCandidate]
    evaluated: List[EvaluatedCandidate]
    observations: List[Observation]
    #: All offloaded segments (len > 1 only in combination mode).
    combination: Tuple[EvaluatedCandidate, ...] = ()


def _try_combination(
    program: Program,
    config: RuntimeConfig,
    trace: Sequence[TracePacket],
    target: TargetModel,
    evaluated: Sequence[EvaluatedCandidate],
    min_stage_savings: int,
    max_redirect_fraction: float,
    baseline_stages: int,
    observations: List[Observation],
    session: Optional[OptimizationContext] = None,
) -> Optional[OffloadResult]:
    """§3.4's DP: combine disjoint segments when no single one suffices."""
    combo = select_combination(
        evaluated,
        min_stage_savings=min_stage_savings,
        max_redirect_fraction=max_redirect_fraction,
    )
    if not combo:
        return None
    segments = [e.candidate for e in combo]
    combined = make_combined_offloaded_program(program, segments)
    if session is not None:
        stages = session.compile(combined).stages_used
    else:
        stages = compile_program(combined, target).stages_used
    if baseline_stages - stages < min_stage_savings:
        return None  # additive estimate was optimistic; reject
    offloaded_tables = [t for c in segments for t in c.tables]
    remaining = [
        t for t in combined.tables if t not in offloaded_tables
    ]
    new_config = config.restricted_to(remaining)
    total_load = sum(e.redirect_fraction for e in combo)
    observations.append(
        Observation(
            phase=Phase.OFFLOAD_CODE,
            kind=ObservationKind.OPTIMIZATION,
            title=(
                "offloaded combination of segments {"
                + "} + {".join(
                    ", ".join(c.tables) for c in segments
                )
                + "} to the controller"
            ),
            details=(
                f"no single segment saves {min_stage_savings} stage(s); "
                f"the DP-selected combination does, redirecting "
                f"~{total_load:.2%} of the trace in total"
            ),
            evidence={
                "stages_before": baseline_stages,
                "stages_after": stages,
            },
        )
    )
    return OffloadResult(
        program=combined,
        config=new_config,
        offloaded=combo[0],
        evaluated=list(evaluated),
        observations=observations,
        combination=tuple(combo),
    )


def run_phase(
    program: Program,
    config: RuntimeConfig,
    trace: Sequence[TracePacket],
    target: TargetModel,
    min_stage_savings: int = 1,
    max_redirect_fraction: float = DEFAULT_MAX_REDIRECT,
    allow_combination: bool = False,
    session: Optional[OptimizationContext] = None,
) -> OffloadResult:
    """Offload the best segment (or, with ``allow_combination``, the best
    DP combination of disjoint segments) if any qualifies."""
    if session is None:
        session = OptimizationContext(program, config, trace, target)
    observations: List[Observation] = []
    candidates = enumerate_candidates(program)
    baseline_stages = session.compile(program).stages_used
    evaluated = evaluate_candidates(
        program, config, trace, target, candidates,
        baseline_stages=baseline_stages,
        session=session,
    )
    chosen = select_candidate(
        evaluated,
        min_stage_savings=min_stage_savings,
        max_redirect_fraction=max_redirect_fraction,
    )
    if chosen is None:
        if allow_combination:
            combined = _try_combination(
                program, config, trace, target, evaluated,
                min_stage_savings, max_redirect_fraction,
                baseline_stages, observations,
                session=session,
            )
            if combined is not None:
                return combined
        observations.append(
            Observation(
                phase=Phase.OFFLOAD_CODE,
                kind=ObservationKind.NOTE,
                title="no offloadable segment qualifies",
                details=(
                    f"{len(evaluated)} self-contained segment(s) evaluated; "
                    f"none saves >= {min_stage_savings} stage(s) within the "
                    f"{max_redirect_fraction:.0%} controller-load budget"
                ),
            )
        )
        return OffloadResult(
            program=program,
            config=config,
            offloaded=None,
            evaluated=evaluated,
            observations=observations,
        )
    remaining = [
        t for t in chosen.program.tables if t not in chosen.candidate.tables
    ]
    observations.append(
        Observation(
            phase=Phase.OFFLOAD_CODE,
            kind=ObservationKind.OPTIMIZATION,
            title=(
                "offloaded segment {"
                + ", ".join(chosen.candidate.tables)
                + "} to the controller"
            ),
            details=(
                f"these tables must now be implemented at the controller; "
                f"{chosen.redirect_fraction:.2%} of the trace is redirected "
                f"and {chosen.stages_saved} stage(s) are freed. Keep the "
                f"segment in the data plane if it matters in critical "
                f"situations the trace does not cover."
            ),
            evidence={
                "boundary_guard": chosen.candidate.boundary_guard or "none",
                "stages_before": chosen.stages_before,
                "stages_after": chosen.stages_after,
            },
        )
    )
    return OffloadResult(
        program=chosen.program,
        config=config.restricted_to(remaining),
        offloaded=chosen,
        evaluated=evaluated,
        observations=observations,
        combination=(chosen,),
    )


@dataclass
class OffloadPass:
    """Phase 4 as an :class:`~repro.core.passes.OptimizationPass`.

    Evaluates every self-contained segment's redirect variant through
    the session cache and proposes the qualifying one that redirects the
    least traffic (program *and* config change together).
    """

    min_stage_savings: int = 1
    max_redirect_fraction: float = DEFAULT_MAX_REDIRECT
    allow_combination: bool = False
    max_rounds: int = 1
    name: str = dc_field(default="offload-code", init=False)
    phase: Phase = dc_field(default=Phase.OFFLOAD_CODE, init=False)

    def run(self, ctx: OptimizationContext) -> PassResult:
        step = run_phase(
            ctx.program,
            ctx.config,
            ctx.trace,
            ctx.target,
            min_stage_savings=self.min_stage_savings,
            max_redirect_fraction=self.max_redirect_fraction,
            allow_combination=self.allow_combination,
            session=ctx,
        )
        changed = step.offloaded is not None
        info: Dict[str, object] = {}
        if changed:
            ctx.propose(program=step.program, config=step.config)
            info["offloaded_tables"] = step.offloaded.candidate.tables
            # The controller-load cost of this offload: the fraction of
            # the trace the redirect table(s) send to the controller
            # (summed over the DP combination's disjoint segments).
            info["controller_load"] = sum(
                e.redirect_fraction for e in step.combination
            )
        return PassResult(
            changed=changed, observations=step.observations, info=info
        )
