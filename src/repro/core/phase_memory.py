"""Phase 3 — reducing memory to shorten the pipeline (§3.3).

For every resizable resource (table capacities and register arrays) P2GO
probes a 50% reduction; resources whose halving saves at least one stage
are candidates.  Candidates are tried lowest-hit-rate-first (to minimize
behavioural risk), the minimum sufficient reduction is found by binary
search (no target memory map needed), and the resize is kept only if a
re-profile of the resized program is identical to the original profile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Callable, List, Optional, Sequence

from repro.core.observations import Observation, ObservationKind, Phase
from repro.core.passes import PassResult
from repro.core.profiler import Profile
from repro.core.session import OptimizationContext
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.target.compiler import compile_program
from repro.target.model import TargetModel
from repro.traffic.generators import TracePacket


class ResourceKind(enum.Enum):
    TABLE = "table"
    REGISTER = "register"


@dataclass(frozen=True)
class MemoryCandidate:
    """A resource whose halving saves at least one stage."""

    kind: ResourceKind
    name: str
    original_size: int
    halved_stages: int
    hit_rate: float
    #: Table whose hit rate stands in for this resource (the owner for
    #: registers, itself for tables).
    rate_table: str


@dataclass
class MemoryReduction:
    """An accepted (or attempted) resize."""

    candidate: MemoryCandidate
    new_size: int
    stages_before: int
    stages_after: int

    @property
    def reduction_fraction(self) -> float:
        return 1.0 - self.new_size / self.candidate.original_size


#: A candidate-selection policy: reorders phase 3's candidate list.
CandidateOrder = Callable[[List[MemoryCandidate]], List[MemoryCandidate]]


def _policy_highest_hit_rate(
    candidates: List[MemoryCandidate],
) -> List[MemoryCandidate]:
    """The anti-paper order the candidate-choice ablation measures:
    riskiest (highest hit rate) resources first."""
    return sorted(candidates, key=lambda c: -c.hit_rate)


def _policy_largest_memory_first(
    candidates: List[MemoryCandidate],
) -> List[MemoryCandidate]:
    """Greedy-capacity order: try the biggest allocations first."""
    return sorted(candidates, key=lambda c: -c.original_size)


#: Named candidate-selection policies (all module-level functions, so a
#: policy name can cross a process boundary and resolve to the same
#: picklable callable in a pool worker).  ``None`` means "keep the
#: order :func:`find_candidates` produced" — the paper's
#: lowest-hit-rate-first default.  All sorts are stable, so equal-key
#: candidates keep their control order and every policy is
#: deterministic.
CANDIDATE_POLICIES = {
    "lowest-hit-rate": None,
    "highest-hit-rate": _policy_highest_hit_rate,
    "largest-memory-first": _policy_largest_memory_first,
}


def resolve_candidate_policy(
    name: Optional[str],
) -> Optional[CandidateOrder]:
    """The callable behind a policy name (None / "lowest-hit-rate" →
    the built-in paper order).  Unknown names fail loudly — a sweep
    must not silently fall back to the default policy."""
    if name is None:
        return None
    try:
        return CANDIDATE_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown candidate policy {name!r}; known policies: "
            + ", ".join(sorted(CANDIDATE_POLICIES))
        ) from None


def _resized(program: Program, kind: ResourceKind, name: str, size: int) -> Program:
    if kind is ResourceKind.TABLE:
        return program.with_table_size(name, size)
    return program.with_register_size(name, size)


def _stages(
    program: Program,
    target: TargetModel,
    session: Optional[OptimizationContext] = None,
) -> int:
    if session is not None:
        return session.compile(program).stages_used
    return compile_program(program, target).stages_used


def find_candidates(
    program: Program,
    target: TargetModel,
    profile: Profile,
    baseline_stages: Optional[int] = None,
    session: Optional[OptimizationContext] = None,
) -> List[MemoryCandidate]:
    """Probe a 50% cut of every resource; keep the stage-saving ones,
    ordered lowest hit rate first (ties broken by control order).

    The halving probes are independent per resource, so with a session
    they go through one :meth:`~repro.core.session.OptimizationContext.
    compile_many` batch — compiled concurrently when the session has
    workers, with results and counters identical to the serial loop.
    """
    if baseline_stages is None:
        baseline_stages = _stages(program, target, session)
    order = {
        name: i for i, name in enumerate(program.tables_in_control_order())
    }

    # Enumerate every resizable resource with its halved variant first
    # (tables in declaration order, then owned registers — the serial
    # probe order), then batch-compile all variants in one wave.
    probes: List[Tuple[ResourceKind, str, int, str, Program]] = []
    for table in program.tables.values():
        if table.size < 2 or not table.keys:
            continue
        probes.append(
            (
                ResourceKind.TABLE,
                table.name,
                table.size,
                table.name,
                program.with_table_size(table.name, table.size // 2),
            )
        )
    for register in program.registers.values():
        if register.size < 2:
            continue
        owners = program.tables_accessing_register(register.name)
        if not owners:
            continue
        probes.append(
            (
                ResourceKind.REGISTER,
                register.name,
                register.size,
                owners[0],
                program.with_register_size(
                    register.name, register.size // 2
                ),
            )
        )
    if session is not None:
        probed_stages = [
            result.stages_used
            for result in session.compile_many(
                [variant for *_rest, variant in probes]
            )
        ]
    else:
        probed_stages = [
            compile_program(variant, target).stages_used
            for *_rest, variant in probes
        ]

    candidates: List[MemoryCandidate] = []
    for (kind, name, size, rate_table, _variant), stages in zip(
        probes, probed_stages
    ):
        if stages < baseline_stages:
            candidates.append(
                MemoryCandidate(
                    kind=kind,
                    name=name,
                    original_size=size,
                    halved_stages=stages,
                    hit_rate=profile.hit_rate(rate_table),
                    rate_table=rate_table,
                )
            )
    candidates.sort(
        key=lambda c: (c.hit_rate, order.get(c.rate_table, 1 << 30), c.name)
    )
    return candidates


def minimal_reduction(
    program: Program,
    target: TargetModel,
    candidate: MemoryCandidate,
    baseline_stages: int,
    probe_counter: Optional[List[int]] = None,
    session: Optional[OptimizationContext] = None,
) -> int:
    """Binary-search the largest size that still saves a stage (§3.3:
    "binary search allows P2GO to find the minimum reduction without a
    concrete description of the hardware")."""
    lo = candidate.original_size // 2  # known to save
    hi = candidate.original_size  # known not to save
    while hi - lo > 1:
        mid = (lo + hi) // 2
        stages = _stages(
            _resized(program, candidate.kind, candidate.name, mid),
            target,
            session,
        )
        if probe_counter is not None:
            probe_counter.append(mid)
        if stages < baseline_stages:
            lo = mid
        else:
            hi = mid
    return lo


def linear_minimal_reduction(
    program: Program,
    target: TargetModel,
    candidate: MemoryCandidate,
    baseline_stages: int,
    step: int = 1,
    probe_counter: Optional[List[int]] = None,
    session: Optional[OptimizationContext] = None,
) -> int:
    """Linear-scan baseline for the ablation bench: walk down from the
    original size until a stage is saved."""
    size = candidate.original_size - step
    while size > candidate.original_size // 2:
        stages = _stages(
            _resized(program, candidate.kind, candidate.name, size),
            target,
            session,
        )
        if probe_counter is not None:
            probe_counter.append(size)
        if stages < baseline_stages:
            return size
        size -= step
    return candidate.original_size // 2


@dataclass
class MemoryReductionResult:
    """Outcome of one phase-3 pass."""

    program: Program
    accepted: Optional[MemoryReduction]
    rejected: List[MemoryReduction]
    observations: List[Observation]


def run_phase(
    program: Program,
    config: RuntimeConfig,
    trace: Sequence[TracePacket],
    target: TargetModel,
    profile: Profile,
    candidate_order: Optional[Callable[[List[MemoryCandidate]], List[MemoryCandidate]]] = None,
    session: Optional[OptimizationContext] = None,
) -> MemoryReductionResult:
    """Try candidates until one resize passes verification.

    ``candidate_order`` lets the ablation bench override the paper's
    lowest-hit-rate-first policy.  All candidate probing (the halving
    probes, the binary search, the verification re-profiles) goes
    through ``session`` when one is given; standalone calls get a
    private memoizing session so repeated probes of the same size are
    compiled once.
    """
    if session is None:
        session = OptimizationContext(program, config, trace, target)
    observations: List[Observation] = []
    rejected: List[MemoryReduction] = []
    baseline_stages = _stages(program, target, session)
    candidates = find_candidates(
        program, target, profile, baseline_stages=baseline_stages,
        session=session,
    )
    if candidate_order is not None:
        candidates = candidate_order(list(candidates))
    if not candidates:
        observations.append(
            Observation(
                phase=Phase.REDUCE_MEMORY,
                kind=ObservationKind.NOTE,
                title="no memory-reduction candidates",
                details="halving no table or register saves a stage",
            )
        )
        return MemoryReductionResult(
            program=program,
            accepted=None,
            rejected=[],
            observations=observations,
        )

    for candidate in candidates:
        new_size = minimal_reduction(
            program, target, candidate, baseline_stages, session=session
        )
        resized = _resized(program, candidate.kind, candidate.name, new_size)
        new_profile = session.profile(resized, config)
        reduction = MemoryReduction(
            candidate=candidate,
            new_size=new_size,
            stages_before=baseline_stages,
            stages_after=_stages(resized, target, session),
        )
        if profile.same_behavior_as(new_profile):
            observations.append(
                Observation(
                    phase=Phase.REDUCE_MEMORY,
                    kind=ObservationKind.OPTIMIZATION,
                    title=(
                        f"resized {candidate.kind.value} "
                        f"{candidate.name}: {candidate.original_size} -> "
                        f"{new_size} "
                        f"(-{reduction.reduction_fraction:.1%})"
                    ),
                    details=(
                        "the reduced program's profile is identical on the "
                        "input trace; verify that future rules/state still "
                        "fit the smaller allocation"
                    ),
                    evidence={
                        "stages_before": baseline_stages,
                        "stages_after": reduction.stages_after,
                        "hit_rate": f"{candidate.hit_rate:.2%}",
                    },
                )
            )
            return MemoryReductionResult(
                program=resized,
                accepted=reduction,
                rejected=rejected,
                observations=observations,
            )
        reasons = profile.behavior_diff(new_profile)
        rejected.append(reduction)
        observations.append(
            Observation(
                phase=Phase.REDUCE_MEMORY,
                kind=ObservationKind.REJECTED,
                title=(
                    f"discarded resize of {candidate.kind.value} "
                    f"{candidate.name} ({candidate.original_size} -> "
                    f"{new_size})"
                ),
                details=(
                    "the reduction changed the program's behaviour on the "
                    "trace: " + "; ".join(reasons)
                ),
                evidence={"hit_rate": f"{candidate.hit_rate:.2%}"},
            )
        )
    return MemoryReductionResult(
        program=program,
        accepted=None,
        rejected=rejected,
        observations=observations,
    )


@dataclass
class MemoryReductionPass:
    """Phase 3 as an :class:`~repro.core.passes.OptimizationPass`.

    Each round accepts at most one verified resize; every probe of the
    candidate search and binary search hits the session's memo cache.
    """

    max_rounds: int = 1
    candidate_order: Optional[
        Callable[[List[MemoryCandidate]], List[MemoryCandidate]]
    ] = None
    name: str = dc_field(default="reduce-memory", init=False)
    phase: Phase = dc_field(default=Phase.REDUCE_MEMORY, init=False)

    def run(self, ctx: OptimizationContext) -> PassResult:
        step = run_phase(
            ctx.program,
            ctx.config,
            ctx.trace,
            ctx.target,
            ctx.profile(),
            candidate_order=self.candidate_order,
            session=ctx,
        )
        if step.accepted is not None:
            ctx.propose(program=step.program)
        return PassResult(
            changed=step.accepted is not None,
            observations=step.observations,
        )
