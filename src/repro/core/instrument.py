"""Program instrumentation for profiling (§3.1).

P2GO "modifies the program to append a profiling header after the original
headers of each packet.  The profiling header contains multiple fields,
each corresponding to an action.  Each field is set when the corresponding
action is executed."

Faithfully reproduced here:

* a ``p2go_profile`` header with one 1-bit field per (table, action) pair,
  added zero-filled by the parser for every packet (``auto_valid``) so it
  consumes no match-action resources and rides out with the deparsed
  packet,
* per-table clones of every action with one extra ``modify_field`` that
  sets the pair's bit — "each header field is modified in a distinct
  action", so instrumentation introduces no new dependencies and, as the
  paper claims, "cannot increase the program's required stages" (a
  property test over random programs pins this down).

``InstrumentedProgram.adapt_config`` rewrites a runtime configuration so
installed entries reference the cloned action names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import ProfilingError
from repro.p4.actions import ModifyField
from repro.p4.expressions import Const, FieldRef
from repro.p4.program import HeaderField, HeaderInstance, HeaderType, Program
from repro.p4.tables import Table
from repro.sim.runtime import RuntimeConfig, TableEntry

PROFILE_HEADER = "p2go_profile"
PROFILE_HEADER_TYPE = "p2go_profile_t"


def _bit_field_name(table: str, action: str) -> str:
    return f"{table}__{action}"


def _cloned_action_name(table: str, action: str) -> str:
    return f"{action}__prof__{table}"


@dataclass
class InstrumentedProgram:
    """The instrumented program plus the bit↔(table, action) mapping."""

    program: Program
    original: Program
    bit_fields: Dict[Tuple[str, str], str]  # (table, action) -> field name

    def adapt_config(self, config: RuntimeConfig) -> RuntimeConfig:
        """Rewrite entry/default action names to their per-table clones.

        Profiling-engine switches carry over unchanged, so a caller that
        disabled the flow cache profiles uncached too.
        """
        adapted = RuntimeConfig(
            register_inits=list(config.register_inits),
            hashed_inits=list(config.hashed_inits),
            enable_flow_cache=config.enable_flow_cache,
            enable_compiled_tables=config.enable_compiled_tables,
            flow_cache_capacity=config.flow_cache_capacity,
            enable_fastpath=config.enable_fastpath,
        )
        for table_name, entries in config.entries.items():
            if table_name not in self.original.tables:
                raise ProfilingError(
                    f"runtime config references unknown table {table_name!r}"
                )
            for entry in entries:
                adapted.entries.setdefault(table_name, []).append(
                    TableEntry(
                        match=entry.match,
                        action=_cloned_action_name(table_name, entry.action),
                        action_args=entry.action_args,
                        priority=entry.priority,
                    )
                )
        for table_name, (action, args) in config.default_overrides.items():
            adapted.default_overrides[table_name] = (
                _cloned_action_name(table_name, action),
                args,
            )
        return adapted

    def decode_result_bits(
        self, headers: Dict[str, Dict[str, int]]
    ) -> List[Tuple[str, str]]:
        """(table, action) pairs whose bit is set in a final PHV."""
        profile_fields = headers.get(PROFILE_HEADER, {})
        executed = []
        for pair, field_name in self.bit_fields.items():
            if profile_fields.get(field_name):
                executed.append(pair)
        return executed

    def decode_packet_bits(self, output: bytes) -> List[Tuple[str, str]]:
        """Decode the profiling header straight off an emitted packet.

        The profiling header sits between the (original) parsed headers and
        the payload; we locate it by re-parsing the packet with the
        original program's parser.  Only valid for programs that do not
        add/remove packet headers during processing — the PHV-based decode
        above has no such restriction.
        """
        from repro.sim.parser_engine import parse_packet
        from repro.packets.packet import unpack_fields

        parsed = parse_packet(self.original, output)
        header_bytes = len(output) - len(parsed.payload)
        profile_type = self.program.header_types[PROFILE_HEADER_TYPE]
        blob = output[header_bytes : header_bytes + profile_type.byte_width]
        if len(blob) < profile_type.byte_width:
            raise ProfilingError(
                "output packet too short to carry the profiling header"
            )
        values = unpack_fields(profile_type, blob)
        executed = []
        for pair, field_name in self.bit_fields.items():
            if values.get(field_name):
                executed.append(pair)
        return executed


def instrument(program: Program) -> InstrumentedProgram:
    """Produce the profiling variant of ``program``."""
    out = program.clone(new_name=f"{program.name}__instrumented")

    # One bit per (table, action) pair, in deterministic order.
    bit_fields: Dict[Tuple[str, str], str] = {}
    fields: List[HeaderField] = []
    for table_name in out.tables:
        table = out.tables[table_name]
        for action_name in table.all_action_names():
            field_name = _bit_field_name(table_name, action_name)
            bit_fields[(table_name, action_name)] = field_name
            fields.append(HeaderField(field_name, 1))
    if not fields:
        raise ProfilingError(
            f"program {program.name!r} has no tables to profile"
        )

    out.header_types[PROFILE_HEADER_TYPE] = HeaderType(
        name=PROFILE_HEADER_TYPE, fields=tuple(fields)
    )
    out.headers[PROFILE_HEADER] = HeaderInstance(
        name=PROFILE_HEADER,
        header_type=PROFILE_HEADER_TYPE,
        metadata=False,
        auto_valid=True,
    )

    # Clone every action per table, appending the bit-set primitive.
    for table_name in list(out.tables):
        table = out.tables[table_name]
        new_actions = []
        for action_name in table.actions:
            clone_name = _cloned_action_name(table_name, action_name)
            base = out.actions[action_name]
            out.actions[clone_name] = base.with_extra_primitives(
                [
                    ModifyField(
                        FieldRef(
                            PROFILE_HEADER,
                            _bit_field_name(table_name, action_name),
                        ),
                        Const(1),
                    )
                ],
                new_name=clone_name,
            )
            new_actions.append(clone_name)
        default_clone = _cloned_action_name(table_name, table.default_action)
        if default_clone not in out.actions:
            base = out.actions[table.default_action]
            out.actions[default_clone] = base.with_extra_primitives(
                [
                    ModifyField(
                        FieldRef(
                            PROFILE_HEADER,
                            _bit_field_name(
                                table_name, table.default_action
                            ),
                        ),
                        Const(1),
                    )
                ],
                new_name=default_clone,
            )
        out.tables[table_name] = Table(
            name=table.name,
            keys=table.keys,
            actions=tuple(new_actions),
            default_action=default_clone,
            default_action_args=table.default_action_args,
            size=table.size,
        )

    out.validate()
    return InstrumentedProgram(
        program=out, original=program, bit_fields=bit_fields
    )
