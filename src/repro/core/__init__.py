"""P2GO core: instrumentation, profiling, and the optimization phases."""

from repro.core.drift import (
    DriftDetector,
    DriftFinding,
    DriftKind,
    DriftReport,
)
from repro.core.instrument import InstrumentedProgram, instrument
from repro.core.online import AlertKind, OnlineAlert, OnlineProfiler
from repro.core.observations import (
    Observation,
    ObservationKind,
    ObservationLog,
    Phase,
)
from repro.core.pipeline import P2GO, P2GOResult, PhaseOutcome, optimize
from repro.core.profiler import Profile, Profiler, ProfilingRun, profile_program
from repro.core.report import render_report, stage_table, summary_line

from repro.core.runtime_guard import (
    DependencyGuard,
    add_dependency_guard,
    guard_notifications,
    mirror_guard_entries,
)

__all__ = [
    "AlertKind",
    "DependencyGuard",
    "OnlineAlert",
    "OnlineProfiler",
    "DriftDetector",
    "DriftFinding",
    "DriftKind",
    "DriftReport",
    "InstrumentedProgram",
    "add_dependency_guard",
    "guard_notifications",
    "mirror_guard_entries",
    "Observation",
    "ObservationKind",
    "ObservationLog",
    "P2GO",
    "P2GOResult",
    "Phase",
    "PhaseOutcome",
    "Profile",
    "Profiler",
    "ProfilingRun",
    "instrument",
    "optimize",
    "profile_program",
    "render_report",
    "stage_table",
    "summary_line",
]
