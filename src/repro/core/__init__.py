"""P2GO core: instrumentation, profiling, and the optimization phases.

Exports resolve lazily (PEP 562) so an import error in one phase module
(e.g. an optional dependency it gates on) does not take down every
consumer of :mod:`repro.core` — only accesses to that module's names
fail.
"""

import importlib

#: Public name -> defining submodule under ``repro.core``.
_EXPORTS = {
    "AlertKind": "online",
    "DependencyGuard": "runtime_guard",
    "OnlineAlert": "online",
    "OnlineProfiler": "online",
    "DriftDetector": "drift",
    "DriftFinding": "drift",
    "DriftKind": "drift",
    "DriftReport": "drift",
    "InstrumentedProgram": "instrument",
    "add_dependency_guard": "runtime_guard",
    "guard_notifications": "runtime_guard",
    "mirror_guard_entries": "runtime_guard",
    "Observation": "observations",
    "ObservationKind": "observations",
    "ObservationLog": "observations",
    "DependencyRemovalPass": "phase_dependencies",
    "MemoryReductionPass": "phase_memory",
    "OffloadPass": "phase_offload",
    "OptimizationContext": "session",
    "OptimizationPass": "passes",
    "P2GO": "pipeline",
    "P2GOResult": "pipeline",
    "SwitchRun": "pipeline",
    "FleetResult": "fleet",
    "FleetSwitch": "fleet",
    "SwitchSpec": "fleet",
    "build_fabric": "fleet",
    "run_fleet": "fleet",
    "render_fleet_report": "report",
    "ContinuousOptimizer": "serve",
    "FeedSource": "serve",
    "GeneratorFeed": "serve",
    "LineFeed": "serve",
    "ServeResult": "serve",
    "ServeStats": "serve",
    "SocketFeed": "serve",
    "SwapEvent": "serve",
    "TraceFeed": "serve",
    "format_packet_line": "serve",
    "parse_packet_line": "serve",
    "serve_forever": "serve",
    "render_serve_report": "report",
    "PassManager": "passes",
    "PassResult": "passes",
    "Phase": "observations",
    "PhaseOutcome": "passes",
    "Profile": "profiler",
    "Profiler": "profiler",
    "ProfilingRun": "profiler",
    "SessionCounters": "session",
    "SessionStore": "store",
    "StoreCounters": "store",
    "resolve_store": "store",
    "default_store_root": "store",
    "resolve_workers": "session",
    "trace_fingerprint": "session",
    "instrument": "instrument",
    "optimize": "pipeline",
    "profile_program": "profiler",
    "render_report": "report",
    "run_seed": "seed_pipeline",
    "stage_table": "report",
    "summary_line": "report",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(
        importlib.import_module(f"repro.core.{module_name}"), name
    )
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
