"""Runtime detection of dependency-removal violations.

§3.2's alternative to programmer review: "If the first table hits, we
could apply a new table that matches on the same fields as the second
table and triggers a notification to the controller, reporting the
dependency.  Still, this approach only detects the problem."

Implemented as an opt-in transform: after phase 2 relocates table B into
table A's miss branch, :func:`add_dependency_guard` installs a *guard
table* in A's **hit** branch that matches on B's key fields.  A packet
that hits A *and* would have matched B is exactly a packet on which the
removed dependency manifests — the guard notifies the controller instead
of silently mis-processing nothing (the packet's data-plane treatment is
unchanged; mitigation is future work, as the paper says).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import OptimizationError
from repro.p4.actions import Action, SendToController
from repro.p4.control import Apply, Seq, find_apply
from repro.p4.program import Program
from repro.p4.tables import Table
from repro.sim.runtime import RuntimeConfig

#: Controller reason code carried by guard notifications.
GUARD_REASON = 0xDE


def guard_table_name(src: str, dst: str) -> str:
    return f"p2go_guard__{src}__{dst}"


def guard_action_name(src: str, dst: str) -> str:
    return f"p2go_guard_notify__{src}__{dst}"


@dataclass
class DependencyGuard:
    """Handle to an installed guard."""

    src: str
    dst: str
    table: str
    action: str


def add_dependency_guard(
    program: Program, src: str, dst: str
) -> Tuple[Program, DependencyGuard]:
    """Install a guard for the removed dependency ``src -> dst``.

    Requires the phase-2 shape: ``dst`` applied inside ``src``'s miss
    branch.  The guard table copies ``dst``'s match keys, sits in
    ``src``'s hit branch, and notifies the controller on a hit.
    """
    apply_src = find_apply(program.ingress, src)
    if apply_src is None:
        raise OptimizationError(f"table {src!r} not applied in the program")
    if apply_src.on_miss is None:
        raise OptimizationError(
            f"table {src!r} has no miss branch; expected the phase-2 "
            f"rewrite shape"
        )
    from repro.p4.control import tables_applied

    if dst not in tables_applied(apply_src.on_miss):
        raise OptimizationError(
            f"table {dst!r} is not inside {src!r}'s miss branch"
        )
    dst_table = program.tables.get(dst)
    if dst_table is None:
        raise OptimizationError(f"unknown table {dst!r}")
    if not dst_table.keys:
        raise OptimizationError(
            f"table {dst!r} is keyless; a guard cannot mirror its match"
        )

    table = guard_table_name(src, dst)
    action = guard_action_name(src, dst)
    if table in program.tables:
        raise OptimizationError(f"guard {table!r} already installed")

    out = program.clone()
    out.actions[action] = Action(
        name=action, primitives=(SendToController(GUARD_REASON),)
    )
    out.tables[table] = Table(
        name=table,
        keys=dst_table.keys,
        actions=(action,),
        default_action="NoAction",
        size=dst_table.size,
    )
    new_apply_src = find_apply(out.ingress, src)
    assert new_apply_src is not None
    guard_apply = Apply(table)
    if new_apply_src.on_hit is None:
        new_apply_src.on_hit = guard_apply
    else:
        new_apply_src.on_hit = Seq([new_apply_src.on_hit, guard_apply])
    out.validate()
    return out, DependencyGuard(src=src, dst=dst, table=table, action=action)


def mirror_guard_entries(
    config: RuntimeConfig, guard: DependencyGuard
) -> RuntimeConfig:
    """Clone the guarded table's entries into the guard table.

    The guard matches exactly when ``dst`` would have matched, so its
    rule set is ``dst``'s rule set with the notify action substituted.
    """
    out = config.clone()
    for entry in config.entries_for(guard.dst):
        out.add_entry(
            guard.table,
            entry.match,
            guard.action,
            action_args=(),
            priority=entry.priority,
        )
    return out


def guard_notifications(results: Sequence) -> List[int]:
    """Packet indices whose traversal raised a guard notification."""
    return [
        r.index
        for r in results
        if r.to_controller and r.controller_reason == GUARD_REASON
    ]
