"""Phase 1 — building the program profile (§3.1).

P2GO loads the instrumented program into the simulator, installs the
match-action rules, replays the traffic trace, and infers from the marked
packets: (i) each table's hit rate, and (ii) the sets of actions applied
to the same packet (non-exclusive actions, Table 1).

Replay goes through the simulator's batched fast path
(:meth:`~repro.sim.switch.BehavioralSwitch.process_many`): match
structures compile once per run, stateless traversals are served from
the flow-result cache, and the run's :class:`~repro.sim.perf.PerfCounters`
ride along on :class:`ProfilingRun` / :meth:`Profiler.profile_trace`.
The cache memoizes only what the profile can tolerate: verdicts replay
onto each packet's own parsed headers, so the per-packet profiling bits,
execution steps, and forwarding decisions the profile is built from are
bit-identical with the cache on or off (``enable_flow_cache=False`` on
the :class:`~repro.sim.runtime.RuntimeConfig` forces the uncached
interpreter; ``tests/test_profiling_engine.py`` pins the equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.instrument import InstrumentedProgram, instrument
from repro.p4.program import Program
from repro.sim.perf import PerfCounters
from repro.sim.runtime import RuntimeConfig
from repro.sim.switch import BehavioralSwitch
from repro.traffic.generators import TracePacket

ActionPair = Tuple[str, str]  # (table, action)


@dataclass
class Profile:
    """The execution profile of one program on one trace."""

    program_name: str
    total_packets: int
    apply_counts: Dict[str, int]
    hit_counts: Dict[str, int]
    action_counts: Dict[ActionPair, int]
    nonexclusive_sets: Set[FrozenSet[ActionPair]]
    #: Per-packet forwarding decisions (egress, dropped, to_controller) —
    #: used by behaviour-preservation checks.
    decisions: Tuple[Tuple[int, bool, bool], ...] = ()
    #: Distinct per-packet applied-table sets -> packet counts.  Per-table
    #: apply/hit counts cannot answer "how many packets traversed *any* of
    #: these tables" when the tables are reached by disjoint packet sets
    #: (summing double-counts, taking the max undercounts); the drift
    #: detector's controller-load re-check needs the true union, so the
    #: profiler keeps the set-valued aggregate (bounded by the number of
    #: distinct table combinations the control flow can produce).
    apply_sets: Dict[FrozenSet[str], int] = dc_field(default_factory=dict)

    def hit_rate(self, table: str) -> float:
        """Fraction of all packets that *matched* the table."""
        if self.total_packets == 0:
            return 0.0
        return self.hit_counts.get(table, 0) / self.total_packets

    def apply_rate(self, table: str) -> float:
        """Fraction of all packets the table was applied to (hit or miss)."""
        if self.total_packets == 0:
            return 0.0
        return self.apply_counts.get(table, 0) / self.total_packets

    def traversal_rate(self, tables) -> float:
        """Fraction of all packets that traversed *any* of ``tables``
        (the union over packets, not a per-table aggregate — disjoint
        packet sets reaching different tables are each counted once)."""
        if self.total_packets == 0:
            return 0.0
        wanted = frozenset(tables)
        covered = sum(
            count
            for applied, count in self.apply_sets.items()
            if applied & wanted
        )
        return covered / self.total_packets

    def actions_coapplied(self, a: ActionPair, b: ActionPair) -> bool:
        """Were both actions ever applied to the same packet?"""
        return any(
            a in group and b in group for group in self.nonexclusive_sets
        )

    def action_coapplied_with_table(self, a: ActionPair, table: str) -> bool:
        """Was ``a`` ever applied to a packet that also traversed
        ``table`` (any of its actions, including the default)?"""
        for group in self.nonexclusive_sets:
            if a not in group:
                continue
            if any(pair[0] == table for pair in group):
                return True
        return False

    def hit_coapplied_with_table(self, src: str, table: str) -> bool:
        """Was some packet a *hit* in ``src`` while also traversing
        ``table`` (any action, including the default)?

        Phase 2's miss-branch relocation suppresses ``table`` exactly on
        the packets where ``src`` hits, so any such packet proves the
        rewrite would change behaviour on this trace.
        """
        for group in self.nonexclusive_sets:
            if not any(
                pair[0] == src and pair in self._hit_pairs
                for pair in group
            ):
                continue
            if any(pair[0] == table for pair in group):
                return True
        return False

    def hit_action_sets(self) -> List[FrozenSet[ActionPair]]:
        """Observed sets restricted to *hit* actions (Table 1's view)."""
        hits = {
            pair for pair, count in self.action_counts.items()
            if count > 0 and self._is_hit_pair(pair)
        }
        filtered: Set[FrozenSet[ActionPair]] = set()
        for group in self.nonexclusive_sets:
            reduced = frozenset(pair for pair in group if pair in hits)
            if reduced:
                filtered.add(reduced)
        return sorted(filtered, key=lambda g: (len(g), sorted(g)))

    def _is_hit_pair(self, pair: ActionPair) -> bool:
        # Hit pairs are recorded with hit=True during profiling; we keep a
        # side index of pairs seen as hits.
        return pair in self._hit_pairs

    _hit_pairs: Set[ActionPair] = dc_field(default_factory=set)

    def same_behavior_as(self, other: "Profile") -> bool:
        """Profile equality as §3.3's verification defines it: identical
        hit rates, action applications, non-exclusive sets, and per-packet
        forwarding decisions."""
        return (
            self.total_packets == other.total_packets
            and self.hit_counts == other.hit_counts
            and self.apply_counts == other.apply_counts
            and self.action_counts == other.action_counts
            and self.nonexclusive_sets == other.nonexclusive_sets
            and self.decisions == other.decisions
        )

    def behavior_diff(self, other: "Profile") -> List[str]:
        """Human-readable reasons two profiles differ (for observations)."""
        reasons: List[str] = []
        if self.total_packets != other.total_packets:
            reasons.append(
                f"packet counts differ ({self.total_packets} vs "
                f"{other.total_packets})"
            )
        tables = set(self.hit_counts) | set(other.hit_counts)
        for table in sorted(tables):
            a = self.hit_counts.get(table, 0)
            b = other.hit_counts.get(table, 0)
            if a != b:
                reasons.append(
                    f"hit count of {table} changed: {a} -> {b}"
                )
        if self.nonexclusive_sets != other.nonexclusive_sets:
            gained = other.nonexclusive_sets - self.nonexclusive_sets
            if gained:
                reasons.append(
                    f"{len(gained)} new non-exclusive action set(s) appeared"
                )
        if self.decisions != other.decisions:
            changed = sum(
                1 for x, y in zip(self.decisions, other.decisions) if x != y
            )
            if changed:
                reasons.append(
                    f"forwarding decisions changed for {changed} packet(s)"
                )
        return reasons


@dataclass
class ProfilingRun:
    """A profile plus the artifacts that produced it."""

    profile: Profile
    instrumented: InstrumentedProgram
    switch: BehavioralSwitch

    @property
    def perf(self) -> PerfCounters:
        """The replay's perf counters (packets/s, cache hit rate, …)."""
        return self.switch.perf


class Profiler:
    """Profiles a program by instrumented trace replay."""

    def __init__(self, program: Program, config: RuntimeConfig):
        self.program = program
        self.config = config

    def run(self, trace: Sequence[TracePacket]) -> ProfilingRun:
        instrumented = instrument(self.program)
        adapted = instrumented.adapt_config(self.config)
        switch = BehavioralSwitch(instrumented.program, adapted)
        results = switch.process_trace(trace)

        apply_counts: Dict[str, int] = {}
        hit_counts: Dict[str, int] = {}
        action_counts: Dict[ActionPair, int] = {}
        groups: Set[FrozenSet[ActionPair]] = set()
        hit_pairs: Set[ActionPair] = set()
        decisions: List[Tuple[int, bool, bool]] = []
        apply_sets: Dict[FrozenSet[str], int] = {}

        for result in results:
            pairs = instrumented.decode_result_bits(result.headers)
            per_packet: Set[ActionPair] = set(pairs)
            if per_packet:
                groups.add(frozenset(per_packet))
            # Hit/miss resolution comes from the execution steps (a bit
            # tells *that* the action ran; the step log tells us whether it
            # was the default).
            hit_tables = set()
            for step in result.steps:
                apply_counts[step.table] = apply_counts.get(step.table, 0) + 1
                if step.hit:
                    hit_tables.add(step.table)
                    hit_counts[step.table] = hit_counts.get(step.table, 0) + 1
            for pair in per_packet:
                action_counts[pair] = action_counts.get(pair, 0) + 1
                if pair[0] in hit_tables:
                    hit_pairs.add(pair)
            if result.steps:
                applied = frozenset(step.table for step in result.steps)
                apply_sets[applied] = apply_sets.get(applied, 0) + 1
            decisions.append(result.forwarding_decision())

        profile = Profile(
            program_name=self.program.name,
            total_packets=len(results),
            apply_counts=apply_counts,
            hit_counts=hit_counts,
            action_counts=action_counts,
            nonexclusive_sets=groups,
            decisions=tuple(decisions),
            apply_sets=apply_sets,
        )
        profile._hit_pairs = hit_pairs
        return ProfilingRun(
            profile=profile, instrumented=instrumented, switch=switch
        )

    def profile(self, trace: Sequence[TracePacket]) -> Profile:
        return self.run(trace).profile

    def profile_trace(
        self,
        trace: Sequence[TracePacket],
        workers: Optional[int] = None,
    ) -> Tuple[Profile, PerfCounters]:
        """Batched profiling plus the engine's perf counters.

        ``workers`` > 1 shards the trace by flow key across a process
        pool (:func:`repro.sim.fastpath.shard_trace_by_flow`) and merges
        the per-shard profiles deterministically — counts sum, action
        sets and hit pairs union, per-packet decisions scatter back by
        original index.  Only register-free programs qualify (per-flow
        order is preserved inside a shard, but cross-flow order is not,
        so any register interaction could diverge); everything else
        falls back to the serial replay, as does a trace the key
        generator cannot shard.  The merged result is identical to the
        serial profile — ``tests/test_fastpath.py`` pins it.
        """
        if workers is not None and workers > 1:
            sharded = self._profile_sharded(trace, workers)
            if sharded is not None:
                return sharded
        run = self.run(trace)
        return run.profile, run.perf

    def _profile_sharded(
        self, trace: Sequence[TracePacket], workers: int
    ) -> Optional[Tuple[Profile, PerfCounters]]:
        from repro.sim.fastpath import shard_trace_by_flow

        if self.program.registers:
            return None  # stateful: cross-flow order must be preserved
        packets = list(trace)
        shard_indices = shard_trace_by_flow(self.program, packets, workers)
        if shard_indices is None:
            return None
        shard_indices = [s for s in shard_indices if s]
        if len(shard_indices) < 2:
            run = self.run(packets)
            return run.profile, run.perf

        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=len(shard_indices)) as pool:
            futures = [
                pool.submit(
                    _profile_shard_task,
                    self.program,
                    self.config,
                    [packets[i] for i in indices],
                )
                for indices in shard_indices
            ]
            parts = [f.result() for f in futures]

        merged = Profile(
            program_name=self.program.name,
            total_packets=len(packets),
            apply_counts={},
            hit_counts={},
            action_counts={},
            nonexclusive_sets=set(),
            decisions=(),
        )
        decisions: List[Optional[Tuple[int, bool, bool]]] = (
            [None] * len(packets)
        )
        perf = PerfCounters()
        for indices, (profile, shard_perf) in zip(shard_indices, parts):
            for table, n in profile.apply_counts.items():
                merged.apply_counts[table] = (
                    merged.apply_counts.get(table, 0) + n
                )
            for table, n in profile.hit_counts.items():
                merged.hit_counts[table] = (
                    merged.hit_counts.get(table, 0) + n
                )
            for pair, n in profile.action_counts.items():
                merged.action_counts[pair] = (
                    merged.action_counts.get(pair, 0) + n
                )
            merged.nonexclusive_sets |= profile.nonexclusive_sets
            merged._hit_pairs |= profile._hit_pairs
            for applied, n in profile.apply_sets.items():
                merged.apply_sets[applied] = (
                    merged.apply_sets.get(applied, 0) + n
                )
            for local_i, original_i in enumerate(indices):
                decisions[original_i] = profile.decisions[local_i]
            perf.packets += shard_perf.packets
            perf.cache_hits += shard_perf.cache_hits
            perf.cache_misses += shard_perf.cache_misses
            perf.cache_invalidations += shard_perf.cache_invalidations
            perf.cache_evictions += shard_perf.cache_evictions
            for table, n in shard_perf.table_lookups.items():
                perf.table_lookups[table] = (
                    perf.table_lookups.get(table, 0) + n
                )
            perf.timed_packets += shard_perf.timed_packets
            # Wall clock, not CPU time: shards replay concurrently.
            perf.elapsed_seconds = max(
                perf.elapsed_seconds, shard_perf.elapsed_seconds
            )
        merged.decisions = tuple(decisions)
        return merged, perf


def _profile_shard_task(
    program: Program,
    config: RuntimeConfig,
    packets: Sequence[TracePacket],
) -> Tuple[Profile, PerfCounters]:
    """Worker-side shard replay (module-level so it pickles)."""
    run = Profiler(program, config).run(packets)
    return run.profile, run.perf


def profile_program(
    program: Program,
    config: RuntimeConfig,
    trace: Sequence[TracePacket],
) -> Profile:
    """One-call convenience wrapper."""
    return Profiler(program, config).profile(trace)
