"""Fleet coordinator: the paper's network-wide "one big switch" (§6).

P2GO optimizes one switch at a time; a datacenter fabric runs dozens of
pipeline variants that share most of their programs.  The coordinator
drives N per-switch :class:`~repro.core.pipeline.SwitchRun` units —
variants of the evaluation programs with per-switch traffic — on a
process pool against **one shared persistent store**
(:class:`~repro.core.store.SessionStore`), so a probe any switch has
paid for answers every other switch's identical probe from disk, and
the store's probe leases dedupe probes that are *in flight* in two
processes at once (the cross-process analogue of ``probe_many``'s
in-process dedup).

Contract, mirroring PR 4's parallel-probing contract:

* **Determinism.**  Each switch's result is canonically identical to a
  standalone ``P2GO.run()`` over the same inputs, for any coordinator
  worker count, with or without the shared store — sharing changes who
  pays for a probe (``session_counters`` provenance), never the
  optimization outcome.  Results merge in submission order.
* **Exactly-once probing.**  With leases on, two processes never both
  execute the same fingerprinted probe (one claims, the other waits
  and gets a disk hit), so the fleet-wide execution count equals the
  number of *distinct* probes the fabric asks — the number the fleet
  benchmark gates on.  The only exception is a reaped lease (a holder
  dead past the TTL), where re-execution is the correct degradation.

The per-switch sessions run serial probes (``workers=1``): fleet
parallelism is at switch granularity, which avoids nested process
pools and keeps every child process a pure function of its spec.

``tests/test_fleet.py`` pins the contract; ``benchmarks/bench_fleet.py``
measures fleet-vs-independent wall clock and cross-switch reuse and
gates both in CI via the committed ``BENCH_fleet.json``.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.pipeline import P2GOResult, SwitchRun
from repro.core.session import (
    OptimizationContext,
    config_fingerprint,
    program_fingerprint,
    resolve_workers,
)
from repro.core.store import DEFAULT_LEASE_TTL, SessionStore, resolve_store
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.target.model import TargetModel
from repro.traffic.generators import TracePacket

__all__ = [
    "DEFAULT_FAMILIES",
    "FleetResult",
    "FleetSwitch",
    "SwitchSpec",
    "build_fabric",
    "family_inputs",
    "run_fleet",
    "switch_fingerprint",
]

#: Program families a default fabric cycles through — the §4 evaluation
#: scenarios the ROADMAP names for the fleet story.
DEFAULT_FAMILIES = ("enterprise", "nat_gre", "sourceguard", "cgnat")


@dataclass
class SwitchSpec:
    """One switch of a fabric: concrete, picklable pipeline inputs.

    Fully self-contained on purpose: a spec crosses a process boundary,
    and "bit-identical to a standalone run" is only checkable when the
    spec *is* the standalone run's inputs.
    """

    name: str
    program: Program
    config: RuntimeConfig
    trace: List[TracePacket]
    target: TargetModel
    phases: Tuple[int, ...] = (2, 3, 4)
    fastpath: Optional[bool] = None

    def build_run(self, lease_probes: bool = False) -> SwitchRun:
        """This spec as an executable :class:`SwitchRun` (serial
        probes — fleet parallelism is at switch granularity)."""
        return SwitchRun(
            self.program,
            self.config,
            self.trace,
            self.target,
            name=self.name,
            phases=self.phases,
            workers=1,
            fastpath=self.fastpath,
            lease_probes=lease_probes,
        )


def family_inputs(
    family: str, packets: Optional[int] = None, trace_seed: int = 0
) -> Tuple[Program, RuntimeConfig, List[TracePacket], TargetModel]:
    """Concrete pipeline inputs for one evaluation-program family:
    ``(program, config, trace, target)``.  ``packets`` overrides the
    family's default trace length; ``trace_seed`` feeds its traffic
    generator.  Shared by the fleet builder and the design-space
    explorer so both sweep the same program corpus."""
    module = importlib.import_module(f"repro.programs.{family}")
    program = module.build_program()
    try:
        config = module.runtime_config(program)
    except TypeError:
        config = module.runtime_config()
    if packets is None:
        trace = module.make_trace(seed=trace_seed)
    else:
        trace = module.make_trace(packets, seed=trace_seed)
    return program, config, trace, module.TARGET


def build_fabric(
    size: int,
    families: Sequence[str] = DEFAULT_FAMILIES,
    seed: int = 0,
    packets: Optional[int] = None,
) -> List[SwitchSpec]:
    """A fabric of ``size`` switches cycling through ``families``.

    Switch ``i`` runs family ``families[i % len(families)]`` with a
    per-switch trace (``seed + i`` feeds the family's traffic
    generator), modelling a datacenter row: many instances of few
    pipeline programs, each seeing its own traffic.  Same-family
    switches therefore share compile fingerprints (the cross-switch
    reuse the shared store harvests) while their profiles stay
    per-switch.  ``packets`` overrides each family's default trace
    length (smaller = faster fabrics for tests and CI).
    """
    if size < 1:
        raise ValueError("fabric size must be >= 1")
    if not families:
        raise ValueError("need at least one program family")
    specs = []
    for index in range(size):
        family = families[index % len(families)]
        program, config, trace, target = family_inputs(
            family, packets, seed + index
        )
        specs.append(
            SwitchSpec(
                name=f"sw{index:02d}-{family}",
                program=program,
                config=config,
                trace=trace,
                target=target,
            )
        )
    return specs


@dataclass
class FleetSwitch:
    """One switch's outcome within a fleet run."""

    name: str
    result: P2GOResult
    seconds: float


@dataclass
class FleetResult:
    """Everything one fleet run produces, in submission order."""

    switches: List[FleetSwitch]
    wall_seconds: float
    workers: int
    store_root: Optional[str]
    lease_probes: bool
    #: Aggregate cache (computed once by :meth:`aggregate`).
    _aggregate: Optional[Dict] = field(default=None, repr=False)

    def aggregate(self) -> Dict:
        """Fleet-wide totals: stages reclaimed, probe provenance,
        cross-switch disk reuse, lease contention, wall clock."""
        if self._aggregate is not None:
            return self._aggregate
        calls = executions = disk_hits = 0
        lease = {
            "lease_claims": 0,
            "lease_waits": 0,
            "lease_wait_hits": 0,
            "leases_reaped": 0,
        }
        stages_before = stages_after = 0
        for switch in self.switches:
            result = switch.result
            stages_before += result.stages_before
            stages_after += result.stages_after
            counters = result.session_counters
            if counters is not None:
                calls += counters.compile_calls + counters.profile_calls
                executions += (
                    counters.compile_executions + counters.profile_executions
                )
                disk_hits += (
                    counters.compile_disk_hits + counters.profile_disk_hits
                )
            if result.store_stats is not None:
                store_counters = result.store_stats["counters"]
                for key in lease:
                    lease[key] += store_counters.get(key, 0)
        self._aggregate = {
            "switches": len(self.switches),
            "workers": self.workers,
            "store_root": self.store_root,
            "lease_probes": self.lease_probes,
            "stages_before": stages_before,
            "stages_after": stages_after,
            "stages_reclaimed": stages_before - stages_after,
            "probe_calls": calls,
            "probe_executions": executions,
            "probe_disk_hits": disk_hits,
            "disk_reuse_rate": disk_hits / calls if calls else 0.0,
            "switch_seconds": round(
                sum(switch.seconds for switch in self.switches), 3
            ),
            "wall_seconds": round(self.wall_seconds, 3),
            **lease,
        }
        return self._aggregate


def switch_fingerprint(result: P2GOResult) -> Tuple:
    """Canonical identity of one switch's optimization outcome — what
    "bit-identical to a standalone run" compares (provenance counters
    deliberately excluded: sharing changes who pays, not the answer)."""
    return (
        program_fingerprint(result.optimized_program),
        config_fingerprint(result.final_config),
        tuple(result.stage_history()),
        result.offloaded_tables,
    )


def _resolve_fleet_store(
    store: Union[SessionStore, str, bool, None],
) -> Optional[str]:
    """The shared store *root* (a path crosses process boundaries; each
    worker opens its own :class:`SessionStore` on it) — semantics match
    :func:`~repro.core.store.resolve_store`."""
    resolved = resolve_store(store)
    return None if resolved is None else str(resolved.root)


def _fleet_task(
    spec: SwitchSpec,
    store_root: Optional[str],
    lease_probes: bool,
    lease_ttl: float,
) -> FleetSwitch:
    """One switch end to end (runs inside a pool worker): open this
    process's handle on the shared store, execute, time it."""
    t0 = time.perf_counter()
    store = (
        SessionStore(store_root, lease_ttl=lease_ttl)
        if store_root is not None
        else None
    )
    run = spec.build_run(lease_probes=lease_probes and store is not None)
    result = run.execute(store=store)
    return FleetSwitch(
        name=spec.name,
        result=result,
        seconds=time.perf_counter() - t0,
    )


def run_fleet(
    specs: Sequence[SwitchSpec],
    store: Union[SessionStore, str, bool, None] = None,
    workers: Optional[int] = None,
    lease_probes: bool = True,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> FleetResult:
    """Optimize a fabric of switches against one shared store.

    ``specs`` run on a process pool of ``workers`` (None defers to
    ``$P2GO_WORKERS``, then 1 — the serial path; platforms without
    multiprocessing fall back to threads exactly like the session's
    batch probes).  Results are merged in **submission order**, so the
    returned per-switch results are independent of the worker count.

    ``store`` follows :func:`~repro.core.store.resolve_store` semantics
    (instance / path / ``None`` → ``$P2GO_STORE`` / ``False`` → off);
    every worker process opens its own handle on the same root.
    ``lease_probes`` (default on) dedupes in-flight probes across those
    processes through store-level leases; it is meaningless — and
    disabled — without a store.
    """
    specs = list(specs)
    workers = resolve_workers(workers)
    store_root = _resolve_fleet_store(store)
    t0 = time.perf_counter()
    if workers == 1 or len(specs) <= 1:
        switches = [
            _fleet_task(spec, store_root, lease_probes, lease_ttl)
            for spec in specs
        ]
    else:
        pool = OptimizationContext._make_pool(
            min(workers, len(specs)), use_processes=True
        )
        try:
            futures = [
                pool.submit(
                    _fleet_task, spec, store_root, lease_probes, lease_ttl
                )
                for spec in specs
            ]
            switches = [future.result() for future in futures]
        finally:
            pool.shutdown(wait=True)
    return FleetResult(
        switches=switches,
        wall_seconds=time.perf_counter() - t0,
        workers=workers,
        store_root=store_root,
        lease_probes=lease_probes and store_root is not None,
    )
