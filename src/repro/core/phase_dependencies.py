"""Phase 2 — removing dependencies that do not manifest (§3.2).

Candidates are dependencies on the longest path of the TDG (only those can
shorten the pipeline).  A candidate is removable when none of its causes
manifests in the profile: for an ACTION cause, the two conflicting actions
were never applied to the same packet; for a MATCH cause, the writing
action never co-executed with *any* application of the consumer.

The removal rewrite is the paper's: "adds a conditional statement such
that one of the dependent tables is only applied if the other misses."
Concretely, the consumer's guarded apply is relocated into the source
table's miss branch — legal only when the parser proves the consumer's
guard implies the source's guard (e.g. every DHCP packet is a UDP packet),
so no packet is orphaned.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dependencies import (
    Dependency,
    DependencyKind,
)
from repro.core.observations import (
    Observation,
    ObservationKind,
    Phase,
)
from repro.core.passes import PassResult
from repro.core.profiler import Profile
from repro.core.session import OptimizationContext
from repro.exceptions import OptimizationError
from repro.p4.control import (
    Apply,
    ControlNode,
    If,
    Seq,
    find_apply,
    iter_nodes,
)
from repro.p4.expressions import LNot, ValidExpr
from repro.p4.program import Program
from repro.target.compiler import CompileResult


def dependency_manifests(dep: Dependency, profile: Profile) -> bool:
    """Does any cause of this dependency show up in the profile?"""
    for cause in dep.causes:
        if cause.kind in (DependencyKind.SUCCESSOR, DependencyKind.REVERSE):
            # Pure ordering constraints (no stage separation); the
            # apply-on-miss rewrite preserves execution order, so these
            # never block a removal.
            continue
        src_pair = (dep.src, cause.src_action)
        if cause.kind is DependencyKind.ACTION:
            assert cause.dst_action is not None
            if profile.actions_coapplied(
                src_pair, (dep.dst, cause.dst_action)
            ):
                return True
        else:  # MATCH: the consumer's match phase reads the written field.
            if profile.action_coapplied_with_table(src_pair, dep.dst):
                return True
    return False


@dataclass
class RemovableDependency:
    """A phase-2 candidate with the evidence that justifies removing it."""

    dependency: Dependency
    evidence: str


def find_removal_candidates(
    compile_result: CompileResult, profile: Profile
) -> List[RemovableDependency]:
    """Unmanifested dependencies on the TDG's longest path."""
    candidates = []
    for dep in compile_result.dependency_graph.critical_dependencies():
        if dep.min_stage_separation == 0:
            continue  # zero stage separation already (successor/reverse)
        if dependency_manifests(dep, profile):
            continue
        # The rewrite makes dst run only when src misses, i.e. it
        # suppresses dst on every src-hit packet.  Unmanifested causes
        # are not enough: if any profiled packet hit src while dst was
        # applied (even just its default action), relocation would
        # change that packet's traversal — found by differential
        # fuzzing, where generated tables hit and apply in combinations
        # the hand-written examples never exercise.
        if profile.hit_coapplied_with_table(dep.src, dep.dst):
            continue
        causes = ", ".join(
            f"{c.src_action}/{c.dst_action or '<match>'} on "
            f"{{{', '.join(sorted(c.fields)) or ', '.join(sorted(c.registers))}}}"
            for c in dep.causes
            if c.kind
            not in (DependencyKind.SUCCESSOR, DependencyKind.REVERSE)
        )
        candidates.append(
            RemovableDependency(
                dependency=dep,
                evidence=(
                    f"no packet in the trace exercised the conflicting "
                    f"action pairs ({causes})"
                ),
            )
        )
    candidates.sort(key=lambda c: (c.dependency.src, c.dependency.dst))
    return candidates


# ----------------------------------------------------------------------
# The rewrite


def _parents(root: ControlNode) -> Dict[int, ControlNode]:
    """Map id(node) -> parent for the whole tree."""
    parents: Dict[int, ControlNode] = {}
    for node in iter_nodes(root):
        for child in node.children():
            parents[id(child)] = node
    return parents


def _relocation_unit(
    root: ControlNode, apply_node: Apply, parents: Dict[int, ControlNode]
) -> ControlNode:
    """The guarded subtree to relocate: the apply plus any enclosing Ifs
    whose entire body is just this chain (e.g. ``if valid(dhcp)
    apply(ACL_DHCP)``)."""
    unit: ControlNode = apply_node
    while True:
        parent = parents.get(id(unit))
        if (
            isinstance(parent, If)
            and parent.then_node is unit
            and parent.else_node is None
        ):
            unit = parent
            continue
        return unit


def _enclosing_unit(
    node: ControlNode, parents: Dict[int, ControlNode]
) -> ControlNode:
    """Climb through If wrappers to the element sitting in a Seq."""
    unit = node
    while True:
        parent = parents.get(id(unit))
        if isinstance(parent, If):
            unit = parent
            continue
        return unit


def _guard_validity(
    node: ControlNode, parents: Dict[int, ControlNode]
) -> Optional[Set[Tuple[str, bool]]]:
    """Validity constraints from the guards enclosing ``node``.

    Returns None when a guard is not a plain validity test (we cannot
    reason about arbitrary conditions with the parser alone).
    """
    constraints: Set[Tuple[str, bool]] = set()
    current = node
    while True:
        parent = parents.get(id(current))
        if parent is None:
            return constraints
        if isinstance(parent, If):
            cond = parent.condition
            if isinstance(cond, ValidExpr):
                if parent.then_node is current:
                    constraints.add((cond.header, True))
                else:
                    constraints.add((cond.header, False))
            elif isinstance(cond, LNot) and isinstance(
                cond.operand, ValidExpr
            ):
                if parent.then_node is current:
                    constraints.add((cond.operand.header, False))
                else:
                    constraints.add((cond.operand.header, True))
            else:
                return None
        if isinstance(parent, Apply):
            # Inside someone's hit/miss branch: runtime-dependent guard.
            return None
        current = parent


def _implies(
    program: Program,
    premise: Set[Tuple[str, bool]],
    conclusion: Set[Tuple[str, bool]],
) -> bool:
    """Does ``premise`` imply ``conclusion`` for every parseable packet?"""
    if program.parser is None:
        return conclusion <= premise
    for header_set in program.parser.valid_header_sets():
        if all((h in header_set) == v for h, v in premise):
            if not all((h in header_set) == v for h, v in conclusion):
                return False
    return True


def remove_dependency(program: Program, dep: Dependency) -> Program:
    """Apply the §3.2 rewrite: ``dep.dst`` runs only if ``dep.src`` misses.

    Raises :class:`OptimizationError` when the rewrite cannot be proven
    safe (non-adjacent sites, non-validity guards, or the consumer's guard
    not implying the source's).
    """
    root = program.ingress
    apply_src = find_apply(root, dep.src)
    apply_dst = find_apply(root, dep.dst)
    if apply_src is None or apply_dst is None:
        raise OptimizationError(
            f"tables {dep.src!r}/{dep.dst!r} not found in the control flow"
        )
    parents = _parents(root)

    dst_unit = _relocation_unit(root, apply_dst, parents)
    src_unit = _enclosing_unit(apply_src, parents)
    dst_outer = _enclosing_unit(dst_unit, parents)

    seq = parents.get(id(src_unit))
    if not isinstance(seq, Seq) or parents.get(id(dst_outer)) is not seq:
        raise OptimizationError(
            f"tables {dep.src!r} and {dep.dst!r} are not siblings in the "
            "same control sequence; relocation unsupported"
        )
    if dst_outer is not dst_unit:
        raise OptimizationError(
            f"the apply of {dep.dst!r} is not a relocatable guarded unit"
        )
    src_index = _index_of(seq, src_unit)
    dst_index = _index_of(seq, dst_unit)
    if dst_index != src_index + 1:
        raise OptimizationError(
            f"tables {dep.src!r} and {dep.dst!r} are not adjacent in the "
            "control flow; relocating would reorder other logic"
        )

    src_guard = _guard_validity(apply_src, parents)
    dst_guard = _guard_validity(apply_dst, parents)
    if src_guard is None or dst_guard is None:
        raise OptimizationError(
            "guards are not plain validity tests; relocation safety "
            "cannot be established"
        )
    if not _implies(program, dst_guard, src_guard):
        raise OptimizationError(
            f"guard of {dep.dst!r} does not imply guard of {dep.src!r}; "
            f"relocating into the miss branch could orphan packets"
        )

    # Build the rewritten tree: dst_unit moves into apply_src.on_miss and
    # disappears from the sequence.
    new_program = program.clone()
    new_root = new_program.ingress
    new_apply_src = find_apply(new_root, dep.src)
    assert new_apply_src is not None
    new_parents = _parents(new_root)
    new_dst_apply = find_apply(new_root, dep.dst)
    assert new_dst_apply is not None
    new_dst_unit = _relocation_unit(new_root, new_dst_apply, new_parents)
    new_seq = new_parents[id(_enclosing_unit(new_apply_src, new_parents))]
    assert isinstance(new_seq, Seq)

    remaining = [n for n in new_seq.nodes if n is not new_dst_unit]
    new_seq.nodes = tuple(remaining)
    if new_apply_src.on_miss is None:
        new_apply_src.on_miss = new_dst_unit
    else:
        new_apply_src.on_miss = Seq(
            [new_apply_src.on_miss, new_dst_unit]
        )
    new_program.validate()
    return new_program


def _index_of(seq: Seq, node: ControlNode) -> int:
    for i, child in enumerate(seq.nodes):
        if child is node:
            return i
    raise OptimizationError("node not found in its sequence")


@dataclass
class DependencyRemovalResult:
    """Outcome of one phase-2 pass."""

    program: Program
    removed: Optional[Dependency]
    observations: List[Observation]


def run_phase(
    program: Program,
    compile_result: CompileResult,
    profile: Profile,
) -> DependencyRemovalResult:
    """Remove a single unmanifested dependency (the paper removes one at a
    time to keep changes tractable for the programmer)."""
    observations: List[Observation] = []
    candidates = find_removal_candidates(compile_result, profile)
    if not candidates:
        observations.append(
            Observation(
                phase=Phase.REMOVE_DEPENDENCIES,
                kind=ObservationKind.NOTE,
                title="no removable dependencies",
                details=(
                    "every dependency on the critical path manifests in "
                    "the profile"
                ),
            )
        )
        return DependencyRemovalResult(
            program=program, removed=None, observations=observations
        )
    for candidate in candidates:
        dep = candidate.dependency
        try:
            rewritten = remove_dependency(program, dep)
        except OptimizationError as exc:
            observations.append(
                Observation(
                    phase=Phase.REMOVE_DEPENDENCIES,
                    kind=ObservationKind.REJECTED,
                    title=(
                        f"dependency {dep.src} -> {dep.dst} unmanifested "
                        "but not removable"
                    ),
                    details=str(exc),
                )
            )
            continue
        observations.append(
            Observation(
                phase=Phase.REMOVE_DEPENDENCIES,
                kind=ObservationKind.OPTIMIZATION,
                title=f"removed dependency {dep.src} -> {dep.dst}",
                details=(
                    f"{dep.dst} is now applied only if {dep.src} misses; "
                    f"verify that no real packet can match both. "
                    f"Evidence: {candidate.evidence}"
                ),
                evidence={
                    "kind": dep.kind.value,
                    "src": dep.src,
                    "dst": dep.dst,
                },
            )
        )
        return DependencyRemovalResult(
            program=rewritten, removed=dep, observations=observations
        )
    return DependencyRemovalResult(
        program=program, removed=None, observations=observations
    )


@dataclass
class DependencyRemovalPass:
    """Phase 2 as an :class:`~repro.core.passes.OptimizationPass`.

    Each round removes at most one unmanifested dependency (the paper
    removes one at a time to keep changes tractable); ``max_rounds``
    bounds how many the manager lets through.
    """

    max_rounds: int = 8
    name: str = dc_field(default="remove-dependencies", init=False)
    phase: Phase = dc_field(default=Phase.REMOVE_DEPENDENCIES, init=False)

    def run(self, ctx: OptimizationContext) -> PassResult:
        # The round's two probes — compile and trace replay of the
        # current program — are independent; one mixed batch evaluates
        # them concurrently (serially when the session has one worker).
        compiled, profiled = ctx.probe_many(
            programs=[ctx.program], variants=[(None, None)]
        )
        step = run_phase(ctx.program, compiled[0], profiled[0][0])
        if step.removed is not None:
            ctx.propose(program=step.program)
        return PassResult(
            changed=step.removed is not None,
            observations=step.observations,
        )
