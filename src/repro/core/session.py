"""The optimization session: shared, memoizing compile/profile state.

Every P2GO phase probes candidate programs by compiling them and
re-profiling them on the same trace — the halving binary search of
phase 3 and the per-candidate redirect variants of phase 4 alone account
for dozens of :func:`~repro.target.compiler.compile_program` and
:class:`~repro.core.profiler.Profiler` invocations per run, and the seed
orchestrator repeated several of them verbatim (the accepted resize was
re-profiled by the orchestrator right after phase 3 verified it; the
accepted offload variant was re-profiled right after phase 4 evaluated
it).  An :class:`OptimizationContext` makes all of that probing go
through one content-keyed memo cache, so asking the same question twice
— even with distinct but equal-content :class:`~repro.p4.program.Program`
or :class:`~repro.sim.runtime.RuntimeConfig` objects — costs a dict
lookup.

Keying:

* **Programs** are keyed by the SHA-1 of their printed DSL
  (:func:`~repro.p4.dsl.print_program` is a faithful round-trippable
  serialization; ``tests/test_dsl_roundtrip.py`` pins that).  The digest
  is cached per object, so a program is printed at most once per
  session; programs handed to the session are treated as immutable, the
  contract every phase already honours (rewrites clone).
* **Configs** are keyed by their canonical content (sorted entries,
  default overrides, register inits, engine switches) — *not* by the
  ``mutations`` stamp, so two ``restricted_to`` results with equal
  content share one cache line.
* **Profiles** are keyed by (program key, config key); the session holds
  exactly one trace, which is part of its identity.

The session also carries:

* **Invocation counters** (:class:`SessionCounters`): every
  ``compile()`` / ``profile()`` call is counted, split into memo hits
  and actual executions — the numbers ``P2GOResult`` and the pipeline
  benchmark report.
* **Per-window profiling perf**: each actual profiling replay's
  :class:`~repro.sim.perf.PerfCounters` are recorded;
  :meth:`OptimizationContext.start_perf_window` /
  :meth:`~OptimizationContext.take_perf_window` let the pass manager
  attribute replay cost to the phase that paid it.
* **Transactional state**: ``propose(program, config)`` stages a
  candidate optimization, ``commit()`` makes it the session's current
  state, ``rollback()`` discards it — so a review-hook rejection is a
  real rollback of proposed state, not a change that was silently never
  applied.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.profiler import Profile, Profiler
from repro.p4.dsl.printer import print_program
from repro.p4.program import Program
from repro.sim.perf import PerfCounters
from repro.sim.runtime import RuntimeConfig
from repro.target.compiler import CompileResult, compile_program
from repro.target.model import DEFAULT_TARGET, TargetModel
from repro.traffic.generators import TracePacket


def program_fingerprint(program: Program) -> str:
    """Content key of a program: SHA-1 of its printed DSL."""
    return hashlib.sha1(print_program(program).encode()).hexdigest()


def config_fingerprint(config: RuntimeConfig) -> Tuple:
    """Canonical, hashable content key of a runtime config.

    Deliberately excludes the ``mutations`` stamp (two equal-content
    clones must share a cache line) and is recomputed on every use, so
    in-place mutation between calls is observed.
    """
    return (
        tuple(
            sorted(
                (table, tuple(entries))
                for table, entries in config.entries.items()
                if entries
            )
        ),
        tuple(sorted(config.default_overrides.items())),
        tuple(config.register_inits),
        tuple(config.hashed_inits),
        config.enable_flow_cache,
        config.enable_compiled_tables,
        config.flow_cache_capacity,
    )


@dataclass
class SessionCounters:
    """How often the session compiled and profiled, and how often the
    memo cache answered instead."""

    #: ``compile()`` calls, total.
    compile_calls: int = 0
    #: Calls that actually ran :func:`compile_program`.
    compile_executions: int = 0
    #: ``profile()`` calls, total.
    profile_calls: int = 0
    #: Calls that actually replayed the trace.
    profile_executions: int = 0

    @property
    def compile_hits(self) -> int:
        return self.compile_calls - self.compile_executions

    @property
    def profile_hits(self) -> int:
        return self.profile_calls - self.profile_executions

    def as_dict(self) -> Dict[str, int]:
        return {
            "compile_calls": self.compile_calls,
            "compile_executions": self.compile_executions,
            "compile_hits": self.compile_hits,
            "profile_calls": self.profile_calls,
            "profile_executions": self.profile_executions,
            "profile_hits": self.profile_hits,
        }

    def render(self) -> str:
        return (
            f"compile: {self.compile_calls} calls, "
            f"{self.compile_executions} executed "
            f"({self.compile_hits} memo hits); "
            f"profile: {self.profile_calls} calls, "
            f"{self.profile_executions} executed "
            f"({self.profile_hits} memo hits)"
        )


def merge_perf(counters: Sequence[PerfCounters]) -> Optional[PerfCounters]:
    """Sum a sequence of replay counters into one (None when empty)."""
    if not counters:
        return None
    merged = PerfCounters()
    for perf in counters:
        merged.packets += perf.packets
        merged.cache_hits += perf.cache_hits
        merged.cache_misses += perf.cache_misses
        merged.cache_invalidations += perf.cache_invalidations
        merged.cache_evictions += perf.cache_evictions
        merged.elapsed_seconds += perf.elapsed_seconds
        merged.timed_packets += perf.timed_packets
        for table, count in perf.table_lookups.items():
            merged.table_lookups[table] = (
                merged.table_lookups.get(table, 0) + count
            )
    return merged


class OptimizationContext:
    """Current optimization state plus the memoizing compile/profile
    session every phase shares.

    ``memoize=False`` keeps the counters and the transactional state but
    executes every call — the mode the seed-orchestrator reference and
    the pipeline benchmark use to measure what the memo cache saves.
    """

    def __init__(
        self,
        program: Program,
        config: RuntimeConfig,
        trace: Sequence[TracePacket],
        target: TargetModel = DEFAULT_TARGET,
        memoize: bool = True,
    ):
        self.program = program
        self.config = config
        self.trace = list(trace)
        self.target = target
        self.memoize = memoize
        self.counters = SessionCounters()

        #: id(program) -> (strong ref, digest).  The strong ref keeps the
        #: object alive so ids cannot be recycled mid-session.
        self._program_keys: Dict[int, Tuple[Program, str]] = {}
        self._compile_cache: Dict[Tuple[str, str], CompileResult] = {}
        self._profile_cache: Dict[Tuple[str, Tuple], Profile] = {}
        #: Perf counters of the replay that produced each cached profile.
        self._profile_perf: Dict[Tuple[str, Tuple], PerfCounters] = {}

        self._pending: Optional[Tuple[Program, RuntimeConfig]] = None
        self._window_perf: List[PerfCounters] = []

    # ------------------------------------------------------------------
    # Content keys

    def program_key(self, program: Program) -> str:
        cached = self._program_keys.get(id(program))
        if cached is not None and cached[0] is program:
            return cached[1]
        digest = program_fingerprint(program)
        self._program_keys[id(program)] = (program, digest)
        return digest

    # ------------------------------------------------------------------
    # Memoized compile / profile

    def compile(self, program: Optional[Program] = None) -> CompileResult:
        """Compile ``program`` (default: the current program) against the
        session target, memoized on program content."""
        if program is None:
            program = self.program
        self.counters.compile_calls += 1
        key = (self.program_key(program), self.target.name)
        if self.memoize:
            cached = self._compile_cache.get(key)
            if cached is not None:
                return cached
        self.counters.compile_executions += 1
        result = compile_program(program, self.target)
        if self.memoize:
            self._compile_cache[key] = result
        return result

    def profile(
        self,
        program: Optional[Program] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> Profile:
        """Profile ``program`` under ``config`` (defaults: current state)
        on the session trace, memoized on (program, config) content."""
        profile, _perf = self.profile_with_perf(program, config)
        return profile

    def profile_with_perf(
        self,
        program: Optional[Program] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> Tuple[Profile, PerfCounters]:
        """Like :meth:`profile` but also returns the perf counters of the
        replay that produced the profile (the cached replay's counters on
        a memo hit — the cost was paid once)."""
        if program is None:
            program = self.program
        if config is None:
            config = self.config
        self.counters.profile_calls += 1
        key = (self.program_key(program), config_fingerprint(config))
        if self.memoize:
            cached = self._profile_cache.get(key)
            if cached is not None:
                return cached, self._profile_perf[key]
        self.counters.profile_executions += 1
        run = Profiler(program, config).run(self.trace)
        perf = run.perf
        self._window_perf.append(perf)
        if self.memoize:
            self._profile_cache[key] = run.profile
            self._profile_perf[key] = perf
        return run.profile, perf

    # ------------------------------------------------------------------
    # Per-phase perf attribution

    def start_perf_window(self) -> None:
        """Begin attributing replay perf to a new window (one phase)."""
        self._window_perf = []

    def take_perf_window(self) -> Optional[PerfCounters]:
        """Merged perf of every actual replay since the window started
        (None when every profile in the window was a memo hit)."""
        merged = merge_perf(self._window_perf)
        self._window_perf = []
        return merged

    # ------------------------------------------------------------------
    # Transactional state

    @property
    def in_transaction(self) -> bool:
        return self._pending is not None

    def propose(
        self,
        program: Optional[Program] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        """Stage a candidate optimization (program and/or config).

        The session's current state is untouched until :meth:`commit`;
        :meth:`rollback` discards the proposal.  Only one proposal may be
        open at a time.
        """
        if self._pending is not None:
            raise RuntimeError(
                "a proposal is already pending; commit or roll back first"
            )
        self._pending = (
            program if program is not None else self.program,
            config if config is not None else self.config,
        )

    def commit(self) -> Tuple[Program, RuntimeConfig]:
        """Make the pending proposal the session's current state."""
        if self._pending is None:
            raise RuntimeError("no pending proposal to commit")
        self.program, self.config = self._pending
        self._pending = None
        return self.program, self.config

    def rollback(self) -> Tuple[Program, RuntimeConfig]:
        """Discard the pending proposal; current state is unchanged."""
        if self._pending is None:
            raise RuntimeError("no pending proposal to roll back")
        self._pending = None
        return self.program, self.config
