"""The optimization session: shared, memoizing compile/profile state.

Every P2GO phase probes candidate programs by compiling them and
re-profiling them on the same trace — the halving binary search of
phase 3 and the per-candidate redirect variants of phase 4 alone account
for dozens of :func:`~repro.target.compiler.compile_program` and
:class:`~repro.core.profiler.Profiler` invocations per run, and the seed
orchestrator repeated several of them verbatim (the accepted resize was
re-profiled by the orchestrator right after phase 3 verified it; the
accepted offload variant was re-profiled right after phase 4 evaluated
it).  An :class:`OptimizationContext` makes all of that probing go
through one content-keyed memo cache, so asking the same question twice
— even with distinct but equal-content :class:`~repro.p4.program.Program`
or :class:`~repro.sim.runtime.RuntimeConfig` objects — costs a dict
lookup.

Keying:

* **Programs** are keyed by the SHA-1 of their printed DSL
  (:func:`~repro.p4.dsl.print_program` is a faithful round-trippable
  serialization; ``tests/test_dsl_roundtrip.py`` pins that).  The digest
  is cached per object in a bounded LRU (evicted programs are simply
  re-printed on the next ask), so long runs do not retain every rejected
  candidate AST; programs handed to the session are treated as
  immutable, the contract every phase already honours (rewrites clone).
* **Compiles** are keyed by (program key, *target content fingerprint*)
  — :meth:`~repro.target.model.TargetModel.fingerprint`, every field of
  the target, not just its name.  Two targets that share a name but
  differ in shape (a hand-written target JSON left at the default
  ``rmt-default`` name, or a design-space sweep's generated shapes)
  therefore never share a compile entry, in the memo tier or in the
  persistent store.
* **Configs** are keyed by their canonical content (sorted entries,
  default overrides, register inits, engine switches) — *not* by the
  ``mutations`` stamp, so two ``restricted_to`` results with equal
  content share one cache line.
* **Profiles** are keyed by (program key, config key, trace key).  The
  trace key is recomputed whenever ``ctx.trace`` is assigned, so a
  session whose trace is swapped (e.g. after an
  :class:`~repro.core.online.OnlineProfiler` drift alert) never serves
  profiles recorded on the old traffic.  In-place mutation of the trace
  list bypasses the setter — assign a new trace instead.

The session also carries:

* **Invocation counters** (:class:`SessionCounters`): every
  ``compile()`` / ``profile()`` call is counted, split into memo hits
  and actual executions — the numbers ``P2GOResult`` and the pipeline
  benchmark report.
* **Per-window profiling perf**: while a window is open
  (:meth:`OptimizationContext.start_perf_window` …
  :meth:`~OptimizationContext.take_perf_window`), each actual profiling
  replay's :class:`~repro.sim.perf.PerfCounters` are recorded, letting
  the pass manager attribute replay cost to the phase that paid it.
  Replays outside any window (e.g. during pipeline setup or by a
  co-resident :class:`~repro.core.online.OnlineProfiler`) are
  deliberately *not* attributed anywhere.
* **Transactional state**: ``propose(program, config)`` stages a
  candidate optimization, ``commit()`` makes it the session's current
  state, ``rollback()`` discards it — so a review-hook rejection is a
  real rollback of proposed state, not a change that was silently never
  applied.  Transactions are serial-only: opening a proposal and then
  batch-probing is an error (see below).

Parallel candidate probing
--------------------------

Phase 3/4 candidate evaluation is an embarrassingly parallel map —
compile + trace-replay per independent variant — so the session exposes
batch probes next to the serial ones:

* :meth:`OptimizationContext.compile_many` — compile a batch of
  candidate programs concurrently (``ProcessPoolExecutor``; compiles
  are pure CPU and pickle cleanly);
* :meth:`OptimizationContext.profile_many` /
  :meth:`~OptimizationContext.profile_many_with_perf` — replay a batch
  of (program, config) variants concurrently (processes by default,
  threads via ``P2GO_REPLAY_EXECUTOR=thread`` or
  ``replay_executor="thread"``);
* :meth:`OptimizationContext.probe_many` — one mixed wave of both.

Persistent store (disk tier)
----------------------------

``store=`` attaches a :class:`~repro.core.store.SessionStore`: a
disk-backed, content-addressed second tier behind the memo cache (the
keys are the same fingerprints, so the two tiers can never disagree).
The lookup order on every probe is **memo → disk → execute**:

* a *memo hit* costs a dict lookup (counted in ``compile_hits`` /
  ``profile_hits``);
* a *disk hit* unpickles the entry, hydrates the memo cache, and is
  counted separately (``compile_disk_hits`` / ``profile_disk_hits``) —
  it is **not** an execution and is never attributed to a perf window
  (the replay cost was paid by whichever run wrote the entry);
* an *execution* runs the compiler / replays the trace and queues the
  result for write-back.

Serial write-back is buffered and flushed on :meth:`commit` and
:meth:`close` (the probes' keys are captured at execution time, so a
later trace swap cannot mis-key them); the :meth:`probe_many` merge
wave flushes executed probes immediately so parallel waves persist even
if the run is killed mid-phase.  Disk misses are remembered per key in
a **bounded LRU** (``store_miss_cache_size``, default 4096) to avoid
re-statting the store in tight probe loops — when the bound is hit the
single least-recently-asked key is evicted, so a long fleet run never
forgets all of its negative-miss knowledge at once and re-stats the
whole disk tier.  The trace setter drops the remembered *profile*
misses (a drift-triggered re-run swaps the trace, and miss knowledge
recorded under the old traffic — or before a concurrent writer
persisted new entries — must not suppress re-keyed disk lookups;
``tests/test_session.py`` pins this next to the PR 4 stale-profile
regression).  With ``memoize=False`` the store is inert in both
directions: that mode exists to measure real executions.

``lease_probes=True`` opts the session into the store's cross-process
probe leases (:meth:`~repro.core.store.SessionStore.claim_probe`): a
disk miss first claims the probe's lease — losing the claim means
another *process* is executing that exact fingerprinted probe, so the
session waits for its entry instead of re-executing (the cross-process
analogue of ``probe_many``'s in-flight dedup).  Probes executed under
a held lease write through to the store immediately (like the parallel
merge wave — waiters are blocked on the lease, so the buffered flush
would stall them) and release the lease.  This is the fleet
coordinator's dedup mechanism (:mod:`repro.core.fleet`); single-run
sessions leave it off and keep the buffered write-back.

Concurrency contract (also DESIGN.md §9): worker tasks are *pure* —
they receive pickled/shared immutable inputs and return results; every
cache insert, counter increment, and perf-window append happens in the
caller's thread after the futures resolve, in **submission order**, so
results land in the shared memo cache exactly as if probed serially.
Equal-fingerprint candidates within a batch are deduplicated in flight
(one execution, both callers get the cached result — identical to what
the serial loop's memo cache would do).  The worker count comes from the
``workers=`` knob (constructor or per-call) or the ``P2GO_WORKERS``
environment variable; ``workers=1`` falls back to today's serial path
bit-for-bit.  Batches refuse to run while a proposal is open, and the
session supports one batch at a time (it is not itself a thread-safe
object — the batch API *is* the concurrency mechanism).
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.profiler import Profile, Profiler
from repro.core.store import ProbeLease, SessionStore
from repro.p4.dsl.printer import print_program
from repro.p4.program import Program
from repro.sim.perf import PerfCounters
from repro.sim.runtime import RuntimeConfig
from repro.target.compiler import CompileResult, compile_program
from repro.target.model import DEFAULT_TARGET, TargetModel
from repro.traffic.generators import TracePacket

#: Environment variable consulted when no ``workers=`` knob is given.
WORKERS_ENV = "P2GO_WORKERS"
#: Environment variable selecting the replay executor kind
#: ("process", the default, or "thread").
REPLAY_EXECUTOR_ENV = "P2GO_REPLAY_EXECUTOR"
#: Bound on the per-object program-digest cache (satellite of ISSUE 4:
#: an unbounded cache kept every rejected candidate AST alive).
DEFAULT_PROGRAM_KEY_CACHE = 256
#: Bound on the remembered disk-miss keys; past it the least-recently
#: asked key is evicted (not the whole cache — a long fleet run must
#: never forget all negative-miss knowledge at once).
DEFAULT_STORE_MISS_CACHE = 4096


def program_fingerprint(program: Program) -> str:
    """Content key of a program: SHA-1 of its printed DSL."""
    return hashlib.sha1(print_program(program).encode()).hexdigest()


def config_fingerprint(config: RuntimeConfig) -> Tuple:
    """Canonical, hashable content key of a runtime config.

    Deliberately excludes the ``mutations`` stamp (two equal-content
    clones must share a cache line) and is recomputed on every use, so
    in-place mutation between calls is observed.
    """
    return (
        tuple(
            sorted(
                (table, tuple(entries))
                for table, entries in config.entries.items()
                if entries
            )
        ),
        tuple(sorted(config.default_overrides.items())),
        tuple(config.register_inits),
        tuple(config.hashed_inits),
        config.enable_flow_cache,
        config.enable_compiled_tables,
        config.flow_cache_capacity,
    )


def trace_fingerprint(trace: Sequence[TracePacket]) -> str:
    """Content key of a trace: SHA-1 over packet bytes + ingress ports."""
    digest = hashlib.sha1()
    for packet in trace:
        if isinstance(packet, tuple):
            data, port = packet
        else:
            data, port = packet, 0
        digest.update(port.to_bytes(4, "big"))
        digest.update(len(data).to_bytes(4, "big"))
        digest.update(data)
    return digest.hexdigest()


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit knob > ``P2GO_WORKERS`` > 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_replay_executor(kind: Optional[str] = None) -> str:
    """Replay pool kind: explicit knob > ``P2GO_REPLAY_EXECUTOR`` >
    ``"process"``."""
    if kind is None:
        kind = os.environ.get(REPLAY_EXECUTOR_ENV, "").strip() or "process"
    if kind not in ("process", "thread"):
        raise ValueError(
            f"replay executor must be 'process' or 'thread', got {kind!r}"
        )
    return kind


# ----------------------------------------------------------------------
# Worker tasks.  Module-level and pure so they pickle for process pools:
# all session state (caches, counters, windows) is merged by the caller
# after the futures resolve, never touched from a worker.


def _compile_task(program: Program, target: TargetModel) -> CompileResult:
    return compile_program(program, target)


def _replay_task(
    program: Program,
    config: RuntimeConfig,
    trace: Sequence[TracePacket],
) -> Tuple[Profile, PerfCounters]:
    run = Profiler(program, config).run(trace)
    return run.profile, run.perf


@dataclass
class SessionCounters:
    """How often the session compiled and profiled, and how often the
    memo cache answered instead."""

    #: ``compile()`` calls, total.
    compile_calls: int = 0
    #: Calls that actually ran :func:`compile_program`.
    compile_executions: int = 0
    #: Calls answered by the persistent disk store (not executions; the
    #: cost was paid by whichever run wrote the entry).
    compile_disk_hits: int = 0
    #: ``profile()`` calls, total.
    profile_calls: int = 0
    #: Calls that actually replayed the trace.
    profile_executions: int = 0
    #: Calls answered by the persistent disk store.
    profile_disk_hits: int = 0

    @property
    def compile_hits(self) -> int:
        """In-memory memo hits (disk hits are counted separately)."""
        return (
            self.compile_calls
            - self.compile_executions
            - self.compile_disk_hits
        )

    @property
    def profile_hits(self) -> int:
        """In-memory memo hits (disk hits are counted separately)."""
        return (
            self.profile_calls
            - self.profile_executions
            - self.profile_disk_hits
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "compile_calls": self.compile_calls,
            "compile_executions": self.compile_executions,
            "compile_hits": self.compile_hits,
            "compile_disk_hits": self.compile_disk_hits,
            "profile_calls": self.profile_calls,
            "profile_executions": self.profile_executions,
            "profile_hits": self.profile_hits,
            "profile_disk_hits": self.profile_disk_hits,
        }

    def render(self) -> str:
        return (
            f"compile: {self.compile_calls} calls, "
            f"{self.compile_executions} executed "
            f"({self.compile_hits} memo hits, "
            f"{self.compile_disk_hits} disk hits); "
            f"profile: {self.profile_calls} calls, "
            f"{self.profile_executions} executed "
            f"({self.profile_hits} memo hits, "
            f"{self.profile_disk_hits} disk hits)"
        )


def merge_perf(counters: Sequence[PerfCounters]) -> Optional[PerfCounters]:
    """Sum a sequence of replay counters into one (None when empty)."""
    if not counters:
        return None
    merged = PerfCounters()
    for perf in counters:
        merged.packets += perf.packets
        merged.cache_hits += perf.cache_hits
        merged.cache_misses += perf.cache_misses
        merged.cache_invalidations += perf.cache_invalidations
        merged.cache_evictions += perf.cache_evictions
        merged.elapsed_seconds += perf.elapsed_seconds
        merged.timed_packets += perf.timed_packets
        for table, count in perf.table_lookups.items():
            merged.table_lookups[table] = (
                merged.table_lookups.get(table, 0) + count
            )
    return merged


#: A batch-probe variant: (program, config), either may be None for the
#: session's current state.
ProfileVariant = Tuple[Optional[Program], Optional[RuntimeConfig]]


class OptimizationContext:
    """Current optimization state plus the memoizing compile/profile
    session every phase shares.

    ``memoize=False`` keeps the counters and the transactional state but
    executes every call — the mode the seed-orchestrator reference and
    the pipeline benchmark use to measure what the memo cache saves.

    ``workers`` sets the default parallelism of the batch probes
    (:meth:`compile_many`, :meth:`profile_many`, :meth:`probe_many`);
    None defers to the ``P2GO_WORKERS`` environment variable and, when
    that is unset too, to 1 — the serial path.  Worker pools are created
    lazily on the first parallel batch and released by :meth:`close`
    (the session is also a context manager).

    ``store`` attaches a :class:`~repro.core.store.SessionStore` disk
    tier behind the memo cache (lookup order memo → disk → execute;
    executed probes are written back on commit/close and after each
    parallel wave).  Inert when ``memoize=False``.

    ``lease_probes=True`` additionally coordinates executions across
    *processes* through the store's probe leases: a disk miss claims
    the probe before executing, and a lost claim waits for the holding
    process's entry instead of re-executing (see the module docstring).
    Requires a ``store``; inert without one or with ``memoize=False``.
    """

    def __init__(
        self,
        program: Program,
        config: RuntimeConfig,
        trace: Sequence[TracePacket],
        target: TargetModel = DEFAULT_TARGET,
        memoize: bool = True,
        workers: Optional[int] = None,
        replay_executor: Optional[str] = None,
        program_key_cache_size: int = DEFAULT_PROGRAM_KEY_CACHE,
        store: Optional[SessionStore] = None,
        lease_probes: bool = False,
        store_miss_cache_size: int = DEFAULT_STORE_MISS_CACHE,
    ):
        if program_key_cache_size < 1:
            raise ValueError("program_key_cache_size must be >= 1")
        if store_miss_cache_size < 1:
            raise ValueError("store_miss_cache_size must be >= 1")
        self.program = program
        self.config = config
        self.target = target
        self.memoize = memoize
        #: Disk tier behind the memo cache (None = memory only).  Inert
        #: when ``memoize=False``.
        self.store = store
        #: Executed probes awaiting write-back: (kind, key, value),
        #: keys captured at execution time.  Flushed by
        #: :meth:`flush_store` (called from commit/close and the batch
        #: merge wave).
        self._store_pending: List[Tuple[str, Tuple, object]] = []
        #: Keys known to be absent on disk (avoids re-statting the
        #: store per probe), bounded LRU; profile entries are dropped
        #: on trace swap.
        self._store_misses: "OrderedDict[Tuple[str, Tuple], None]" = (
            OrderedDict()
        )
        self._store_miss_cache_size = store_miss_cache_size
        #: Cross-process probe coordination (off by default; the fleet
        #: coordinator turns it on).
        self.lease_probes = lease_probes
        #: Leases this session currently holds: (kind, key) -> lease.
        #: Popped (and released) by the write-through in
        #: :meth:`_queue_store_write`; :meth:`close` releases leftovers
        #: (an execution that raised between claim and write).
        self._held_leases: Dict[Tuple[str, Tuple], ProbeLease] = {}
        self.workers = resolve_workers(workers)
        self.replay_executor = resolve_replay_executor(replay_executor)
        self.counters = SessionCounters()

        #: id(program) -> (strong ref, digest), bounded LRU.  The strong
        #: ref keeps the object alive while cached so ids cannot be
        #: recycled; eviction merely costs a re-print on the next ask.
        self._program_keys: "OrderedDict[int, Tuple[Program, str]]" = (
            OrderedDict()
        )
        self._program_key_cache_size = program_key_cache_size
        self._compile_cache: Dict[Tuple[str, str], CompileResult] = {}
        self._profile_cache: Dict[Tuple[str, Tuple, str], Profile] = {}
        #: Perf counters of the replay that produced each cached profile.
        self._profile_perf: Dict[Tuple[str, Tuple, str], PerfCounters] = {}

        self._pending: Optional[Tuple[Program, RuntimeConfig]] = None
        #: Open perf window, or None when no window is active (replays
        #: outside a window are not attributed to any phase).
        self._window_perf: Optional[List[PerfCounters]] = None

        #: kind -> (size, executor); created lazily, released by close().
        self._pools: Dict[str, Tuple[int, Executor]] = {}
        self._batch_active = False

        self.trace = trace  # via the property: computes the trace key

    # ------------------------------------------------------------------
    # Trace (profile-cache identity)

    @property
    def trace(self) -> List[TracePacket]:
        return self._trace

    @trace.setter
    def trace(self, trace: Sequence[TracePacket]) -> None:
        """Swap the session trace; cached profiles are keyed on the old
        trace's fingerprint and stop matching immediately.

        Any pending disk hydration is re-keyed too: remembered *profile*
        disk misses are dropped, so probes after the swap (or after a
        swap back, once a concurrent writer may have persisted entries)
        hit the store again under the new trace key instead of trusting
        stale miss knowledge — the disk-tier mirror of the PR 4
        stale-profile fix.
        """
        self._trace = list(trace)
        self._trace_key = trace_fingerprint(self._trace)
        self._store_misses = OrderedDict(
            (entry, None)
            for entry in self._store_misses
            if entry[0] != "profile"
        )

    @property
    def trace_key(self) -> str:
        """Content fingerprint of the current trace."""
        return self._trace_key

    @contextmanager
    def state_guard(self):
        """Restore the session's (program, config, trace) if the body
        raises.

        The re-key hook for shared-session re-runs: a drift-triggered
        ``reoptimize`` (or an adopted :class:`~repro.core.pipeline.\
        SwitchRun`) swaps the trace before probing, and a run that dies
        mid-phase must not leave the session keyed on the new traffic
        for subsequent callers.  On success the new state stays — that
        *is* the re-key.  Trace restoration goes through the setter, so
        miss-cache re-keying applies on the way back too.
        """
        prior = (self.program, self.config, self._trace)
        try:
            yield self
        except BaseException:
            self.program, self.config = prior[0], prior[1]
            self.trace = prior[2]
            raise

    # ------------------------------------------------------------------
    # Content keys

    def program_key(self, program: Program) -> str:
        cached = self._program_keys.get(id(program))
        if cached is not None and cached[0] is program:
            self._program_keys.move_to_end(id(program))
            return cached[1]
        digest = program_fingerprint(program)
        self._program_keys[id(program)] = (program, digest)
        self._program_keys.move_to_end(id(program))
        while len(self._program_keys) > self._program_key_cache_size:
            self._program_keys.popitem(last=False)
        return digest

    def _profile_key(
        self, program: Program, config: RuntimeConfig
    ) -> Tuple[str, Tuple, str]:
        return (
            self.program_key(program),
            config_fingerprint(config),
            self._trace_key,
        )

    # ------------------------------------------------------------------
    # Persistent store (disk tier behind the memo cache)

    def _store_load_compile(self, key: Tuple) -> Optional[CompileResult]:
        if self.store is None or self._store_miss_remembered(
            ("compile", key)
        ):
            return None
        loaded = self.store.load_compile(key)
        if loaded is None and self.lease_probes:
            loaded = self._store_coordinate("compile", key)
        if loaded is None:
            self._remember_store_miss(("compile", key))
        return loaded

    def _store_load_profile(
        self, key: Tuple
    ) -> Optional[Tuple[Profile, PerfCounters]]:
        if self.store is None or self._store_miss_remembered(
            ("profile", key)
        ):
            return None
        loaded = self.store.load_profile(key)
        if loaded is None and self.lease_probes:
            loaded = self._store_coordinate("profile", key)
        if loaded is None:
            self._remember_store_miss(("profile", key))
        return loaded

    def _store_coordinate(self, kind: str, key: Tuple):
        """Cross-process probe dedup on a disk miss (leases enabled).

        Either wins the probe's lease (returns None — the caller
        executes, and the write-through in :meth:`_queue_store_write`
        releases it) or waits out the process that holds it and returns
        that process's entry (a disk hit to the caller).  Bounded by
        the store's ``lease_ttl``: past it the session executes without
        a lease — duplicated work beats a wedged fleet.
        """
        deadline = time.monotonic() + self.store.lease_ttl
        load = (
            self.store.load_compile
            if kind == "compile"
            else self.store.load_profile
        )
        while True:
            lease = self.store.claim_probe(kind, key)
            if lease is not None:
                # Re-check under the lease: the entry may have landed
                # between our disk miss and this claim (the writer
                # released its lease just before we won the race).
                # Executing here would break the exactly-once guarantee
                # the fleet bench's deterministic counters rest on.
                value = load(key)
                if value is not None:
                    lease.release()
                    return value
                self._held_leases[(kind, key)] = lease
                return None
            value = self.store.wait_for_probe(kind, key, deadline=deadline)
            if value is not None:
                return value
            if time.monotonic() >= deadline:
                return None

    def _store_miss_remembered(self, entry: Tuple[str, Tuple]) -> bool:
        if entry not in self._store_misses:
            return False
        self._store_misses.move_to_end(entry)
        return True

    def _remember_store_miss(self, entry: Tuple[str, Tuple]) -> None:
        self._store_misses[entry] = None
        self._store_misses.move_to_end(entry)
        while len(self._store_misses) > self._store_miss_cache_size:
            self._store_misses.popitem(last=False)

    def flush_store(self) -> int:
        """Write every executed-but-unflushed probe to the disk store
        (no-op without one).  Called on :meth:`commit`, :meth:`close`,
        and by the batch merge wave; returns how many entries flushed."""
        pending, self._store_pending = self._store_pending, []
        if self.store is None:
            return 0
        for kind, key, value in pending:
            self._store_write(kind, key, value)
        return len(pending)

    def _store_write(self, kind: str, key: Tuple, value) -> None:
        if kind == "compile":
            self.store.store_compile(key, value)
        else:
            profile, perf = value
            self.store.store_profile(key, profile, perf)
        self._store_misses.pop((kind, key), None)

    def _queue_store_write(self, kind: str, key: Tuple, value) -> None:
        if self.store is None:
            return
        lease = self._held_leases.pop((kind, key), None)
        if lease is not None:
            # Write through immediately: waiters in other processes are
            # blocked on this lease, so the buffered flush would stall
            # them until commit/close.
            self._store_write(kind, key, value)
            lease.release()
            return
        self._store_pending.append((kind, key, value))

    def _release_leases(self) -> None:
        leases, self._held_leases = list(self._held_leases.values()), {}
        for lease in leases:
            lease.release()

    # ------------------------------------------------------------------
    # Memoized compile / profile (serial)

    def compile(self, program: Optional[Program] = None) -> CompileResult:
        """Compile ``program`` (default: the current program) against the
        session target, memoized on program content (memo tier first,
        then the persistent store, then a real compile)."""
        if program is None:
            program = self.program
        self.counters.compile_calls += 1
        key = (self.program_key(program), self.target.fingerprint())
        if self.memoize:
            cached = self._compile_cache.get(key)
            if cached is not None:
                return cached
            loaded = self._store_load_compile(key)
            if loaded is not None:
                self.counters.compile_disk_hits += 1
                self._compile_cache[key] = loaded
                return loaded
        self.counters.compile_executions += 1
        result = compile_program(program, self.target)
        if self.memoize:
            self._compile_cache[key] = result
            self._queue_store_write("compile", key, result)
        return result

    def profile(
        self,
        program: Optional[Program] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> Profile:
        """Profile ``program`` under ``config`` (defaults: current state)
        on the session trace, memoized on (program, config, trace)
        content."""
        profile, _perf = self.profile_with_perf(program, config)
        return profile

    def profile_with_perf(
        self,
        program: Optional[Program] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> Tuple[Profile, PerfCounters]:
        """Like :meth:`profile` but also returns the perf counters of the
        replay that produced the profile (the cached replay's counters on
        a memo hit — the cost was paid once)."""
        if program is None:
            program = self.program
        if config is None:
            config = self.config
        self.counters.profile_calls += 1
        key = self._profile_key(program, config)
        if self.memoize:
            cached = self._profile_cache.get(key)
            if cached is not None:
                return cached, self._profile_perf[key]
            loaded = self._store_load_profile(key)
            if loaded is not None:
                # Disk hit: hydrate the memo tier.  Not an execution,
                # and never attributed to a perf window — the replay
                # cost was paid by the run that wrote the entry.
                profile, perf = loaded
                self.counters.profile_disk_hits += 1
                self._profile_cache[key] = profile
                self._profile_perf[key] = perf
                return profile, perf
        self.counters.profile_executions += 1
        profile, perf = _replay_task(program, config, self._trace)
        self._attribute_perf(perf)
        if self.memoize:
            self._profile_cache[key] = profile
            self._profile_perf[key] = perf
            self._queue_store_write("profile", key, (profile, perf))
        return profile, perf

    # ------------------------------------------------------------------
    # Batch (parallel) probing

    def compile_many(
        self,
        programs: Sequence[Program],
        workers: Optional[int] = None,
    ) -> List[CompileResult]:
        """Compile a batch of candidate programs, concurrently when the
        session (or the ``workers`` override) allows more than one
        worker.  Results, counters, and memo state are identical to
        calling :meth:`compile` on each program in order."""
        results, _ = self.probe_many(programs=programs, workers=workers)
        return results

    def profile_many(
        self,
        variants: Sequence[ProfileVariant],
        workers: Optional[int] = None,
    ) -> List[Profile]:
        """Profile a batch of (program, config) variants on the session
        trace; see :meth:`profile_many_with_perf`."""
        return [
            profile
            for profile, _perf in self.profile_many_with_perf(
                variants, workers=workers
            )
        ]

    def profile_many_with_perf(
        self,
        variants: Sequence[ProfileVariant],
        workers: Optional[int] = None,
    ) -> List[Tuple[Profile, PerfCounters]]:
        """Batch :meth:`profile_with_perf`: replay independent variants
        concurrently.  Results, counters, memo state, and perf-window
        attribution are identical to the serial loop (merged in
        submission order, not completion order)."""
        _, results = self.probe_many(variants=variants, workers=workers)
        return results

    def probe_many(
        self,
        programs: Sequence[Program] = (),
        variants: Sequence[ProfileVariant] = (),
        workers: Optional[int] = None,
    ) -> Tuple[List[CompileResult], List[Tuple[Profile, PerfCounters]]]:
        """One mixed wave of compile and replay probes.

        Compiles run on the process pool, replays on the replay pool
        (processes by default, threads via ``replay_executor``), all
        concurrently.  With one worker — or a single probe — this *is*
        the serial path: the same :meth:`compile` /
        :meth:`profile_with_perf` calls, in order.

        Raises :class:`RuntimeError` while a proposal is open
        (transactions are serial-only) and on re-entrant batches.
        """
        programs = list(programs)
        variants = [
            (
                program if program is not None else self.program,
                config if config is not None else self.config,
            )
            for program, config in variants
        ]
        if self._pending is not None:
            raise RuntimeError(
                "batch probing is not allowed while a proposal is open; "
                "commit or roll back first (transactions are serial-only)"
            )
        if self._batch_active:
            raise RuntimeError(
                "re-entrant batch probe; the session runs one batch at a "
                "time"
            )
        workers = (
            self.workers if workers is None else resolve_workers(workers)
        )
        if workers == 1 or len(programs) + len(variants) <= 1:
            return (
                [self.compile(program) for program in programs],
                [
                    self.profile_with_perf(program, config)
                    for program, config in variants
                ],
            )
        self._batch_active = True
        try:
            return self._probe_parallel(programs, variants, workers)
        finally:
            self._batch_active = False

    def _probe_parallel(
        self,
        programs: List[Program],
        variants: List[Tuple[Program, RuntimeConfig]],
        workers: int,
    ) -> Tuple[List[CompileResult], List[Tuple[Profile, PerfCounters]]]:
        compile_keys = [
            (self.program_key(program), self.target.fingerprint())
            for program in programs
        ]
        profile_keys = [
            self._profile_key(program, config)
            for program, config in variants
        ]
        self.counters.compile_calls += len(programs)
        self.counters.profile_calls += len(variants)

        # Submission wave: one future per key that needs an execution,
        # deduplicating in-flight keys (and, under memoize, keys already
        # answered by the memo cache or hydrated from the disk store).
        # Without memoization every call executes — exactly like the
        # serial path.
        compile_futures: "OrderedDict" = OrderedDict()
        profile_futures: "OrderedDict" = OrderedDict()
        compile_pool = replay_pool = None
        for (program, key) in zip(programs, compile_keys):
            if self.memoize and key in self._compile_cache:
                continue
            if key in compile_futures:
                if self.memoize:
                    continue
            elif self.memoize:
                loaded = self._store_load_compile(key)
                if loaded is not None:
                    self.counters.compile_disk_hits += 1
                    self._compile_cache[key] = loaded
                    continue
            if compile_pool is None:
                compile_pool = self._pool("compile", workers)
            future = compile_pool.submit(_compile_task, program, self.target)
            compile_futures.setdefault(key, []).append(future)
        for (program, config), key in zip(variants, profile_keys):
            if self.memoize and key in self._profile_cache:
                continue
            if key in profile_futures:
                if self.memoize:
                    continue
            elif self.memoize:
                loaded = self._store_load_profile(key)
                if loaded is not None:
                    profile, perf = loaded
                    self.counters.profile_disk_hits += 1
                    self._profile_cache[key] = profile
                    self._profile_perf[key] = perf
                    continue
            if replay_pool is None:
                replay_pool = self._pool("replay", workers)
            future = replay_pool.submit(
                _replay_task, program, config, self._trace
            )
            profile_futures.setdefault(key, []).append(future)

        # Merge wave, in the caller's thread, in submission order.
        # Executed probes are flushed to the disk store here (not
        # buffered like the serial path) so each parallel wave persists
        # as soon as it lands, even if the run dies mid-phase.
        compile_results: Dict[Tuple, CompileResult] = {}
        executed = 0
        for key, futures in compile_futures.items():
            for future in futures:
                compile_results.setdefault(key, future.result())
                executed += 1
                if self.memoize:
                    self._compile_cache[key] = compile_results[key]
                    self._queue_store_write(
                        "compile", key, compile_results[key]
                    )
        self.counters.compile_executions += executed

        profile_results: Dict[Tuple, Tuple[Profile, PerfCounters]] = {}
        executed = 0
        for key, futures in profile_futures.items():
            for future in futures:
                profile, perf = future.result()
                profile_results.setdefault(key, (profile, perf))
                executed += 1
                self._attribute_perf(perf)
                if self.memoize:
                    self._profile_cache[key] = profile
                    self._profile_perf[key] = perf
                    self._queue_store_write("profile", key, (profile, perf))
        self.counters.profile_executions += executed
        self.flush_store()

        def compiled(key: Tuple) -> CompileResult:
            if key in compile_results:
                return compile_results[key]
            return self._compile_cache[key]

        def profiled(key: Tuple) -> Tuple[Profile, PerfCounters]:
            if key in profile_results:
                return profile_results[key]
            return self._profile_cache[key], self._profile_perf[key]

        return (
            [compiled(key) for key in compile_keys],
            [profiled(key) for key in profile_keys],
        )

    # ------------------------------------------------------------------
    # Worker pools

    def _pool(self, kind: str, workers: int) -> Executor:
        """The lazily-created pool for ``kind`` ("compile"/"replay"),
        grown (recreated) when a batch asks for more workers."""
        existing = self._pools.get(kind)
        if existing is not None:
            size, pool = existing
            if size >= workers:
                return pool
            pool.shutdown(wait=True)
            del self._pools[kind]
        use_processes = kind == "compile" or self.replay_executor == "process"
        pool = self._make_pool(workers, use_processes)
        self._pools[kind] = (workers, pool)
        return pool

    @staticmethod
    def _make_pool(workers: int, use_processes: bool) -> Executor:
        if use_processes:
            try:
                return ProcessPoolExecutor(max_workers=workers)
            except (ImportError, NotImplementedError, OSError):
                # No multiprocessing primitives on this platform (e.g. a
                # sandbox without sem_open); threads still overlap the
                # pure-Python probes' I/O-free work correctly, just
                # without bypassing the GIL.
                pass
        return ThreadPoolExecutor(max_workers=workers)

    def close(self) -> None:
        """Flush pending store write-backs, release any still-held
        probe leases, and release the worker pools (memo caches and
        counters survive; pools are recreated lazily if the session
        batches again)."""
        self.flush_store()
        self._release_leases()
        pools = list(self._pools.values())
        self._pools.clear()
        for _size, pool in pools:
            pool.shutdown(wait=True)

    def __enter__(self) -> "OptimizationContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown ordering
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Per-phase perf attribution

    def _attribute_perf(self, perf: PerfCounters) -> None:
        if self._window_perf is not None:
            self._window_perf.append(perf)

    def start_perf_window(self) -> None:
        """Begin attributing replay perf to a new window (one phase).
        Replays before the first window (pipeline setup, online
        monitoring) are not attributed anywhere."""
        self._window_perf = []

    def take_perf_window(self) -> Optional[PerfCounters]:
        """Merged perf of every actual replay since the window started
        (None when every profile in the window was a memo hit, or when
        no window was open), and close the window."""
        merged = merge_perf(self._window_perf or [])
        self._window_perf = None
        return merged

    # ------------------------------------------------------------------
    # Transactional state

    @property
    def in_transaction(self) -> bool:
        return self._pending is not None

    def propose(
        self,
        program: Optional[Program] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        """Stage a candidate optimization (program and/or config).

        The session's current state is untouched until :meth:`commit`;
        :meth:`rollback` discards the proposal.  Only one proposal may be
        open at a time, and batch probes refuse to run while one is.
        """
        if self._pending is not None:
            raise RuntimeError(
                "a proposal is already pending; commit or roll back first"
            )
        self._pending = (
            program if program is not None else self.program,
            config if config is not None else self.config,
        )

    def commit(self) -> Tuple[Program, RuntimeConfig]:
        """Make the pending proposal the session's current state and
        flush executed probes to the persistent store (every accepted
        change is a durable checkpoint)."""
        if self._pending is None:
            raise RuntimeError("no pending proposal to commit")
        self.program, self.config = self._pending
        self._pending = None
        self.flush_store()
        return self.program, self.config

    def rollback(self) -> Tuple[Program, RuntimeConfig]:
        """Discard the pending proposal; current state is unchanged."""
        if self._pending is None:
            raise RuntimeError("no pending proposal to roll back")
        self._pending = None
        return self.program, self.config
