"""Human-readable optimization reports.

Renders a :class:`~repro.core.pipeline.P2GOResult` the way the paper's
workflow expects: the stage progression per phase (Table 2's shape), every
observation with its evidence, and the changes awaiting the programmer's
judgement.  :func:`render_fleet_report` does the same for a fleet run
(:mod:`repro.core.fleet`): the per-switch roll-up plus the fabric-level
numbers — stages reclaimed, cross-switch probe reuse, lease contention,
wall clock against running the switches independently.
:func:`render_explore_report` renders a design-space sweep
(:mod:`repro.explore`): per-program Pareto frontiers, fit breakpoints,
and the cross-point reuse the shared store bought.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.pipeline import P2GOResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet -> report)
    from repro.core.fleet import FleetResult
    from repro.core.serve import ServeResult
    from repro.explore.explorer import ExploreResult


def stage_table(result: P2GOResult) -> str:
    """Render the per-phase stage map (the paper's Table 2)."""
    lines: List[str] = []
    width = max(
        (len(o.phase.name) for o in result.outcomes), default=8
    )
    for outcome in result.outcomes:
        cells = []
        for stage_tables in outcome.stage_map:
            cells.append("+".join(stage_tables) if stage_tables else "-")
        label = {
            "PROFILING": "Initial Program",
            "REMOVE_DEPENDENCIES": "Removing Deps.",
            "REDUCE_MEMORY": "Reducing Memory",
            "OFFLOAD_CODE": "Offloading Code",
        }.get(outcome.phase.name, outcome.phase.name)
        lines.append(
            f"{label:<17} ({outcome.stages} stages): "
            + " | ".join(cells)
        )
    return "\n".join(lines)


def render_report(result: P2GOResult) -> str:
    """The full optimization report."""
    from repro.target.phv import compute_phv_usage

    phv_before = compute_phv_usage(result.original_program)
    phv_after = compute_phv_usage(result.optimized_program)
    lines: List[str] = [
        "=" * 72,
        f"P2GO optimization report — {result.original_program.name}",
        "=" * 72,
        "",
        f"stages: {result.stages_before} -> {result.stages_after}",
        f"PHV:    {phv_before.total_bits} -> {phv_after.total_bits} bits "
        f"(of {phv_after.budget_bits})",
        "",
        stage_table(result),
        "",
    ]
    if result.profiling_perf is not None:
        lines.append("profiling engine:")
        lines.extend(
            "  " + perf_line
            for perf_line in result.profiling_perf.render().splitlines()
        )
        if result.fastpath:
            lines.append("  fast path:            engaged (exec-compiled)")
        elif result.fastpath_reason not in (None, "disabled"):
            lines.append(
                "  fast path:            "
                f"fell back to cached engine ({result.fastpath_reason})"
            )
        lines.append("")
    phase_perf = [
        o for o in result.outcomes[1:] if o.profiling_perf is not None
    ]
    if phase_perf:
        lines.append("per-phase re-profiling cost:")
        for outcome in phase_perf:
            perf = outcome.profiling_perf
            lines.append(
                f"  {outcome.phase.name.lower():<20} "
                f"{perf.packets} packets replayed at "
                f"{perf.packets_per_second():,.0f} packets/s "
                f"(cache hit rate {perf.cache_hit_rate():.1%})"
            )
        lines.append("")
    if result.session_counters is not None:
        workers = (
            f" ({result.workers} workers)" if result.workers > 1 else ""
        )
        lines.append(
            "compile/profile session"
            + workers
            + ": "
            + result.session_counters.render()
        )
        counters = result.session_counters
        lines.append(
            "result provenance: "
            f"compile memo {counters.compile_hits} / "
            f"disk {counters.compile_disk_hits} / "
            f"executed {counters.compile_executions}; "
            f"profile memo {counters.profile_hits} / "
            f"disk {counters.profile_disk_hits} / "
            f"executed {counters.profile_executions}"
        )
        lines.append("")
    if result.store_stats is not None:
        stats = result.store_stats
        store_counters = stats["counters"]
        lines.append(
            f"persistent store: {stats['root']} — "
            f"{stats['compile_entries']} compile + "
            f"{stats['profile_entries']} profile entries, "
            f"{stats['total_bytes']:,} bytes "
            f"({store_counters['writes']} writes, "
            f"{store_counters['evictions']} evictions this run)"
        )
        if store_counters["resets"]:
            lines.append(
                "  note: store format mismatch (schema or code "
                "fingerprint) — previous entries quarantined, this run "
                "started cold"
            )
        if store_counters["quarantined"]:
            lines.append(
                f"  note: {store_counters['quarantined']} corrupt "
                "store entries quarantined (served as cold misses)"
            )
        if store_counters["errors"]:
            lines.append(
                f"  note: {store_counters['errors']} store I/O errors "
                "ignored (the store degrades, it never fails a run)"
            )
        lines.append("")
    optimizations = result.observations.optimizations()
    lines.append(f"applied optimizations: {len(optimizations)}")
    if result.offloaded_tables:
        lines.append(
            "controller must now implement: "
            + ", ".join(result.offloaded_tables)
        )
    lines.append("")
    lines.append("observations for review:")
    lines.append("-" * 72)
    for obs in result.observations.items:
        lines.append(obs.render())
        lines.append("")
    return "\n".join(lines)


def summary_line(result: P2GOResult) -> str:
    """One-line summary for benchmark output."""
    path = " -> ".join(str(o.stages) for o in result.outcomes)
    return (
        f"{result.original_program.name}: stages {path} "
        f"({len(result.observations.optimizations())} optimizations)"
    )


def render_serve_report(serve: "ServeResult") -> str:
    """The continuous-optimization daemon's end-of-run report.

    The operator-facing half of :mod:`repro.core.serve`: traffic
    volume and throughput, the alert/reaction funnel (alerts ->
    re-optimizations -> gate verdicts -> swaps), per-cycle detail, and
    the zero-misprocessed invariant front and centre.
    """
    stats = serve.stats
    lines: List[str] = [
        "=" * 72,
        f"P2GO serve report — {serve.initial.original_program.name}",
        "=" * 72,
        "",
        f"packets: {stats.packets_in} in, "
        f"{stats.packets_processed} processed, "
        f"{stats.packets_dropped} dropped by policy, "
        f"{stats.misprocessed} misprocessed",
        f"throughput: {stats.packets_per_second:,.0f} packets/s over "
        f"{stats.elapsed_seconds:.2f}s",
        "",
        f"alerts: {stats.drift_alerts} hit-rate drift, "
        f"{stats.combination_alerts} new action combinations "
        f"({stats.alerts_coalesced} coalesced into pending cycles)",
        f"cycles: {stats.reoptimizations} re-optimizations "
        f"({stats.failed_reoptimizations} failed), "
        f"{stats.swaps} promoted swaps, "
        f"{stats.rejected_promotions} rejected by the equivalence gate",
    ]
    if stats.swap_seconds:
        lines.append(
            f"swap latency: {stats.swap_latency * 1e3:.2f} ms mean, "
            f"{max(stats.swap_seconds) * 1e3:.2f} ms max"
        )
    if stats.under_reoptimize_pps:
        mean_pps = sum(stats.under_reoptimize_pps) / len(
            stats.under_reoptimize_pps
        )
        lines.append(
            f"throughput while re-optimizing: {mean_pps:,.0f} packets/s "
            f"({len(stats.under_reoptimize_pps)} cycle(s) — traffic "
            "kept flowing)"
        )
    if stats.events:
        lines.append("")
        lines.append("cycles:")
        for i, event in enumerate(stats.events, 1):
            verdict = "promoted" if event.promoted else "rejected"
            lines.append(
                f"  #{i} at packet {event.packet_index}: {verdict}; "
                f"stages {event.stages_before} -> {event.stages_after}, "
                f"reoptimize {event.reoptimize_seconds:.2f}s, "
                f"gate {event.gate_mismatches}/{event.gate_packets} "
                f"mismatches, swap {event.swap_seconds * 1e3:.2f} ms"
            )
    lines.append("")
    lines.append(
        f"serving: {serve.program.name} at "
        f"{serve.current.stages_after} stages "
        f"(started at {serve.initial.stages_before})"
    )
    if serve.session_counters is not None:
        lines.append("session: " + serve.session_counters.render())
    return "\n".join(lines)


def render_fleet_report(fleet: "FleetResult") -> str:
    """The fabric-level report for one fleet run.

    Per switch: the stage path and where its probe answers came from
    (memo / shared disk store / executed).  For the fabric: total
    stages reclaimed, the cross-switch reuse rate the shared store
    bought, lease contention (waits that turned into disk hits instead
    of duplicate work), and the wall clock against the sum of the
    per-switch times — what the same fabric would cost run serially.
    """
    agg = fleet.aggregate()
    lines: List[str] = [
        "=" * 72,
        f"P2GO fleet report — {agg['switches']} switches, "
        f"{agg['workers']} workers",
        "=" * 72,
        "",
    ]
    name_width = max(
        (len(switch.name) for switch in fleet.switches), default=6
    )
    for switch in fleet.switches:
        result = switch.result
        path = " -> ".join(str(o.stages) for o in result.outcomes)
        provenance = ""
        counters = result.session_counters
        if counters is not None:
            provenance = (
                f"  [memo {counters.compile_hits + counters.profile_hits}"
                f" / disk {counters.compile_disk_hits + counters.profile_disk_hits}"
                f" / executed "
                f"{counters.compile_executions + counters.profile_executions}]"
            )
        lines.append(
            f"{switch.name:<{name_width}}  stages {path:<20} "
            f"{switch.seconds:6.2f}s{provenance}"
        )
    lines.append("")
    lines.append(
        f"stages reclaimed: {agg['stages_reclaimed']} "
        f"({agg['stages_before']} -> {agg['stages_after']} fabric-wide)"
    )
    lines.append(
        f"probes: {agg['probe_calls']} asked, "
        f"{agg['probe_executions']} executed, "
        f"{agg['probe_disk_hits']} answered by the shared store "
        f"(cross-switch reuse {agg['disk_reuse_rate']:.1%})"
    )
    if fleet.lease_probes:
        lines.append(
            f"leases: {agg['lease_claims']} claimed, "
            f"{agg['lease_waits']} contended waits, "
            f"{agg['lease_wait_hits']} resolved as disk hits, "
            f"{agg['leases_reaped']} stale leases reaped"
        )
    if fleet.store_root is not None:
        lines.append(f"shared store: {fleet.store_root}")
    speedup = (
        agg["switch_seconds"] / agg["wall_seconds"]
        if agg["wall_seconds"] > 0
        else 0.0
    )
    lines.append(
        f"wall clock: {agg['wall_seconds']:.2f}s for the fleet vs "
        f"{agg['switch_seconds']:.2f}s of per-switch work "
        f"({speedup:.2f}x)"
    )
    return "\n".join(lines)


def render_explore_report(explore: "ExploreResult") -> str:
    """The sweep-level report for one design-space exploration.

    Per program: the Pareto frontier (every non-dominated feasible,
    fitting point with its objective values) and the fit breakpoint
    (the smallest swept shape the optimized program still fits).  For
    the sweep: the point census, probe provenance, and the cross-point
    reuse rate the shared store bought.  Timings and worker counts live
    here — and only here; the canonical JSON excludes them so its bytes
    are worker-count-independent.
    """
    agg = explore.aggregate()
    lines: List[str] = [
        "=" * 72,
        f"P2GO design-space exploration — {agg['points']} points "
        f"({explore.space.size}-point space), {explore.workers} workers",
        "=" * 72,
        "",
    ]
    frontier = explore.frontier()
    breakpoints = explore.breakpoints()
    for program in explore.space.programs:
        front = frontier.get(program, [])
        fitting = sum(
            1
            for outcome in explore.outcomes
            if outcome.point.program == program
            and outcome.feasible
            and outcome.fits
        )
        lines.append(
            f"{program}: {len(front)} frontier point(s) of "
            f"{fitting} fitting"
        )
        for outcome in front:
            metrics = outcome.metrics
            lines.append(
                f"  {outcome.point.point_id:<48} "
                f"stages {metrics['stages_used']:>2}  "
                f"load {metrics['controller_load']:>6.1%}  "
                f"coverage {metrics['profile_coverage']:>6.1%}  "
                f"compiles {metrics['compile_count']:>3}"
            )
        breakpoint_info = breakpoints.get(program)
        if breakpoint_info is not None:
            smallest = breakpoint_info["smallest_fit"]
            shape = (
                "x".join(str(v) for v in smallest)
                if smallest is not None
                else "none — no swept shape fits"
            )
            lines.append(
                f"  smallest fitting shape: {shape} "
                f"({breakpoint_info['shapes_fit']}/"
                f"{breakpoint_info['shapes_swept']} shapes fit)"
            )
        lines.append("")
    if agg["infeasible"]:
        lines.append(
            f"infeasible points: {agg['infeasible']} (program cannot be "
            "allocated on the shape at all)"
        )
    lines.append(
        f"probes: {agg['probe_calls']} asked, "
        f"{agg['probe_executions']} executed, "
        f"{agg['probe_disk_hits']} answered by the shared store "
        f"(cross-point reuse {agg['disk_reuse_rate']:.1%})"
    )
    if explore.store_root is not None:
        lines.append(f"shared store: {explore.store_root}")
    point_seconds = sum(outcome.seconds for outcome in explore.outcomes)
    speedup = (
        point_seconds / explore.wall_seconds
        if explore.wall_seconds > 0
        else 0.0
    )
    lines.append(
        f"wall clock: {explore.wall_seconds:.2f}s for the sweep vs "
        f"{point_seconds:.2f}s of per-point work ({speedup:.2f}x)"
    )
    return "\n".join(lines)
