"""The seed orchestrator, frozen as a reference implementation.

This is the pre-pass-framework ``P2GO.run()`` — the hard-coded
``if/elif`` chain with one accept/observe/recompile block per phase,
including its redundant invocations (the back-to-back duplicate compile
after phase 3's round loop, the re-profiles of programs a phase just
profiled).  It is kept verbatim for two consumers:

* ``tests/test_passes.py`` pins that the pass-framework orchestrator
  produces an equivalent :class:`~repro.core.pipeline.P2GOResult` for
  the paper's default phase order and the ablation reorderings;
* ``benchmarks/bench_pipeline.py`` measures what the memoizing session
  saves against it.

Every compile/profile goes through a *non-memoizing*
:class:`~repro.core.session.OptimizationContext`, so the run is
bit-identical to the seed and its counters record the seed's true
invocation counts.  Do not extend this module; new behaviour belongs in
the pass framework.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core import phase_dependencies, phase_memory, phase_offload
from repro.core.observations import (
    Observation,
    ObservationKind,
    ObservationLog,
    Phase,
)
from repro.core.passes import PhaseOutcome, ReviewHook
from repro.core.pipeline import P2GOResult
from repro.core.session import OptimizationContext
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.target.model import DEFAULT_TARGET, TargetModel
from repro.traffic.generators import TracePacket


def run_seed(
    program: Program,
    config: RuntimeConfig,
    trace: Sequence[TracePacket],
    target: TargetModel = DEFAULT_TARGET,
    phases: Sequence[int] = (2, 3, 4),
    max_dependency_removals: int = 8,
    max_memory_reductions: int = 1,
    offload_min_stage_savings: int = 1,
    max_redirect_fraction: float = phase_offload.DEFAULT_MAX_REDIRECT,
    review_hook: Optional[ReviewHook] = None,
) -> P2GOResult:
    """The seed ``P2GO.run()``, verbatim (see module docstring)."""
    program.validate()
    config.validate(program)
    trace = list(trace)
    # Counting executor only: memoize=False replays the seed's every
    # invocation; propose/commit are never used.
    session = OptimizationContext(
        program, config, trace, target, memoize=False
    )

    log = ObservationLog()
    outcomes: List[PhaseOutcome] = []

    def accepted(obs: Observation) -> bool:
        log.add(obs)
        if (
            obs.kind is ObservationKind.OPTIMIZATION
            and review_hook is not None
        ):
            ok = review_hook(obs)
            if not ok:
                log.add(
                    Observation(
                        phase=obs.phase,
                        kind=ObservationKind.REJECTED,
                        title=f"programmer rejected: {obs.title}",
                        details="change rolled back at review",
                    )
                )
            return ok
        return True

    # Phase 1: profiling.
    initial_profile, profiling_perf = session.profile_with_perf(
        program, config
    )
    log.add(
        Observation(
            phase=Phase.PROFILING,
            kind=ObservationKind.PROFILE,
            title=(
                f"profiled {initial_profile.total_packets} packets, "
                f"{len(initial_profile.nonexclusive_sets)} distinct "
                f"non-exclusive action sets"
            ),
            details=(
                f"replayed at {profiling_perf.packets_per_second():,.0f} "
                f"packets/s (flow-cache hit rate "
                f"{profiling_perf.cache_hit_rate():.1%}); "
                "per-table hit rates: "
                + ", ".join(
                    f"{t}={initial_profile.hit_rate(t):.1%}"
                    for t in program.tables_in_control_order()
                )
            ),
        )
    )
    current = program
    profile = initial_profile
    result = session.compile(current)
    outcomes.append(
        PhaseOutcome(
            phase=Phase.PROFILING,
            stages=result.stages_used,
            stage_map=result.stage_map(),
        )
    )

    offloaded_tables: Tuple[str, ...] = ()
    for phase_number in phases:
        if phase_number == 2:
            for _round in range(max_dependency_removals):
                step = phase_dependencies.run_phase(
                    current, result, profile
                )
                applied = False
                for obs in step.observations:
                    if obs.kind is ObservationKind.OPTIMIZATION:
                        if accepted(obs):
                            applied = True
                    else:
                        log.add(obs)
                if step.removed is None or not applied:
                    break
                current = step.program
                result = session.compile(current)
                profile = session.profile(current, config)
            outcomes.append(
                PhaseOutcome(
                    phase=Phase.REMOVE_DEPENDENCIES,
                    stages=result.stages_used,
                    stage_map=result.stage_map(),
                )
            )
        elif phase_number == 3:
            for _round in range(max_memory_reductions):
                step = phase_memory.run_phase(
                    current, config, trace, target, profile,
                    session=session,
                )
                applied = False
                for obs in step.observations:
                    if obs.kind is ObservationKind.OPTIMIZATION:
                        if accepted(obs):
                            applied = True
                    else:
                        log.add(obs)
                if step.accepted is None or not applied:
                    break
                current = step.program
                result = session.compile(current)
                profile = session.profile(current, config)
            # The seed's duplicate compile (ISSUE 3, satellite 1): the
            # round loop already compiled `current` — kept verbatim here.
            result = session.compile(current)
            outcomes.append(
                PhaseOutcome(
                    phase=Phase.REDUCE_MEMORY,
                    stages=result.stages_used,
                    stage_map=result.stage_map(),
                )
            )
        elif phase_number == 4:
            step = phase_offload.run_phase(
                current,
                config,
                trace,
                target,
                min_stage_savings=offload_min_stage_savings,
                max_redirect_fraction=max_redirect_fraction,
                session=session,
            )
            applied = False
            for obs in step.observations:
                if obs.kind is ObservationKind.OPTIMIZATION:
                    if accepted(obs):
                        applied = True
                else:
                    log.add(obs)
            if step.offloaded is not None and applied:
                current = step.program
                config = step.config
                offloaded_tables = step.offloaded.candidate.tables
                result = session.compile(current)
                profile = session.profile(current, config)
            else:
                result = session.compile(current)
            outcomes.append(
                PhaseOutcome(
                    phase=Phase.OFFLOAD_CODE,
                    stages=result.stages_used,
                    stage_map=result.stage_map(),
                )
            )
        else:
            raise ValueError(
                f"unknown optimization phase {phase_number!r}; "
                "valid phases are 2, 3, 4"
            )

    return P2GOResult(
        original_program=program,
        optimized_program=current,
        final_config=config,
        observations=log,
        initial_profile=initial_profile,
        outcomes=outcomes,
        offloaded_tables=offloaded_tables,
        profiling_perf=profiling_perf,
        session_counters=session.counters,
    )
