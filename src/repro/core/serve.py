"""Continuous optimization as a long-running service (§6's endgame).

The paper's dynamic-compilation vision stops at "online profiling ...
enables real-time adaptation of programs".  This module closes that
loop as a daemon:

* **Ingest** — a background thread pulls packets from a pluggable
  :class:`FeedSource` (pcap/trace replay, the seeded drift-scenario
  generator, newline-framed hex lines from a file, or a TCP socket) and
  forwards every packet through *two* switches in lockstep: the
  **serving** switch (the currently promoted optimized program) and the
  **monitor** (an :class:`~repro.core.online.OnlineProfiler` running the
  instrumented *original* program — the semantic reference).  A
  forwarding-decision disagreement between the two is a *misprocessed*
  packet; the counter must stay at zero.
* **React** — a drift alert from the monitor triggers a warm
  :meth:`~repro.core.online.OnlineProfiler.reoptimize` over the recent
  packet window, through the shared
  :class:`~repro.core.session.OptimizationContext` (and its persistent
  store, when attached).  With ``workers >= 1`` the re-run happens in a
  worker thread while traffic keeps flowing against the current
  program; ``workers == 0`` re-optimizes inline in the ingest loop
  (deterministic counts — what the CI gate pins).
* **Promote** — the re-optimized program is promoted only if the strict
  equivalence checker (:func:`~repro.controller.equivalence.
  compare_behavior`) passes on a trace of the most recent window;
  otherwise the promotion is *rejected* and the current program keeps
  serving.  Because the strict gate compares forwarding decisions
  bit-for-bit, the serve loop defaults to ``phases=(2, 3)`` — a phase-4
  offload intentionally changes ``to_controller`` for redirected
  packets and would (correctly) never pass this gate.  That is the swap
  contract: only transformations invisible to the data plane are
  promotable while packets are in flight.
* **Swap** — promotion is an atomic swap under the packet lock: the new
  serving switch *and* a re-instrumented monitor are built off to the
  side first (switch construction, baseline profile, window reset), so
  the lock is held only for the pointer flip.  The new monitor's
  baseline is the original program's profile on the reoptimize window —
  a session memo hit — so post-swap alerts compare live traffic against
  the *new* optimization-time observations, not the stale ones.

No packet is dropped or stalled by a swap: the ingest loop processes
each packet against whichever (serving, monitor) pair is installed when
it acquires the lock, and both members of the pair always flip
together, so their register state stays in lockstep.
"""

from __future__ import annotations

import socket as socket_module
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from collections import deque
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.controller.equivalence import compare_behavior
from repro.core.online import AlertKind, OnlineAlert, OnlineProfiler
from repro.core.pipeline import P2GO, P2GOResult
from repro.core.session import OptimizationContext
from repro.core.store import resolve_store
from repro.exceptions import ReproError
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.sim.switch import BehavioralSwitch
from repro.target.model import DEFAULT_TARGET, TargetModel
from repro.traffic.generators import TracePacket

Log = Callable[[str], None]


# ----------------------------------------------------------------------
# Feed sources


def format_packet_line(packet: TracePacket) -> str:
    """One packet as a feed line: ``<hex bytes> [ingress_port]``."""
    if isinstance(packet, tuple):
        data, port = packet
    else:
        data, port = packet, 0
    return data.hex() if port == 0 else f"{data.hex()} {port}"


def parse_packet_line(line: str) -> Optional[TracePacket]:
    """Parse one feed line; None for blanks and ``#`` comments."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    data = bytes.fromhex(parts[0])
    port = int(parts[1]) if len(parts) > 1 else 0
    return (data, port) if port else data


class FeedSource:
    """Where the daemon's packets come from.

    Implementations yield :data:`~repro.traffic.generators.TracePacket`
    items (bytes, or ``(bytes, ingress_port)``) and may block — the
    daemon consumes them on a dedicated ingest thread.
    """

    def packets(self) -> Iterator[TracePacket]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class TraceFeed(FeedSource):
    """Replay a recorded trace, optionally several times over."""

    def __init__(self, trace: Sequence[TracePacket], repeat: int = 1):
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        self.trace = list(trace)
        self.repeat = repeat

    def packets(self) -> Iterator[TracePacket]:
        for _ in range(self.repeat):
            yield from self.trace

    def describe(self) -> str:
        return (
            f"trace replay ({len(self.trace)} packets x {self.repeat})"
        )


class GeneratorFeed(FeedSource):
    """Scripted traffic: named segments played back to back.

    The drift scenarios the service exists for are staged traffic-mix
    shifts; a segment list makes the script explicit and reportable.
    """

    def __init__(
        self, segments: Sequence[Tuple[str, Sequence[TracePacket]]]
    ):
        self.segments = [
            (label, list(packets)) for label, packets in segments
        ]

    def packets(self) -> Iterator[TracePacket]:
        for _label, packets in self.segments:
            yield from packets

    def describe(self) -> str:
        parts = ", ".join(
            f"{label}:{len(packets)}" for label, packets in self.segments
        )
        return f"generator ({parts})"

    @classmethod
    def firewall_drift(
        cls,
        total: int = 3000,
        seed: int = 0,
        shift_at: float = 0.5,
        flood_share: float = 0.5,
    ) -> "GeneratorFeed":
        """The canonical drift scenario for the built-in firewall.

        A *steady* segment mirrors the optimization-time trace's mix
        (8% blocked UDP, 14% bad DHCP, ~3% DNS, rest benign), then the
        mix *shifts*: a previously unseen talker floods DNS at
        ``flood_share`` of the traffic, dragging the sketch tables'
        windowed hit rates far past any sane tolerance.  Deterministic
        in ``(total, seed, shift_at, flood_share)``.
        """
        import random

        from repro.packets.headers import ip_to_int
        from repro.programs.example_firewall import (
            BLOCKED_UDP_PORTS,
            HEAVY_DNS_DST,
            HEAVY_DNS_SRC,
            UNTRUSTED_INGRESS_PORTS,
        )
        from repro.traffic.generators import (
            dhcp_stream,
            dns_stream,
            interleave,
            tcp_background,
            udp_background,
        )

        if not 0.0 < shift_at < 1.0:
            raise ValueError("shift_at must be in (0, 1)")
        rng = random.Random(seed)
        steady_n = int(total * shift_at)
        flood_n = total - steady_n

        blocked = udp_background(
            int(steady_n * 0.08), rng, BLOCKED_UDP_PORTS
        )
        dhcp_bad = dhcp_stream(
            int(steady_n * 0.14), rng,
            ingress_port=UNTRUSTED_INGRESS_PORTS[0],
        )
        dns = dns_stream(
            HEAVY_DNS_SRC, HEAVY_DNS_DST, max(int(steady_n * 0.03), 1)
        )
        benign_n = steady_n - len(blocked) - len(dhcp_bad) - len(dns)
        steady = interleave(
            rng, blocked, dhcp_bad, dns, tcp_background(benign_n, rng)
        )

        flood_src = ip_to_int("10.66.66.66")
        flood_dst = ip_to_int("192.168.99.99")
        flood_dns = dns_stream(
            flood_src, flood_dst, int(flood_n * flood_share),
            query_id_base=5000,
        )
        flood = interleave(
            rng, flood_dns, tcp_background(flood_n - len(flood_dns), rng)
        )
        return cls([("steady", steady), ("flood", flood)])


class LineFeed(FeedSource):
    """Newline-framed hex packets from a path or a file-like object.

    Line format (see :func:`format_packet_line`)::

        <hex packet bytes> [ingress_port]

    Blank lines and ``#`` comments are skipped.  With a file-like
    source (e.g. ``sys.stdin``) the feed blocks on the next line, which
    is exactly what a piped live feed wants.
    """

    def __init__(self, source):
        self.source = source

    def packets(self) -> Iterator[TracePacket]:
        if isinstance(self.source, (str, Path)):
            with open(self.source, "r") as handle:
                yield from self._parse_lines(handle)
        else:
            yield from self._parse_lines(self.source)

    @staticmethod
    def _parse_lines(lines: Iterable[str]) -> Iterator[TracePacket]:
        for line in lines:
            packet = parse_packet_line(line)
            if packet is not None:
                yield packet

    def describe(self) -> str:
        if isinstance(self.source, (str, Path)):
            return f"line feed ({self.source})"
        return "line feed (stream)"


class SocketFeed(FeedSource):
    """The :class:`LineFeed` wire format over one TCP connection.

    The listening socket is bound eagerly (so :attr:`address` is known
    — port 0 picks a free one) and :meth:`packets` accepts a single
    client, then streams its lines until EOF.  ``accept_timeout``
    bounds how long the feed waits for that client; past it the feed
    simply ends, so a ``--duration``-bounded daemon never wedges on an
    idle socket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        accept_timeout: Optional[float] = 30.0,
    ):
        self._server = socket_module.socket(
            socket_module.AF_INET, socket_module.SOCK_STREAM
        )
        self._server.setsockopt(
            socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1
        )
        self._server.bind((host, port))
        self._server.listen(1)
        self.accept_timeout = accept_timeout

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.getsockname()[:2]

    def packets(self) -> Iterator[TracePacket]:
        self._server.settimeout(self.accept_timeout)
        try:
            try:
                conn, _peer = self._server.accept()
            except socket_module.timeout:
                return
            with conn, conn.makefile("r") as lines:
                yield from LineFeed._parse_lines(lines)
        finally:
            self.close()

    def close(self) -> None:
        try:
            self._server.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def describe(self) -> str:
        host, port = self.address
        return f"socket feed ({host}:{port})"


# ----------------------------------------------------------------------
# Stats


@dataclass
class SwapEvent:
    """One completed drift -> reoptimize -> gate cycle."""

    #: Packets processed when the cycle's decision landed.
    packet_index: int
    #: Whether the gate passed and the program was swapped in.
    promoted: bool
    #: Wall time of the warm re-optimization run.
    reoptimize_seconds: float
    #: Build-new-switches + pointer-flip time (0.0 when rejected).
    swap_seconds: float
    #: Packets the equivalence gate replayed / how many disagreed.
    gate_packets: int
    gate_mismatches: int
    #: Stage count of the candidate program (before -> after).
    stages_before: int
    stages_after: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "packet_index": self.packet_index,
            "promoted": self.promoted,
            "reoptimize_seconds": round(self.reoptimize_seconds, 4),
            "swap_seconds": round(self.swap_seconds, 6),
            "gate_packets": self.gate_packets,
            "gate_mismatches": self.gate_mismatches,
            "stages_before": self.stages_before,
            "stages_after": self.stages_after,
        }


@dataclass
class ServeStats:
    """Everything the daemon counts.  Counters (not timings) are
    deterministic in sync mode (``workers == 0``) — what the bench
    gate pins."""

    packets_in: int = 0
    packets_processed: int = 0
    #: Serving-switch drop verdicts (data-plane policy, not a failure).
    packets_dropped: int = 0
    #: Serving vs monitor forwarding-decision disagreements.  The swap
    #: contract says this stays 0: both switches flip together, so
    #: their register state evolves in lockstep.
    misprocessed: int = 0
    drift_alerts: int = 0
    combination_alerts: int = 0
    #: Alerts that arrived while a re-optimization was already pending
    #: or in flight (the daemon runs one cycle at a time).
    alerts_coalesced: int = 0
    reoptimizations: int = 0
    failed_reoptimizations: int = 0
    swaps: int = 0
    rejected_promotions: int = 0
    elapsed_seconds: float = 0.0
    swap_seconds: List[float] = dc_field(default_factory=list)
    reoptimize_seconds: List[float] = dc_field(default_factory=list)
    #: Ingest throughput measured while a re-optimization was in
    #: flight (async mode only) — the "traffic keeps flowing" number.
    under_reoptimize_pps: List[float] = dc_field(default_factory=list)
    events: List[SwapEvent] = dc_field(default_factory=list)

    @property
    def packets_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.packets_processed / self.elapsed_seconds

    @property
    def swap_latency(self) -> float:
        """Mean seconds a promotion spent building + flipping."""
        if not self.swap_seconds:
            return 0.0
        return sum(self.swap_seconds) / len(self.swap_seconds)

    def counts(self) -> Dict[str, int]:
        """The deterministic (sync-mode) counters, for bench gating."""
        return {
            "packets_in": self.packets_in,
            "packets_processed": self.packets_processed,
            "packets_dropped": self.packets_dropped,
            "misprocessed": self.misprocessed,
            "drift_alerts": self.drift_alerts,
            "combination_alerts": self.combination_alerts,
            "alerts_coalesced": self.alerts_coalesced,
            "reoptimizations": self.reoptimizations,
            "failed_reoptimizations": self.failed_reoptimizations,
            "swaps": self.swaps,
            "rejected_promotions": self.rejected_promotions,
        }

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = dict(self.counts())
        data["elapsed_seconds"] = round(self.elapsed_seconds, 3)
        data["packets_per_second"] = round(self.packets_per_second, 1)
        data["swap_latency_seconds"] = round(self.swap_latency, 6)
        data["swap_seconds"] = [round(s, 6) for s in self.swap_seconds]
        data["reoptimize_seconds"] = [
            round(s, 3) for s in self.reoptimize_seconds
        ]
        data["under_reoptimize_pps"] = [
            round(p, 1) for p in self.under_reoptimize_pps
        ]
        data["events"] = [event.as_dict() for event in self.events]
        return data


@dataclass
class ServeResult:
    """What one daemon run hands back when the feed ends."""

    stats: ServeStats
    #: The startup optimization (what the daemon began serving).
    initial: P2GOResult
    #: Every gate-passing re-optimization, oldest first.
    promotions: List[P2GOResult]
    #: The program/config serving when the daemon stopped.
    program: Program
    config: RuntimeConfig
    #: The run that produced the final serving program (== ``initial``
    #: when nothing was ever promoted).
    current: P2GOResult
    session_counters: Optional[object] = None
    store_stats: Optional[dict] = None


# ----------------------------------------------------------------------
# The daemon


class ContinuousOptimizer:
    """Serve, monitor, re-optimize, and atomically swap — forever.

    ``workers`` selects the reaction mode:

    * ``0`` — re-optimization runs inline in the ingest loop (traffic
      pauses for it).  Every counter is deterministic; the CI gate and
      the regression tests run this mode.
    * ``>= 1`` — re-optimization runs in a worker thread while traffic
      keeps flowing; the session additionally probes candidates with
      ``workers`` parallel workers (1 = serial probing).

    ``phases`` defaults to ``(2, 3)``: the promotion gate is the strict
    equivalence checker, and a phase-4 offload (which redirects packets
    to the controller) can never pass it — see the module docstring's
    swap contract.
    """

    def __init__(
        self,
        program: Program,
        config: RuntimeConfig,
        baseline_trace: Sequence[TracePacket],
        target: TargetModel = DEFAULT_TARGET,
        phases: Sequence[int] = (2, 3),
        window: int = 1000,
        hit_rate_tolerance: float = 0.10,
        store=False,
        workers: int = 0,
        trigger_kinds: Sequence[AlertKind] = (
            AlertKind.HIT_RATE_DRIFT,
            AlertKind.NEW_ACTION_COMBINATION,
        ),
        log: Optional[Log] = None,
        **p2go_kwargs,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.program = program
        self.config = config
        self.baseline_trace = list(baseline_trace)
        self.target = target
        self.phases = tuple(phases)
        self.window = window
        self.hit_rate_tolerance = hit_rate_tolerance
        self.store = store
        self.workers = workers
        self.trigger_kinds = frozenset(trigger_kinds)
        self.log = log
        self.p2go_kwargs = dict(p2go_kwargs)

        #: Guards the (serving, monitor) pair, the recent-packet ring,
        #: and every counter: per-packet processing holds it, and a
        #: swap flips both switch references under it.
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._serving: Optional[BehavioralSwitch] = None
        self._monitor: Optional[OnlineProfiler] = None
        self._ring: Deque[TracePacket] = deque(maxlen=window)
        self._session: Optional[OptimizationContext] = None
        self._reopt_pending = False
        self._reopt_inflight = False
        self._ingest_error: Optional[BaseException] = None
        self.stats = ServeStats()
        self.initial: Optional[P2GOResult] = None
        self.promotions: List[P2GOResult] = []
        self._current: Optional[P2GOResult] = None

    # ------------------------------------------------------------------
    def _note(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def stop(self) -> None:
        """Ask the ingest loop to wind down after the current packet."""
        self._stop.set()

    # ------------------------------------------------------------------
    # Alerts -> triggers

    def _on_alert(self, alert: OnlineAlert) -> None:
        # Runs inside monitor.process(), i.e. on the ingest thread
        # with the packet lock held.
        if alert.kind is AlertKind.HIT_RATE_DRIFT:
            self.stats.drift_alerts += 1
        else:
            self.stats.combination_alerts += 1
        if alert.kind not in self.trigger_kinds:
            return
        if self._reopt_pending or self._reopt_inflight:
            self.stats.alerts_coalesced += 1
            return
        self._reopt_pending = True
        self._note(
            f"alert [{alert.kind.value}] {alert.subject}: "
            f"{alert.details} (packet {alert.packet_index})"
        )

    def _take_window(self) -> Optional[List[TracePacket]]:
        """Claim the pending trigger if the window has filled; the
        snapshot is the re-optimization's trace."""
        with self._lock:
            if not self._reopt_pending:
                return None
            if len(self._ring) < self.window:
                # A combination alert can fire before the window fills;
                # re-optimizing on a stub trace would be garbage in.
                return None
            self._reopt_pending = False
            self._reopt_inflight = True
            return list(self._ring)

    def _recent_window(self) -> List[TracePacket]:
        with self._lock:
            return list(self._ring)

    # ------------------------------------------------------------------
    # Packet path

    def _process_packet(self, packet: TracePacket) -> None:
        if isinstance(packet, tuple):
            data, port = packet
        else:
            data, port = packet, 0
        with self._lock:
            served = self._serving.process(data, port)
            observed = self._monitor.process(data, port)
            self._ring.append(packet)
            self.stats.packets_processed += 1
            if served.dropped:
                self.stats.packets_dropped += 1
            if (
                served.forwarding_decision()
                != observed.forwarding_decision()
            ):
                self.stats.misprocessed += 1

    def _ingest(
        self,
        feed: FeedSource,
        max_packets: Optional[int],
        deadline: Optional[float],
    ) -> None:
        try:
            for packet in feed.packets():
                if self._stop.is_set():
                    break
                if (
                    max_packets is not None
                    and self.stats.packets_in >= max_packets
                ):
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                with self._lock:
                    self.stats.packets_in += 1
                self._process_packet(packet)
                if self.workers == 0:
                    window = self._take_window()
                    if window is not None:
                        try:
                            self._cycle(window)
                        finally:
                            self._reopt_inflight = False
        except BaseException as exc:  # propagate to run()
            self._ingest_error = exc

    # ------------------------------------------------------------------
    # Drift -> reoptimize -> gate -> swap

    def _cycle(self, window: List[TracePacket]) -> None:
        stats = self.stats
        monitor = self._monitor
        self._note(
            f"reoptimizing on the recent {len(window)}-packet window"
        )
        packets_before = stats.packets_processed
        t0 = time.perf_counter()
        try:
            result = monitor.reoptimize(
                window, phases=self.phases, **self.p2go_kwargs
            )
        except ReproError as exc:
            with self._lock:
                stats.failed_reoptimizations += 1
            self._note(f"reoptimize failed, still serving: {exc}")
            return
        reoptimize_seconds = time.perf_counter() - t0
        if self.workers > 0 and reoptimize_seconds > 0:
            processed = stats.packets_processed - packets_before
            stats.under_reoptimize_pps.append(
                processed / reoptimize_seconds
            )

        # Promotion gate: the candidate must be behaviourally identical
        # to the original program on the *most recent* window — in
        # async mode traffic moved on while we re-optimized, so the
        # gate re-snapshots instead of reusing the optimization trace.
        gate_trace = self._recent_window()
        report = compare_behavior(
            self.program,
            self.config,
            result.optimized_program,
            result.final_config,
            gate_trace,
        )
        swap_seconds = 0.0
        if report.equivalent:
            swap_seconds = self._swap(result)
        event = SwapEvent(
            packet_index=stats.packets_processed,
            promoted=report.equivalent,
            reoptimize_seconds=reoptimize_seconds,
            swap_seconds=swap_seconds,
            gate_packets=report.total,
            gate_mismatches=len(report.mismatches),
            stages_before=result.stages_before,
            stages_after=result.stages_after,
        )
        with self._lock:
            stats.reoptimizations += 1
            stats.reoptimize_seconds.append(reoptimize_seconds)
            stats.events.append(event)
            if report.equivalent:
                stats.swaps += 1
                stats.swap_seconds.append(swap_seconds)
            else:
                stats.rejected_promotions += 1
        if report.equivalent:
            self._note(
                f"swapped in re-optimized program "
                f"({result.stages_before} -> {result.stages_after} "
                f"stages) in {swap_seconds * 1e3:.2f} ms"
            )
        else:
            self._note(
                f"promotion rejected: {len(report.mismatches)} of "
                f"{report.total} gate packets disagreed; still serving "
                "the current program"
            )

    def _swap(self, result: P2GOResult) -> float:
        """Build the new (serving, monitor) pair off to the side, then
        atomically flip both under the packet lock.  Returns seconds
        from decision to flip — the promotion latency."""
        t0 = time.perf_counter()
        serving = BehavioralSwitch(
            result.optimized_program, result.final_config
        )
        # The new baseline is the original program's profile on the
        # reoptimize window — the session is keyed on that trace right
        # now, so this is a memo hit, and post-swap alerts compare
        # against the *new* optimization-time observations.
        baseline = self._session.profile(self.program, self.config)
        monitor = OnlineProfiler(
            self.program,
            self.config,
            baseline=baseline,
            window=self.window,
            hit_rate_tolerance=self.hit_rate_tolerance,
            alert_callback=self._on_alert,
            session=self._session,
        )
        with self._lock:
            self._serving = serving
            self._monitor = monitor
            self._ring.clear()  # fresh drift window for the new baseline
            self._current = result
        self.promotions.append(result)
        return time.perf_counter() - t0

    # ------------------------------------------------------------------
    def run(
        self,
        feed: FeedSource,
        max_packets: Optional[int] = None,
        duration: Optional[float] = None,
    ) -> ServeResult:
        """Optimize, then serve ``feed`` until it ends (or
        ``max_packets`` / ``duration`` / :meth:`stop` intervenes)."""
        session = OptimizationContext(
            self.program,
            self.config,
            self.baseline_trace,
            self.target,
            workers=max(self.workers, 1),
            store=resolve_store(self.store),
        )
        self._session = session
        try:
            self._note(
                f"initial optimization on "
                f"{len(self.baseline_trace)} baseline packets"
            )
            self.initial = P2GO(
                self.program,
                self.config,
                self.baseline_trace,
                self.target,
                session=session,
                phases=self.phases,
                **self.p2go_kwargs,
            ).run()
            self._current = self.initial
            self._serving = BehavioralSwitch(
                self.initial.optimized_program, self.initial.final_config
            )
            self._monitor = OnlineProfiler(
                self.program,
                self.config,
                window=self.window,
                hit_rate_tolerance=self.hit_rate_tolerance,
                alert_callback=self._on_alert,
                session=session,
            )
            self._note(
                f"serving {self.program.name} "
                f"({self.initial.stages_before} -> "
                f"{self.initial.stages_after} stages) from "
                + feed.describe()
            )
            deadline = (
                time.monotonic() + duration if duration is not None
                else None
            )
            ingest = threading.Thread(
                target=self._ingest,
                args=(feed, max_packets, deadline),
                name="p2go-serve-ingest",
                daemon=True,
            )
            t_start = time.perf_counter()
            ingest.start()
            if self.workers == 0:
                ingest.join()
            else:
                self._coordinate(ingest)
            self.stats.elapsed_seconds = time.perf_counter() - t_start
            if self._ingest_error is not None:
                raise self._ingest_error
            session.flush_store()
            return ServeResult(
                stats=self.stats,
                initial=self.initial,
                promotions=list(self.promotions),
                program=self._current.optimized_program,
                config=self._current.final_config,
                current=self._current,
                session_counters=session.counters,
                store_stats=(
                    session.store.stats()
                    if session.store is not None
                    else None
                ),
            )
        finally:
            self._session = None
            session.close()

    def _coordinate(self, ingest: threading.Thread) -> None:
        """Async mode: watch for triggers, run cycles on a worker
        thread, and drain the in-flight cycle when the feed ends."""
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="p2go-serve-reopt"
        )
        future: Optional[Future] = None
        try:
            while True:
                if future is not None and future.done():
                    try:
                        future.result()
                    finally:
                        future = None
                        self._reopt_inflight = False
                if future is None:
                    window = self._take_window()
                    if window is not None:
                        future = executor.submit(self._cycle, window)
                if not ingest.is_alive() and future is None:
                    # Drain: a trigger raised by the feed's last packets
                    # still gets its cycle (the window is full — the
                    # feed just ended); an unfillable one is dropped.
                    window = self._take_window()
                    if window is None:
                        self._reopt_pending = False
                        break
                    future = executor.submit(self._cycle, window)
                time.sleep(0.002)
        finally:
            self._stop.set()
            executor.shutdown(wait=True)


def serve_forever(
    program: Program,
    config: RuntimeConfig,
    baseline_trace: Sequence[TracePacket],
    feed: FeedSource,
    **kwargs,
) -> ServeResult:
    """One-call convenience wrapper: build the daemon and run it."""
    run_kwargs = {
        key: kwargs.pop(key)
        for key in ("max_packets", "duration")
        if key in kwargs
    }
    return ContinuousOptimizer(
        program, config, baseline_trace, **kwargs
    ).run(feed, **run_kwargs)
