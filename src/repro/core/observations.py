"""Observations: the evidence P2GO reports alongside each optimization.

P2GO "returns the adaptations it made to the original program together
with the profile-based observations that guided each individual change"
(§1).  The programmer reviews these and accepts or rejects each change —
so every phase produces :class:`Observation` records, and the pipeline
exposes a review hook.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, List


class Phase(enum.Enum):
    PROFILING = 1
    REMOVE_DEPENDENCIES = 2
    REDUCE_MEMORY = 3
    OFFLOAD_CODE = 4


class ObservationKind(enum.Enum):
    #: Profiling evidence (hit rates, non-exclusive sets).
    PROFILE = "profile"
    #: A change applied to the program.
    OPTIMIZATION = "optimization"
    #: A change considered but discarded, with the reason.
    REJECTED = "rejected"
    #: Informational (no change implied).
    NOTE = "note"


@dataclass
class Observation:
    """One reviewable fact: what P2GO saw and what it did about it."""

    phase: Phase
    kind: ObservationKind
    title: str
    details: str
    evidence: Dict[str, Any] = dc_field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"[phase {self.phase.value}:{self.phase.name.lower()}] "
            f"{self.kind.value.upper()}: {self.title}",
            f"  {self.details}",
        ]
        for key in sorted(self.evidence):
            lines.append(f"  - {key}: {self.evidence[key]}")
        return "\n".join(lines)


class ObservationLog:
    """Append-only log shared by the pipeline's phases."""

    def __init__(self) -> None:
        self.items: List[Observation] = []

    def add(self, observation: Observation) -> Observation:
        self.items.append(observation)
        return observation

    def by_phase(self, phase: Phase) -> List[Observation]:
        return [o for o in self.items if o.phase is phase]

    def optimizations(self) -> List[Observation]:
        return [
            o for o in self.items if o.kind is ObservationKind.OPTIMIZATION
        ]

    def render(self) -> str:
        return "\n\n".join(o.render() for o in self.items)
