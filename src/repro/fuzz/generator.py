"""Seeded generation of random well-formed (program, config, trace) cases.

Random programs stress every optimizer subsystem at once — passes,
session memoization, parallel probing, the store, and the flow cache —
on shapes the six hand-written examples never take.  Generation is
constrained just enough that every case is *legal* input:

* header chains are byte-aligned and linear (``h0 → h1 → …``), each
  link selected by a dedicated 8-bit tag field, so crafted packets
  always satisfy the parse graph they trigger;
* every table is applied exactly once and all referenced fields exist,
  so :meth:`~repro.p4.program.Program.validate` passes by construction;
* table entries respect each :class:`~repro.p4.tables.MatchKind`'s
  match-spec shape and the key's field width;
* programs stay small (≤ 8 tables, register arrays ≤ 1 KB) so they
  compile on :data:`~repro.target.model.DEFAULT_TARGET` and a full
  pipeline run takes milliseconds, keeping big campaigns cheap.

Everything derives from one :class:`random.Random` seeded with the case
seed: the same seed always reproduces the same case, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.p4 import (
    AddToField,
    Apply,
    BinOp,
    Const,
    Drop,
    FieldRef,
    HashFields,
    If,
    LNot,
    ModifyField,
    NoOp,
    ParamRef,
    Program,
    ProgramBuilder,
    RegisterRead,
    RegisterSize,
    RegisterWrite,
    Seq,
    SetEgressPort,
    ValidExpr,
)
from repro.p4.control import ControlNode
from repro.packets.packet import pack_fields
from repro.sim.runtime import RuntimeConfig
from repro.target.model import DEFAULT_TARGET, TargetModel
from repro.traffic.generators import TracePacket

#: Field widths the generator draws from.  All are byte multiples, so
#: header byte layouts never straddle bytes and crafted packets are
#: trivially alignable.
FIELD_WIDTHS = (8, 16, 32)

#: Hash families available to generated sketch-style actions.
HASH_ALGOS = ("crc32_a", "crc32_b", "crc32_c", "crc32_d", "fnv1a")

MATCH_KINDS = ("exact", "lpm", "ternary")


@dataclass
class GeneratedCase:
    """One fuzz case: everything a differential run needs."""

    seed: int
    program: Program
    config: RuntimeConfig
    trace: List[TracePacket]
    target: TargetModel = dc_field(default_factory=lambda: DEFAULT_TARGET)

    def replace_trace(self, trace: Sequence[TracePacket]) -> "GeneratedCase":
        return GeneratedCase(
            seed=self.seed,
            program=self.program,
            config=self.config,
            trace=list(trace),
            target=self.target,
        )


@dataclass
class _HeaderPlan:
    """One link of the generated parse chain."""

    instance: str
    type_name: str
    fields: List[Tuple[str, int]]  # includes the tag field if chained
    tag_field: Optional[str]  # selector toward the next header
    tag_value: Optional[int]  # value that continues the chain


def _value_pool(rng: random.Random, width: int) -> List[int]:
    """A handful of values entries *and* packets draw from, so random
    tables actually hit on random traffic."""
    limit = (1 << width) - 1
    pool = {0, limit, rng.randrange(limit + 1)}
    while len(pool) < 4:
        pool.add(rng.randrange(limit + 1))
    return sorted(pool)


def _plan_headers(rng: random.Random) -> List[_HeaderPlan]:
    depth = rng.randint(1, 3)
    plans: List[_HeaderPlan] = []
    for i in range(depth):
        fields: List[Tuple[str, int]] = []
        chained = i < depth - 1
        tag_field = None
        tag_value = None
        if chained:
            tag_field = "nxt"
            tag_value = rng.randint(1, 254)
            fields.append((tag_field, 8))
        for j in range(rng.randint(1, 3)):
            fields.append((f"f{j}", rng.choice(FIELD_WIDTHS)))
        plans.append(
            _HeaderPlan(
                instance=f"h{i}",
                type_name=f"h{i}_t",
                fields=fields,
                tag_field=tag_field,
                tag_value=tag_value,
            )
        )
    return plans


def _build_actions(
    rng: random.Random,
    b: ProgramBuilder,
    headers: List[_HeaderPlan],
    registers: List[str],
) -> List[Tuple[str, int]]:
    """Declare a random action pool; returns ``(name, n_params)`` pairs."""
    actions: List[Tuple[str, int]] = []

    def header_field(plan: _HeaderPlan) -> FieldRef:
        name, _w = rng.choice(plan.fields)
        return FieldRef(plan.instance, name)

    n_actions = rng.randint(3, 5)
    for i in range(n_actions):
        kind = rng.choice(["fwd", "drop", "mark", "rewrite", "nop"])
        name = f"{kind}_{i}"
        if kind == "fwd":
            b.action(name, [SetEgressPort(ParamRef("port"))],
                     parameters=["port"])
            actions.append((name, 1))
        elif kind == "drop":
            b.action(name, [Drop()])
            actions.append((name, 0))
        elif kind == "mark":
            b.action(
                name,
                [
                    ModifyField(FieldRef("meta", "mark"),
                                Const(rng.randrange(1 << 16))),
                    AddToField(FieldRef("meta", "counter"), Const(1)),
                ],
            )
            actions.append((name, 0))
        elif kind == "rewrite":
            plan = rng.choice(headers)
            b.action(
                name,
                [ModifyField(header_field(plan), ParamRef("value"))],
                parameters=["value"],
            )
            actions.append((name, 1))
        else:
            b.action(name, [NoOp()])
            actions.append((name, 0))
    return actions


def _random_condition(
    rng: random.Random, headers: List[_HeaderPlan]
) -> "BinOp":
    plan = rng.choice(headers)
    name, width = rng.choice(plan.fields)
    op = rng.choice((">=", "<", "==", "!="))
    threshold = rng.randrange(1 << width)
    cond = BinOp(op, FieldRef(plan.instance, name), Const(threshold))
    if rng.random() < 0.2:
        return LNot(cond)
    return cond


def generate_program(
    rng: random.Random, name: str = "fuzzed"
) -> Tuple[Program, Dict[FieldRef, List[int]], List[_HeaderPlan]]:
    """Build one random validated program.

    Returns the program, the per-key-field value pools (shared with
    entry and packet generation), and the header plans (shared with
    packet crafting).
    """
    b = ProgramBuilder(name)
    headers = _plan_headers(rng)
    for plan in headers:
        b.header_type(plan.type_name, plan.fields)
        b.header(plan.instance, plan.type_name)
    b.metadata(
        "meta", [("mark", 16), ("counter", 32), ("index", 32)]
    )

    registers = []
    for i in range(rng.randint(0, 2)):
        reg = f"reg{i}"
        b.register(reg, width=32, size=rng.choice((16, 32, 64)))
        registers.append(reg)

    # Linear parse chain selected on each link's tag field.
    for i, plan in enumerate(headers):
        nxt = headers[i + 1] if i + 1 < len(headers) else None
        b.parser_state(
            f"parse_{plan.instance}" if i else "start",
            extracts=[plan.instance],
            select=(
                f"{plan.instance}.{plan.tag_field}" if nxt else None
            ),
            transitions=(
                {plan.tag_value: f"parse_{nxt.instance}"} if nxt else None
            ),
        )
    b.parser_start("start")

    actions = _build_actions(rng, b, headers, registers)

    # Tables: each keys on 1-2 random fields; widths recorded per key
    # field so entries and packets share value pools.
    pools: Dict[FieldRef, List[int]] = {}
    tables: List[Tuple[str, _HeaderPlan, List[Tuple[FieldRef, str, int]]]] = []
    n_tables = rng.randint(3, 8)
    # Register arrays must be owned by exactly one table (the target
    # compiler enforces this), so each register gets a dedicated
    # counting action attached to a single distinct table.
    owner_tables = rng.sample(range(n_tables), len(registers))
    for reg_index, reg in enumerate(registers):
        key = rng.choice(headers[0].fields)
        b.action(
            f"count_{reg}",
            [
                HashFields(
                    FieldRef("meta", "index"),
                    rng.choice(HASH_ALGOS),
                    (FieldRef(headers[0].instance, key[0]),),
                    RegisterSize(reg),
                ),
                RegisterRead(
                    FieldRef("meta", "counter"), reg,
                    FieldRef("meta", "index"),
                ),
                AddToField(FieldRef("meta", "counter"), Const(1)),
                RegisterWrite(
                    reg, FieldRef("meta", "index"),
                    FieldRef("meta", "counter"),
                ),
            ],
        )
    for i in range(n_tables):
        tname = f"t{i}"
        guard_plan = rng.choice(headers)
        keys: List[Tuple[FieldRef, str, int]] = []
        n_keys = rng.randint(1, 2)
        for _ in range(n_keys):
            if rng.random() < 0.12:
                ref = FieldRef("standard_metadata", "ingress_port")
                width = 9
            else:
                fname, width = rng.choice(guard_plan.fields)
                ref = FieldRef(guard_plan.instance, fname)
            if not any(k[0] == ref for k in keys):
                keys.append((ref, rng.choice(MATCH_KINDS), width))
        for ref, _kind, width in keys:
            pools.setdefault(ref, _value_pool(rng, width))
        table_actions = rng.sample(
            actions, rng.randint(1, min(3, len(actions)))
        )
        if i in owner_tables:
            reg = registers[owner_tables.index(i)]
            table_actions = table_actions + [(f"count_{reg}", 0)]
        default = "NoAction"
        default_args: Tuple[int, ...] = ()
        if rng.random() < 0.4:
            dname, n_params = rng.choice(table_actions)
            default = dname
            default_args = tuple(
                rng.randrange(1, 64) for _ in range(n_params)
            )
        b.table(
            tname,
            keys=[(ref, kind) for ref, kind, _w in keys],
            actions=[a for a, _n in table_actions],
            default_action=default,
            default_action_args=default_args,
            size=rng.choice((16, 64, 256)),
        )
        tables.append((tname, guard_plan, keys))

    # Control: one Apply per table, some guarded by validity, some
    # nested under random conditions or another apply's miss branch.
    nodes: List[ControlNode] = []
    pending: List[ControlNode] = []
    for tname, guard_plan, _keys in tables:
        node: ControlNode = Apply(tname)
        if pending and rng.random() < 0.25:
            node = Apply(tname, on_miss=pending.pop())
        if rng.random() < 0.7:
            node = If(ValidExpr(guard_plan.instance), node)
        elif rng.random() < 0.3:
            node = If(_random_condition(rng, headers), node)
        if rng.random() < 0.2:
            pending.append(node)
        else:
            nodes.append(node)
    nodes.extend(pending)
    rng.shuffle(nodes)
    b.ingress(Seq(nodes))
    return b.build(), pools, headers


def _match_spec(rng, kind: str, width: int, pool: List[int]):
    value = (
        rng.choice(pool) if rng.random() < 0.75
        else rng.randrange(1 << width)
    )
    if kind == "exact":
        return value
    if kind == "lpm":
        plen = rng.randint(0, width)
        mask = ((1 << plen) - 1) << (width - plen) if plen else 0
        return (value & mask, plen)
    tmask = rng.randrange(1 << width)
    return (value & tmask, tmask)


def generate_config(
    rng: random.Random,
    program: Program,
    pools: Dict[FieldRef, List[int]],
) -> RuntimeConfig:
    """Random legal entries (including zero-entry tables) + defaults."""
    cfg = RuntimeConfig()
    for table in program.tables.values():
        for _ in range(rng.randint(0, 5)):
            match = []
            for key in table.keys:
                width = program.field_width(key.field)
                pool = pools.get(key.field, [0])
                match.append(
                    _match_spec(rng, key.kind.value, width, pool)
                )
            aname = rng.choice(table.actions)
            action = program.actions[aname]
            args = [
                rng.randrange(1, 64) for _ in action.parameters
            ]
            cfg.add_entry(
                table.name, match, aname, args,
                priority=rng.randint(0, 3),
            )
        if rng.random() < 0.15:
            choices = [
                a for a in table.actions
                if not program.actions[a].parameters
            ]
            if choices:
                cfg.set_default(table.name, rng.choice(choices), [])
    for reg in program.registers.values():
        if rng.random() < 0.3:
            cfg.init_register(
                reg.name,
                rng.randrange(reg.size),
                rng.randrange(1 << reg.width),
            )
    cfg.validate(program)
    return cfg


def generate_trace(
    rng: random.Random,
    program: Program,
    pools: Dict[FieldRef, List[int]],
    headers: List[_HeaderPlan],
    count: int,
) -> List[TracePacket]:
    """Craft ``count`` packets walking random prefixes of the parse chain.

    Field values are drawn from the same pools the entries use (so
    tables hit), with a random tail of payload bytes.  Some packets
    carry an explicit ingress port.
    """
    packets: List[TracePacket] = []
    types = program.header_types
    for _ in range(count):
        depth = rng.randint(1, len(headers))
        if len(headers) > 1 and rng.random() < 0.6:
            depth = len(headers)  # bias toward the full chain
        data = b""
        for i in range(depth):
            plan = headers[i]
            values: Dict[str, int] = {}
            for fname, width in plan.fields:
                ref = FieldRef(plan.instance, fname)
                pool = pools.get(ref)
                if pool is not None and rng.random() < 0.7:
                    values[fname] = rng.choice(pool)
                else:
                    values[fname] = rng.randrange(1 << width)
            if plan.tag_field is not None:
                if i + 1 < depth:
                    values[plan.tag_field] = plan.tag_value
                elif values[plan.tag_field] == plan.tag_value:
                    values[plan.tag_field] = (plan.tag_value + 1) % 255
            data += pack_fields(types[plan.type_name], values)
        data += bytes(
            rng.randrange(256) for _ in range(rng.randint(0, 6))
        )
        if rng.random() < 0.3:
            packets.append((data, rng.randint(0, 7)))
        else:
            packets.append(data)
    return packets


def generate_case(
    seed: int,
    trace_packets: Optional[int] = None,
    target: TargetModel = DEFAULT_TARGET,
) -> GeneratedCase:
    """The generator's entry point: one fully seeded fuzz case."""
    rng = random.Random(seed)
    program, pools, headers = generate_program(rng, name=f"fuzz_{seed}")
    config = generate_config(rng, program, pools)
    count = (
        trace_packets if trace_packets is not None
        else rng.randint(80, 160)
    )
    trace = generate_trace(rng, program, pools, headers, count)
    return GeneratedCase(
        seed=seed, program=program, config=config, trace=trace,
        target=target,
    )
