"""Randomized program fuzzing with differential oracles.

Seeded random well-formed IR programs + traces
(:mod:`repro.fuzz.generator`), five differential oracle axes over the
full pipeline (:mod:`repro.fuzz.differential`), failing-case
minimization with replayable repro files (:mod:`repro.fuzz.shrinker`),
and the campaign driver behind ``p2go fuzz``
(:mod:`repro.fuzz.harness`).
"""

from repro.fuzz.differential import (
    ALL_AXES,
    AxisFailure,
    canonical,
    run_axes,
)
from repro.fuzz.generator import GeneratedCase, generate_case
from repro.fuzz.harness import (
    BROKEN_ACTION,
    CampaignResult,
    FailureRecord,
    break_optimizer,
    run_campaign,
    run_one,
)
from repro.fuzz.shrinker import (
    load_repro,
    remove_table,
    replay_repro,
    shrink_case,
    write_repro,
)

__all__ = [
    "ALL_AXES",
    "AxisFailure",
    "BROKEN_ACTION",
    "CampaignResult",
    "FailureRecord",
    "GeneratedCase",
    "break_optimizer",
    "canonical",
    "generate_case",
    "load_repro",
    "remove_table",
    "replay_repro",
    "run_axes",
    "run_campaign",
    "run_one",
    "shrink_case",
    "write_repro",
]
