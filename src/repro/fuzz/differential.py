"""The six differential oracle axes.

Each axis runs a generated case two different ways through machinery
that *must not* change observable behaviour, and reports the first
disagreement:

``behavior``
    Original program vs the phases-(2, 3) optimized program, compared
    packet-for-packet with
    :func:`repro.controller.equivalence.compare_behavior` (the paper's
    behaviour-preservation contract).  When the full (2, 3, 4) run
    offloads nothing, its output is held to the same strict standard.
``cache``
    The flow-result cache + compiled match structures vs the uncached
    reference interpreter, on both the original and the optimized
    program.
``fastpath``
    The exec-compiled whole-pipeline fast path
    (:mod:`repro.sim.fastpath`) vs the cached engine, on both the
    original and the optimized program — compared on the *full*
    per-packet :class:`~repro.sim.switch.SwitchResult` (bytes out,
    headers, steps, forwarding) plus the controller queues, i.e. the
    bit-identity contract the specializer promises.  Programs the
    specializer refuses still run (the fast path must fall back, not
    diverge).
``workers``
    ``workers=1`` vs ``workers=4`` pipeline runs must produce
    byte-identical results (program, config, counters, observations).
``store``
    A store-backed run (cold, then warm-started from its own probes)
    must decide exactly what the memory-only run decides.
``order``
    The pass-framework pipeline vs the seed orchestrator kept verbatim
    in :mod:`repro.core.seed_pipeline`, for the paper's (2, 3, 4) order.

A crash anywhere is reported as a failure on the axis that raised it —
crashes are findings too, and the shrinker minimizes them the same way.
"""

from __future__ import annotations

import re
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.controller.equivalence import compare_behavior
from repro.core.pipeline import P2GO, P2GOResult
from repro.core.seed_pipeline import run_seed
from repro.core.session import config_fingerprint, program_fingerprint
from repro.fuzz.generator import GeneratedCase
from repro.p4.program import Program

#: All oracle axes, in the order they run.
ALL_AXES = ("behavior", "cache", "fastpath", "workers", "store", "order")

#: Optional hook that corrupts the optimized program before the
#: behaviour comparison — the mutation-testing entry point used to prove
#: the harness actually catches broken passes.
Mutator = Callable[[Program], Program]

_TIMING = re.compile(r"[\d,.]+ packets/s")


@dataclass
class AxisFailure:
    """One oracle disagreement (or crash) on one axis."""

    axis: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.axis}] {self.detail}"


def _scrub(text: str) -> str:
    return _TIMING.sub("<rate> packets/s", text)


def canonical(result: P2GOResult, decisions_only: bool = False) -> bytes:
    """Canonical byte serialization of everything a run decides.

    With ``decisions_only`` the session counters, per-phase perf and
    observation text are excluded: store-backed runs legitimately skip
    executions (different counters, extra provenance lines) while still
    having to make identical *decisions*.
    """
    decisions = (
        program_fingerprint(result.optimized_program),
        config_fingerprint(result.final_config),
        result.offloaded_tables,
        result.stage_history(),
        [o.stage_map for o in result.outcomes],
    )
    if decisions_only:
        return repr(decisions).encode()
    perfs = [
        (
            outcome.phase.name,
            outcome.stages,
            None
            if outcome.profiling_perf is None
            else (
                outcome.profiling_perf.packets,
                outcome.profiling_perf.cache_hits,
                outcome.profiling_perf.cache_misses,
                outcome.profiling_perf.cache_evictions,
                sorted(outcome.profiling_perf.table_lookups.items()),
            ),
        )
        for outcome in result.outcomes
    ]
    observations = [
        (obs.phase.name, obs.kind.name, obs.title, _scrub(obs.details))
        for obs in result.observations.items
    ]
    return repr(
        (decisions, result.session_counters.as_dict(), perfs, observations)
    ).encode()


def _run_pipeline(
    case: GeneratedCase,
    phases: Tuple[int, ...] = (2, 3, 4),
    workers: int = 1,
    store=False,
) -> P2GOResult:
    return P2GO(
        case.program,
        case.config.clone(),
        case.trace,
        case.target,
        phases=phases,
        workers=workers,
        store=store,
    ).run()


def _cache_configs(config):
    on = config.clone()
    on.enable_flow_cache = True
    on.enable_compiled_tables = True
    off = config.clone()
    off.enable_flow_cache = False
    off.enable_compiled_tables = False
    return on, off


# ----------------------------------------------------------------------
# Axis implementations.  Each returns None (agreement) or an AxisFailure.


def _check_behavior(
    case: GeneratedCase, mutator: Optional[Mutator]
) -> Optional[AxisFailure]:
    result = _run_pipeline(case, phases=(2, 3))
    optimized = result.optimized_program
    if mutator is not None:
        optimized = mutator(optimized)
    report = compare_behavior(
        case.program,
        case.config.clone(),
        optimized,
        result.final_config.clone(),
        case.trace,
    )
    if not report.equivalent:
        return AxisFailure(
            "behavior",
            f"phases (2,3) output disagrees on "
            f"{len(report.mismatches)}/{report.total} packets "
            f"(first at index {report.mismatches[0]})",
        )
    full = _run_pipeline(case)
    if not full.offloaded_tables and mutator is None:
        report = compare_behavior(
            case.program,
            case.config.clone(),
            full.optimized_program,
            full.final_config.clone(),
            case.trace,
        )
        if not report.equivalent:
            return AxisFailure(
                "behavior",
                f"phases (2,3,4) output (no offload) disagrees on "
                f"{len(report.mismatches)}/{report.total} packets",
            )
    return None


def _check_cache(case: GeneratedCase) -> Optional[AxisFailure]:
    result = _run_pipeline(case, phases=(2, 3))
    for label, program, config in (
        ("original", case.program, case.config),
        ("optimized", result.optimized_program, result.final_config),
    ):
        cached, uncached = _cache_configs(config)
        report = compare_behavior(
            program, cached, program, uncached, case.trace
        )
        if not report.equivalent:
            return AxisFailure(
                "cache",
                f"cached vs uncached interpreter disagree on the "
                f"{label} program: {len(report.mismatches)}/"
                f"{report.total} packets (first at index "
                f"{report.mismatches[0]})",
            )
    return None


def _check_fastpath(case: GeneratedCase) -> Optional[AxisFailure]:
    from repro.sim.switch import BehavioralSwitch

    result = _run_pipeline(case, phases=(2, 3))
    for label, program, config in (
        ("original", case.program, case.config),
        ("optimized", result.optimized_program, result.final_config),
    ):
        on = config.clone()
        on.enable_fastpath = True
        off = config.clone()
        off.enable_fastpath = False
        fast = BehavioralSwitch(program, on)
        cached = BehavioralSwitch(program, off)
        fast_results = fast.process_many(case.trace)
        cached_results = cached.process_many(case.trace)
        for i, (a, b) in enumerate(zip(fast_results, cached_results)):
            if a != b:
                engaged = fast.fastpath_reason or "engaged"
                return AxisFailure(
                    "fastpath",
                    f"fast path ({engaged}) and cached engine disagree "
                    f"on the {label} program at packet {i}",
                )
        if fast.controller_queue != cached.controller_queue:
            return AxisFailure(
                "fastpath",
                f"fast path and cached engine produced different "
                f"controller queues on the {label} program",
            )
    return None


def _check_workers(case: GeneratedCase) -> Optional[AxisFailure]:
    serial = _run_pipeline(case, workers=1)
    parallel = _run_pipeline(case, workers=4)
    if canonical(serial) != canonical(parallel):
        return AxisFailure(
            "workers",
            "workers=1 and workers=4 runs are not byte-identical",
        )
    return None


def _check_store(
    case: GeneratedCase, store_root: Optional[str]
) -> Optional[AxisFailure]:
    import tempfile

    memory_only = _run_pipeline(case, store=False)
    with tempfile.TemporaryDirectory(dir=store_root) as root:
        cold = _run_pipeline(case, store=root)
        warm = _run_pipeline(case, store=root)
    for label, other in (("cold", cold), ("warm-started", warm)):
        if canonical(memory_only, decisions_only=True) != canonical(
            other, decisions_only=True
        ):
            return AxisFailure(
                "store",
                f"store-off and {label} store-on runs decided "
                "differently",
            )
    return None


def _check_order(case: GeneratedCase) -> Optional[AxisFailure]:
    new = _run_pipeline(case)
    seed_result = run_seed(
        case.program,
        case.config.clone(),
        case.trace,
        case.target,
        phases=(2, 3, 4),
    )
    if canonical(new, decisions_only=True) != canonical(
        seed_result, decisions_only=True
    ):
        return AxisFailure(
            "order",
            "pass-framework (2,3,4) run and the seed orchestrator "
            "decided differently",
        )
    return None


def run_axes(
    case: GeneratedCase,
    axes: Sequence[str] = ALL_AXES,
    mutator: Optional[Mutator] = None,
    store_root: Optional[str] = None,
    stop_on_first: bool = True,
) -> List[AxisFailure]:
    """Run the requested oracle axes on one case.

    Returns the failures found (empty list = full agreement).  Unknown
    axis names raise ``ValueError`` up front.
    """
    unknown = set(axes) - set(ALL_AXES)
    if unknown:
        raise ValueError(
            f"unknown axes {sorted(unknown)}; known: {list(ALL_AXES)}"
        )
    failures: List[AxisFailure] = []
    for axis in ALL_AXES:
        if axis not in axes:
            continue
        try:
            if axis == "behavior":
                failure = _check_behavior(case, mutator)
            elif axis == "cache":
                failure = _check_cache(case)
            elif axis == "fastpath":
                failure = _check_fastpath(case)
            elif axis == "workers":
                failure = _check_workers(case)
            elif axis == "store":
                failure = _check_store(case, store_root)
            else:
                failure = _check_order(case)
        except Exception:
            failure = AxisFailure(
                axis, "crash:\n" + traceback.format_exc(limit=8)
            )
        if failure is not None:
            failures.append(failure)
            if stop_on_first:
                break
    return failures
