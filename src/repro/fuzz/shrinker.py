"""Greedy minimization of failing fuzz cases + replayable repro files.

Given a case on which some oracle axis disagrees, the shrinker removes
whatever it can — packets, table entries, whole tables (with their
control-flow sites), then unused actions and registers — re-running the
failing axes after every candidate removal and keeping only removals
that still reproduce a disagreement.  The result is the usual
delta-debugging fixed point: a case where every remaining packet, entry
and table is necessary.

The minimized case is written as a self-contained JSON repro file: the
program as DSL text, the runtime config in the CLI's JSON schema, the
trace as hex packets with ingress ports, and the target geometry.
``load_repro`` / ``replay_repro`` rebuild the case and re-run the axes,
so a repro file is a one-command regression test.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.fuzz.differential import ALL_AXES, AxisFailure, run_axes
from repro.fuzz.generator import GeneratedCase
from repro.p4.control import Apply, ControlNode, If, Seq
from repro.p4.dsl import parse_program, print_program
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.target.model import TargetModel
from repro.traffic.generators import TracePacket

#: Checks whether a (possibly reduced) case still fails.
Failing = Callable[[GeneratedCase], bool]


def _signature(failure: AxisFailure) -> Tuple[str, bool]:
    """What kind of failure this is: (axis, is-crash)."""
    return failure.axis, failure.detail.startswith("crash")


# ----------------------------------------------------------------------
# Program surgery


def _drop_apply(node: ControlNode, table: str) -> Optional[ControlNode]:
    """Rebuild ``node`` without the apply of ``table``.

    The removed apply's hit/miss subtrees are spliced into its place so
    nested applies survive (the shrinker will try them separately).
    """
    if isinstance(node, Apply):
        on_hit = (
            _drop_apply(node.on_hit, table) if node.on_hit else None
        )
        on_miss = (
            _drop_apply(node.on_miss, table) if node.on_miss else None
        )
        if node.table == table:
            kept = [n for n in (on_hit, on_miss) if n is not None]
            if not kept:
                return None
            return kept[0] if len(kept) == 1 else Seq(kept)
        return Apply(node.table, on_hit=on_hit, on_miss=on_miss)
    if isinstance(node, If):
        then_node = _drop_apply(node.then_node, table)
        else_node = (
            _drop_apply(node.else_node, table) if node.else_node else None
        )
        if then_node is None:
            if else_node is None:
                return None
            then_node = Seq([])
        return If(node.condition, then_node, else_node)
    if isinstance(node, Seq):
        children = [
            child
            for child in (_drop_apply(n, table) for n in node.nodes)
            if child is not None
        ]
        return Seq(children)
    return node


def remove_table(case: GeneratedCase, table: str) -> Optional[GeneratedCase]:
    """``case`` without ``table`` (and its entries); None if the result
    does not validate."""
    program = case.program.clone()
    del program.tables[table]
    program.ingress = _drop_apply(program.ingress, table) or Seq([])
    program.egress = _drop_apply(program.egress, table) or Seq([])
    _prune_unreferenced(program)
    config = case.config.clone()
    config.entries.pop(table, None)
    config.default_overrides.pop(table, None)
    config.register_inits = [
        init for init in config.register_inits
        if init[0] in program.registers
    ]
    config.hashed_inits = [
        init for init in config.hashed_inits
        if init[0] in program.registers
    ]
    try:
        program.validate()
        config.validate(program)
    except Exception:
        return None
    return GeneratedCase(
        seed=case.seed,
        program=program,
        config=config,
        trace=list(case.trace),
        target=case.target,
    )


def _prune_unreferenced(program: Program) -> None:
    """Drop actions no table references, then registers no action uses."""
    referenced = {"NoAction"}
    for table in program.tables.values():
        referenced.update(table.actions)
        referenced.add(table.default_action)
    for name in list(program.actions):
        if name not in referenced:
            del program.actions[name]
    used_registers = set()
    for action in program.actions.values():
        used_registers.update(action.registers_read())
        used_registers.update(action.registers_written())
    for name in list(program.registers):
        if name not in used_registers:
            del program.registers[name]


# ----------------------------------------------------------------------
# Reduction passes


def _shrink_trace(case: GeneratedCase, failing: Failing) -> GeneratedCase:
    """ddmin-style chunk removal over the packet list."""
    trace = list(case.trace)
    chunk = max(1, len(trace) // 2)
    while True:
        removed = False
        i = 0
        while i < len(trace):
            candidate = trace[:i] + trace[i + chunk:]
            if candidate and failing(case.replace_trace(candidate)):
                trace = candidate
                removed = True
            else:
                i += chunk
        case = case.replace_trace(trace)
        if chunk == 1 and not removed:
            return case
        chunk = max(1, chunk // 2) if not removed else chunk
        if chunk > len(trace):
            chunk = max(1, len(trace) // 2)


def _shrink_tables(case: GeneratedCase, failing: Failing) -> GeneratedCase:
    progress = True
    while progress:
        progress = False
        for table in sorted(case.program.tables):
            candidate = remove_table(case, table)
            if candidate is not None and failing(candidate):
                case = candidate
                progress = True
                break
    return case


def _shrink_entries(case: GeneratedCase, failing: Failing) -> GeneratedCase:
    progress = True
    while progress:
        progress = False
        for table in sorted(case.config.entries):
            entries = case.config.entries[table]
            for i in range(len(entries)):
                config = case.config.clone()
                config.entries[table] = (
                    entries[:i] + entries[i + 1:]
                )
                if not config.entries[table]:
                    del config.entries[table]
                candidate = GeneratedCase(
                    seed=case.seed,
                    program=case.program,
                    config=config,
                    trace=list(case.trace),
                    target=case.target,
                )
                if failing(candidate):
                    case = candidate
                    progress = True
                    break
            if progress:
                break
    return case


def shrink_case(
    case: GeneratedCase,
    axes: Sequence[str] = ALL_AXES,
    mutator=None,
    store_root: Optional[str] = None,
    max_checks: int = 400,
) -> Tuple[GeneratedCase, AxisFailure]:
    """Minimize ``case`` while some axis in ``axes`` still disagrees.

    Returns the minimized case and the failure it still exhibits.
    Raises ``ValueError`` if the case does not fail to begin with.
    ``max_checks`` bounds the number of oracle re-runs (each re-run is
    several full pipeline executions).
    """
    budget = {"left": max_checks}

    initial = run_axes(case, axes, mutator=mutator, store_root=store_root)
    if not initial:
        raise ValueError("case does not fail; nothing to shrink")
    # Pin the failure's shape: a reduction only counts if it still fails
    # on the same axis in the same way (disagreement vs crash).  Without
    # this, deleting every table "reproduces" by crashing the profiler —
    # a different bug than the one being minimized.
    target = _signature(initial[0])

    def matching(failures: List[AxisFailure]) -> Optional[AxisFailure]:
        for failure in failures:
            if _signature(failure) == target:
                return failure
        return None

    def failing(candidate: GeneratedCase) -> bool:
        if budget["left"] <= 0:
            return False
        budget["left"] -= 1
        failures = run_axes(
            candidate,
            axes,
            mutator=mutator,
            store_root=store_root,
            stop_on_first=False,
        )
        return matching(failures) is not None

    case = _shrink_trace(case, failing)
    case = _shrink_tables(case, failing)
    case = _shrink_entries(case, failing)
    case = _shrink_trace(case, failing)  # table removals unlock packets
    final = run_axes(
        case, axes, mutator=mutator, store_root=store_root,
        stop_on_first=False,
    )
    return case, (matching(final) or initial[0])


# ----------------------------------------------------------------------
# Repro files


def _config_to_json(config: RuntimeConfig) -> dict:
    """The CLI's runtime-config JSON schema (cli.load_config reads it)."""
    return {
        "entries": {
            table: [
                {
                    "match": [
                        list(m) if isinstance(m, tuple) else m
                        for m in entry.match
                    ],
                    "action": entry.action,
                    "args": list(entry.action_args),
                    "priority": entry.priority,
                }
                for entry in entries
            ]
            for table, entries in config.entries.items()
        },
        "defaults": {
            table: {"action": action, "args": list(args)}
            for table, (action, args) in config.default_overrides.items()
        },
        "register_inits": [
            [reg, index, value]
            for reg, index, value in config.register_inits
        ],
        "hashed_inits": [
            [reg, algo, [list(k) for k in key], value]
            for reg, algo, key, value in config.hashed_inits
        ],
    }


def _config_from_json(data: dict) -> RuntimeConfig:
    config = RuntimeConfig()
    for table, entries in data.get("entries", {}).items():
        for entry in entries:
            match = [
                tuple(m) if isinstance(m, list) else m
                for m in entry["match"]
            ]
            config.add_entry(
                table,
                match,
                entry["action"],
                entry.get("args", []),
                entry.get("priority", 0),
            )
    for table, default in data.get("defaults", {}).items():
        config.set_default(table, default["action"], default.get("args", []))
    for reg, index, value in data.get("register_inits", []):
        config.init_register(reg, index, value)
    for reg, algo, key, value in data.get("hashed_inits", []):
        config.init_register_hashed(
            reg, algo, [tuple(k) for k in key], value
        )
    return config


def write_repro(
    path: Path,
    case: GeneratedCase,
    failure: AxisFailure,
    axes: Sequence[str] = ALL_AXES,
) -> Path:
    """Serialize a (minimized) failing case as a replayable JSON file."""
    packets = []
    for entry in case.trace:
        data, port = entry if isinstance(entry, tuple) else (entry, None)
        packets.append({"data": data.hex(), "port": port})
    payload = {
        "seed": case.seed,
        "axes": list(axes),
        "failure": {"axis": failure.axis, "detail": failure.detail},
        "program": print_program(case.program),
        "config": _config_to_json(case.config),
        "trace": packets,
        "target": dataclasses.asdict(case.target),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_repro(path: Path) -> Tuple[GeneratedCase, List[str]]:
    """Rebuild the case and the axis list from a repro file."""
    payload = json.loads(Path(path).read_text())
    program = parse_program(payload["program"], name=f"repro_{payload['seed']}")
    trace: List[TracePacket] = []
    for packet in payload["trace"]:
        data = bytes.fromhex(packet["data"])
        if packet.get("port") is None:
            trace.append(data)
        else:
            trace.append((data, packet["port"]))
    case = GeneratedCase(
        seed=payload["seed"],
        program=program,
        config=_config_from_json(payload["config"]),
        trace=trace,
        target=TargetModel(**payload["target"]),
    )
    return case, list(payload.get("axes", ALL_AXES))


def replay_repro(
    path: Path, store_root: Optional[str] = None
) -> List[AxisFailure]:
    """Re-run a repro file's axes; empty list means it no longer fails."""
    case, axes = load_repro(path)
    return run_axes(case, axes, store_root=store_root)
