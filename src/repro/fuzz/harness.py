"""The fuzz campaign driver: generate → check axes → shrink → record.

One :func:`run_campaign` call is one campaign: ``iterations`` seeded
cases (case ``i`` uses seed ``base_seed + i``), each run through the
requested oracle axes (behaviour, cache, fastpath, workers, store,
order — see :mod:`repro.fuzz.differential`).  Failures do not stop the
campaign — each one is (optionally) shrunk, written as a replayable
repro file, and the sweep continues, so a single run reports every
distinct disagreement it can find within its iteration/time budget.

:func:`break_optimizer` is the mutation-testing hook: wired in as the
``mutator``, it corrupts every optimized program the behaviour axis
sees, proving end to end that the harness catches a broken pass and
shrinks it to a minimal repro.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.fuzz.differential import (
    ALL_AXES,
    AxisFailure,
    Mutator,
    run_axes,
)
from repro.fuzz.generator import GeneratedCase, generate_case
from repro.fuzz.shrinker import shrink_case, write_repro
from repro.p4.actions import Action, SetEgressPort
from repro.p4.expressions import Const
from repro.p4.program import Program

#: Name of the sabotage action :func:`break_optimizer` injects.
BROKEN_ACTION = "fuzz_broken_fwd"

#: The port the sabotage action forwards to — a value the generator
#: never emits (its ports are 0–255), so the sabotage is observable on
#: any packet whose final decision it reaches, dropped or not.
BROKEN_PORT = 499


def break_optimizer(program: Program) -> Program:
    """A deliberately broken 'pass': every table's miss now forwards to
    ``BROKEN_PORT`` instead of running the real default action.

    Used as the campaign ``mutator`` to prove the differential harness
    catches behaviour-changing optimizer output: a packet that ends on
    any table miss leaves through a port the real program never uses
    (and packets the real default would have dropped sail through).
    """
    mutated = program.clone()
    if not mutated.tables:
        return mutated
    mutated.actions[BROKEN_ACTION] = Action(
        name=BROKEN_ACTION,
        parameters=(),
        primitives=(SetEgressPort(Const(BROKEN_PORT)),),
    )
    for name, table in list(mutated.tables.items()):
        mutated.tables[name] = dataclasses.replace(
            table,
            actions=tuple(table.actions) + (BROKEN_ACTION,),
            default_action=BROKEN_ACTION,
            default_action_args=(),
        )
    mutated.validate()
    return mutated


@dataclass
class FailureRecord:
    """One campaign finding."""

    seed: int
    failure: AxisFailure
    repro_path: Optional[Path] = None
    shrunk_tables: Optional[int] = None
    shrunk_packets: Optional[int] = None


@dataclass
class CampaignResult:
    """What one campaign did."""

    base_seed: int
    iterations: int
    axes: List[str]
    failures: List[FailureRecord] = dc_field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_campaign(
    base_seed: int = 0,
    iterations: int = 25,
    time_budget: Optional[float] = None,
    axes: Sequence[str] = ALL_AXES,
    shrink: bool = True,
    repro_dir: Optional[Path] = None,
    trace_packets: Optional[int] = None,
    mutator: Optional[Mutator] = None,
    store_root: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run one fuzz campaign; see the module docstring.

    ``time_budget`` (seconds) stops the sweep early; the iteration in
    flight always finishes.  ``trace_packets`` overrides the generated
    trace length (smaller = faster iterations).
    """
    emit = log if log is not None else (lambda _msg: None)
    result = CampaignResult(
        base_seed=base_seed, iterations=0, axes=list(axes)
    )
    started = time.monotonic()
    for i in range(iterations):
        if (
            time_budget is not None
            and time.monotonic() - started >= time_budget
        ):
            emit(
                f"time budget of {time_budget:.0f}s reached after "
                f"{i} iterations"
            )
            break
        seed = base_seed + i
        case = generate_case(seed, trace_packets=trace_packets)
        failures = run_axes(
            case, axes, mutator=mutator, store_root=store_root
        )
        result.iterations += 1
        if not failures:
            continue
        failure = failures[0]
        emit(f"seed {seed}: {failure}")
        record = FailureRecord(seed=seed, failure=failure)
        if shrink:
            case, failure = shrink_case(
                case, axes, mutator=mutator, store_root=store_root
            )
            record.failure = failure
            record.shrunk_tables = len(case.program.tables)
            record.shrunk_packets = len(case.trace)
            emit(
                f"seed {seed}: shrunk to {record.shrunk_tables} "
                f"table(s), {record.shrunk_packets} packet(s)"
            )
        if repro_dir is not None:
            record.repro_path = write_repro(
                Path(repro_dir) / f"repro-{seed}-{failure.axis}.json",
                case,
                failure,
                axes,
            )
            emit(f"seed {seed}: repro written to {record.repro_path}")
        result.failures.append(record)
    result.elapsed_seconds = time.monotonic() - started
    return result


def run_one(
    seed: int,
    axes: Sequence[str] = ALL_AXES,
    trace_packets: Optional[int] = None,
    store_root: Optional[str] = None,
) -> List[AxisFailure]:
    """One seeded iteration across ``axes`` (the CI smoke entry point)."""
    case = generate_case(seed, trace_packets=trace_packets)
    return run_axes(case, axes, store_root=store_root)
