"""Packet substrate: headers, bit packing, crafting, pcap I/O."""

from repro.packets.headers import (
    DHCP,
    DNS,
    ETHERNET,
    GRE,
    IPV4,
    STANDARD_HEADER_TYPES,
    TCP,
    UDP,
    VLAN,
    int_to_ip,
    ip_to_int,
    mac_to_int,
)
from repro.packets.packet import concat_headers, pack_fields, unpack_fields
from repro.packets.pcap import PcapRecord, read_packet_bytes, read_pcap, write_pcap

__all__ = [
    "DHCP",
    "DNS",
    "ETHERNET",
    "GRE",
    "IPV4",
    "STANDARD_HEADER_TYPES",
    "TCP",
    "UDP",
    "VLAN",
    "PcapRecord",
    "concat_headers",
    "int_to_ip",
    "ip_to_int",
    "mac_to_int",
    "pack_fields",
    "read_packet_bytes",
    "read_pcap",
    "unpack_fields",
    "write_pcap",
]
