"""Packet crafting — the scapy substitute (§4 uses a traffic crafting
library; offline here, so we build byte-accurate packets ourselves).

All helpers return raw ``bytes`` ready to feed into the simulator or write
to a pcap file.  Addresses can be dotted quads / colon-separated MACs or
plain integers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.exceptions import PacketError
from repro.packets import headers as hdr
from repro.packets.packet import concat_headers
from repro.p4.program import HeaderType

AddrLike = Union[str, int]


def _ip(value: AddrLike) -> int:
    return hdr.ip_to_int(value) if isinstance(value, str) else value


def _mac(value: AddrLike) -> int:
    return hdr.mac_to_int(value) if isinstance(value, str) else value


DEFAULT_SRC_MAC = 0x020000000001
DEFAULT_DST_MAC = 0x020000000002


def ethernet_header(
    dst: AddrLike = DEFAULT_DST_MAC,
    src: AddrLike = DEFAULT_SRC_MAC,
    ethertype: int = hdr.ETHERTYPE_IPV4,
) -> Tuple[HeaderType, Dict[str, int]]:
    return (
        hdr.ETHERNET,
        {"dstAddr": _mac(dst), "srcAddr": _mac(src), "etherType": ethertype},
    )


def ipv4_header(
    src: AddrLike,
    dst: AddrLike,
    protocol: int,
    ttl: int = 64,
    identification: int = 0,
    total_len: int = 0,
) -> Tuple[HeaderType, Dict[str, int]]:
    return (
        hdr.IPV4,
        {
            "version": 4,
            "ihl": 5,
            "totalLen": total_len,
            "identification": identification,
            "ttl": ttl,
            "protocol": protocol,
            "srcAddr": _ip(src),
            "dstAddr": _ip(dst),
        },
    )


def udp_header(
    sport: int, dport: int, length: int = 0
) -> Tuple[HeaderType, Dict[str, int]]:
    return (hdr.UDP, {"srcPort": sport, "dstPort": dport, "length": length})


def tcp_header(
    sport: int,
    dport: int,
    seq: int = 0,
    ack: int = 0,
    flags: int = hdr.TCP_FLAG_ACK,
) -> Tuple[HeaderType, Dict[str, int]]:
    return (
        hdr.TCP,
        {
            "srcPort": sport,
            "dstPort": dport,
            "seqNo": seq,
            "ackNo": ack,
            "dataOffset": 5,
            "flags": flags,
        },
    )


def udp_packet(
    src_ip: AddrLike,
    dst_ip: AddrLike,
    sport: int,
    dport: int,
    payload: bytes = b"",
) -> bytes:
    """Ethernet / IPv4 / UDP."""
    return concat_headers(
        [
            ethernet_header(),
            ipv4_header(src_ip, dst_ip, hdr.IPPROTO_UDP),
            udp_header(sport, dport, length=8 + len(payload)),
        ],
        payload,
    )


def tcp_packet(
    src_ip: AddrLike,
    dst_ip: AddrLike,
    sport: int,
    dport: int,
    seq: int = 0,
    flags: int = hdr.TCP_FLAG_ACK,
    payload: bytes = b"",
) -> bytes:
    """Ethernet / IPv4 / TCP."""
    return concat_headers(
        [
            ethernet_header(),
            ipv4_header(src_ip, dst_ip, hdr.IPPROTO_TCP),
            tcp_header(sport, dport, seq=seq, flags=flags),
        ],
        payload,
    )


def dns_query(
    src_ip: AddrLike,
    dst_ip: AddrLike,
    query_id: int = 0,
    sport: int = 33333,
) -> bytes:
    """Ethernet / IPv4 / UDP(dport=53) / DNS query prefix."""
    return concat_headers(
        [
            ethernet_header(),
            ipv4_header(src_ip, dst_ip, hdr.IPPROTO_UDP),
            udp_header(sport, hdr.UDP_PORT_DNS, length=8 + 12),
            (hdr.DNS, {"id": query_id, "qdcount": 1}),
        ]
    )


def dhcp_packet(
    src_ip: AddrLike,
    dst_ip: AddrLike = "255.255.255.255",
    op: int = 2,
    xid: int = 0,
    from_server: bool = True,
) -> bytes:
    """Ethernet / IPv4 / UDP(67|68) / DHCP prefix.

    ``from_server=True`` yields a server-originated message (sport 67), the
    shape the ACL_DHCP table in Ex. 1 filters on.
    """
    sport = hdr.UDP_PORT_DHCP_SERVER if from_server else hdr.UDP_PORT_DHCP_CLIENT
    dport = hdr.UDP_PORT_DHCP_CLIENT if from_server else hdr.UDP_PORT_DHCP_SERVER
    return concat_headers(
        [
            ethernet_header(),
            ipv4_header(src_ip, dst_ip, hdr.IPPROTO_UDP),
            udp_header(sport, dport, length=8 + 8),
            (hdr.DHCP, {"op": op, "htype": 1, "hlen": 6, "xid": xid}),
        ]
    )


def gre_packet(
    src_ip: AddrLike,
    dst_ip: AddrLike,
    inner_src: Optional[AddrLike] = None,
    inner_dst: Optional[AddrLike] = None,
    payload: bytes = b"",
) -> bytes:
    """Ethernet / IPv4(proto=GRE) / GRE [/ inner IPv4].

    The NAT & GRE example's parser stops at the GRE header; the optional
    inner IPv4 header rides along as opaque payload from the data plane's
    point of view but lets the controller-side tests see a full tunnel.
    """
    parts = [
        ethernet_header(),
        ipv4_header(src_ip, dst_ip, hdr.IPPROTO_GRE),
        (hdr.GRE, {"flags": 0, "protocol": hdr.ETHERTYPE_IPV4}),
    ]
    inner = b""
    if inner_src is not None and inner_dst is not None:
        inner_parts = [ipv4_header(inner_src, inner_dst, hdr.IPPROTO_UDP)]
        inner = concat_headers(inner_parts)
    elif (inner_src is None) != (inner_dst is None):
        raise PacketError("inner_src and inner_dst must be given together")
    return concat_headers(parts, inner + payload)


def plain_ipv4_packet(
    src_ip: AddrLike,
    dst_ip: AddrLike,
    protocol: int = hdr.IPPROTO_ICMP,
    payload: bytes = b"",
) -> bytes:
    """Ethernet / IPv4 with an arbitrary L4 protocol left unparsed."""
    return concat_headers(
        [ethernet_header(), ipv4_header(src_ip, dst_ip, protocol)], payload
    )
