"""Classic pcap (libpcap) file reading and writing.

P2GO's profiling input is "a trace of incoming traffic" (§2.2), typically a
pcap.  This module implements the classic pcap container (magic
``0xa1b2c3d4``, microsecond timestamps, Ethernet link type) so traces can be
stored on disk and replayed, with byte-exact round-trips.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Union

from repro.exceptions import PcapError

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet with its timestamp."""

    ts_sec: int
    ts_usec: int
    data: bytes


def write_pcap(
    path: Union[str, Path],
    packets: Sequence[Union[bytes, PcapRecord]],
    linktype: int = LINKTYPE_ETHERNET,
) -> None:
    """Write packets to a classic pcap file.

    Plain ``bytes`` entries get synthetic, monotonically increasing
    timestamps (1 µs apart) so replay order is preserved.
    """
    with open(path, "wb") as f:
        f.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION[0],
                PCAP_VERSION[1],
                0,  # thiszone
                0,  # sigfigs
                65535,  # snaplen
                linktype,
            )
        )
        for i, pkt in enumerate(packets):
            if isinstance(pkt, PcapRecord):
                record = pkt
            else:
                record = PcapRecord(ts_sec=0, ts_usec=i, data=pkt)
            f.write(
                _RECORD_HEADER.pack(
                    record.ts_sec,
                    record.ts_usec,
                    len(record.data),
                    len(record.data),
                )
            )
            f.write(record.data)


def read_pcap(path: Union[str, Path]) -> List[PcapRecord]:
    """Read every record from a classic pcap file."""
    with open(path, "rb") as f:
        blob = f.read()
    if len(blob) < _GLOBAL_HEADER.size:
        raise PcapError(f"{path}: truncated pcap global header")
    (magic, vmaj, vmin, _tz, _sf, _snap, _link) = _GLOBAL_HEADER.unpack_from(
        blob, 0
    )
    if magic == PCAP_MAGIC_SWAPPED:
        raise PcapError(
            f"{path}: big-endian pcap files are not supported"
        )
    if magic != PCAP_MAGIC:
        raise PcapError(f"{path}: bad pcap magic {magic:#x}")
    if (vmaj, vmin) != PCAP_VERSION:
        raise PcapError(f"{path}: unsupported pcap version {vmaj}.{vmin}")

    records: List[PcapRecord] = []
    offset = _GLOBAL_HEADER.size
    while offset < len(blob):
        if offset + _RECORD_HEADER.size > len(blob):
            raise PcapError(f"{path}: truncated record header")
        ts_sec, ts_usec, incl_len, orig_len = _RECORD_HEADER.unpack_from(
            blob, offset
        )
        offset += _RECORD_HEADER.size
        if incl_len > orig_len:
            raise PcapError(
                f"{path}: record incl_len {incl_len} > orig_len {orig_len}"
            )
        if offset + incl_len > len(blob):
            raise PcapError(f"{path}: truncated record payload")
        records.append(
            PcapRecord(
                ts_sec=ts_sec,
                ts_usec=ts_usec,
                data=blob[offset : offset + incl_len],
            )
        )
        offset += incl_len
    return records


def read_packet_bytes(path: Union[str, Path]) -> List[bytes]:
    """Read just the packet payloads, in capture order."""
    return [r.data for r in read_pcap(path)]
