"""Bit-level packing and unpacking of header fields.

Headers are sequences of arbitrary-width bit fields packed MSB-first, the
wire layout P4 targets use.  Both the packet-crafting API and the
behavioural simulator's parser/deparser are built on these two functions,
so a crafted packet always parses back to the field values it was built
from.

Because pack/unpack dominate the simulator's per-packet cost, the bit
arithmetic is precompiled once per header type into a
:class:`HeaderCodec` (shift/mask tables), memoized on the
:class:`HeaderType` instance via :func:`get_codec` — header types are
value objects whose field tuple never changes after construction.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import PacketError
from repro.p4.program import HeaderField, HeaderType
from repro.p4.types import mask


class HeaderCodec:
    """Precompiled pack/unpack tables for one header shape.

    When every field name is a plain identifier the unpack and trusted
    pack routines are exec-compiled into straight-line code (the same
    trick :func:`collections.namedtuple` uses), eliminating the
    per-field loop from the simulator's hottest functions; otherwise a
    generic loop fallback is used.
    """

    __slots__ = (
        "name",
        "byte_width",
        "known",
        "_pack_spec",
        "_unpack_spec",
        "pad",
        "unpack_at",
        "pack_trusted",
    )

    def __init__(self, name: str, fields: Tuple[HeaderField, ...]):
        self.name = name
        total_bits = sum(f.width for f in fields)
        self.pad = (8 - total_bits % 8) % 8
        self.byte_width = (total_bits + self.pad) // 8
        self.known = frozenset(f.name for f in fields)
        #: pack order: (field name, width, value mask)
        self._pack_spec: Tuple[Tuple[str, int, int], ...] = tuple(
            (f.name, f.width, mask(f.width)) for f in fields
        )
        #: unpack order: (field name, right-shift from bit 0, value mask)
        spec: List[Tuple[str, int, int]] = []
        consumed = 0
        padded_bits = total_bits + self.pad
        for f in fields:
            spec.append(
                (f.name, padded_bits - consumed - f.width, mask(f.width))
            )
            consumed += f.width
        self._unpack_spec = tuple(spec)
        if fields and all(f.name.isidentifier() for f in fields):
            self.unpack_at = self._compile_unpack()
            self.pack_trusted = self._compile_pack_trusted()
        else:
            self.unpack_at = self._unpack_at_generic
            self.pack_trusted = self._pack_trusted_generic

    def __reduce__(self):
        # The exec-compiled routines cannot be pickled (they live in no
        # importable module), and a codec memoized onto a header type
        # would otherwise make every simulated Program unpicklable —
        # worker-pool probes ship programs to subprocesses.  Rebuild
        # from the field layout on the receiving side instead.
        fields = tuple(
            HeaderField(fname, width)
            for fname, width, _fmask in self._pack_spec
        )
        return (HeaderCodec, (self.name, fields))

    def _compile_unpack(self):
        items = ", ".join(
            f"{fname!r}: (a >> {shift}) & {fmask}" if shift
            else f"{fname!r}: a & {fmask}"
            for fname, shift, fmask in self._unpack_spec
        )
        src = (
            "def unpack_at(data, offset, _int=int.from_bytes):\n"
            f"    a = _int(data[offset:offset + {self.byte_width}], 'big')\n"
            f"    return {{{items}}}\n"
        )
        namespace: Dict[str, object] = {}
        exec(src, namespace)  # noqa: S102 — generated from validated widths
        return namespace["unpack_at"]

    def _compile_pack_trusted(self):
        expr = f"g({self._pack_spec[0][0]!r}, 0)"
        for fname, width, _fmask in self._pack_spec[1:]:
            expr = f"({expr}) << {width} | g({fname!r}, 0)"
        if self.pad:
            expr = f"({expr}) << {self.pad}"
        src = (
            "def pack_trusted(values):\n"
            "    g = values.get\n"
            f"    return ({expr}).to_bytes({self.byte_width}, 'big')\n"
        )
        namespace: Dict[str, object] = {}
        exec(src, namespace)  # noqa: S102 — generated from validated widths
        return namespace["pack_trusted"]

    def _unpack_at_generic(self, data: bytes, offset: int) -> Dict[str, int]:
        accum = int.from_bytes(data[offset:offset + self.byte_width], "big")
        return {
            name: (accum >> shift) & fmask
            for name, shift, fmask in self._unpack_spec
        }

    def _pack_trusted_generic(self, values: Dict[str, int]) -> bytes:
        accum = 0
        get = values.get
        for name, width, _fmask in self._pack_spec:
            accum = (accum << width) | get(name, 0)
        return ((accum << self.pad)).to_bytes(self.byte_width, "big")

    def pack(self, values: Dict[str, int]) -> bytes:
        """Serialize field values; missing fields are zero."""
        if not self.known.issuperset(values):
            raise PacketError(
                f"unknown fields for {self.name!r}: "
                f"{sorted(set(values) - self.known)}"
            )
        accum = 0
        get = values.get
        for name, width, fmask in self._pack_spec:
            value = get(name, 0)
            if value < 0 or value > fmask:
                raise PacketError(
                    f"{self.name}.{name}={value} does not fit in "
                    f"{width} bits"
                )
            accum = (accum << width) | value
        return ((accum << self.pad)).to_bytes(self.byte_width, "big")


def get_codec(header_type: HeaderType) -> HeaderCodec:
    """The memoized codec for a header type.

    Cached on the instance itself (hashing the field tuple per packet is
    slower than building the codec); program clones deep-copy the cached
    codec along with the type, which stays correct because codecs are
    derived purely from the immutable field tuple.
    """
    codec = getattr(header_type, "_codec", None)
    if codec is None:
        codec = HeaderCodec(header_type.name, header_type.fields)
        header_type._codec = codec
    return codec


def pack_fields(header_type: HeaderType, values: Dict[str, int]) -> bytes:
    """Serialize field values into the header's wire format.

    Missing fields default to zero; unknown fields are an error.
    """
    return get_codec(header_type).pack(values)


def unpack_fields(header_type: HeaderType, data: bytes) -> Dict[str, int]:
    """Parse a header's fields out of ``data`` (which must be long enough)."""
    codec = get_codec(header_type)
    if len(data) < codec.byte_width:
        raise PacketError(
            f"not enough bytes for {header_type.name!r}: need "
            f"{codec.byte_width}, have {len(data)}"
        )
    return codec.unpack_at(data, 0)


def concat_headers(
    parts: Sequence[Tuple[HeaderType, Dict[str, int]]],
    payload: bytes = b"",
) -> bytes:
    """Build a packet from an ordered list of (type, values) plus payload."""
    chunks: List[bytes] = [pack_fields(t, v) for t, v in parts]
    chunks.append(payload)
    return b"".join(chunks)
