"""Bit-level packing and unpacking of header fields.

Headers are sequences of arbitrary-width bit fields packed MSB-first, the
wire layout P4 targets use.  Both the packet-crafting API and the
behavioural simulator's parser/deparser are built on these two functions,
so a crafted packet always parses back to the field values it was built
from.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import PacketError
from repro.p4.program import HeaderType
from repro.p4.types import mask


def pack_fields(header_type: HeaderType, values: Dict[str, int]) -> bytes:
    """Serialize field values into the header's wire format.

    Missing fields default to zero; unknown fields are an error.
    """
    known = set(header_type.field_names())
    unknown = set(values) - known
    if unknown:
        raise PacketError(
            f"unknown fields for {header_type.name!r}: {sorted(unknown)}"
        )
    accum = 0
    total_bits = 0
    for field in header_type.fields:
        value = values.get(field.name, 0)
        if value < 0 or value > mask(field.width):
            raise PacketError(
                f"{header_type.name}.{field.name}={value} does not fit in "
                f"{field.width} bits"
            )
        accum = (accum << field.width) | value
        total_bits += field.width
    pad = (8 - total_bits % 8) % 8
    accum <<= pad
    total_bits += pad
    return accum.to_bytes(total_bits // 8, "big")


def unpack_fields(header_type: HeaderType, data: bytes) -> Dict[str, int]:
    """Parse a header's fields out of ``data`` (which must be long enough)."""
    needed = header_type.byte_width
    if len(data) < needed:
        raise PacketError(
            f"not enough bytes for {header_type.name!r}: need {needed}, "
            f"have {len(data)}"
        )
    accum = int.from_bytes(data[:needed], "big")
    total_bits = needed * 8
    consumed = 0
    out: Dict[str, int] = {}
    for field in header_type.fields:
        shift = total_bits - consumed - field.width
        out[field.name] = (accum >> shift) & mask(field.width)
        consumed += field.width
    return out


def concat_headers(
    parts: Sequence[Tuple[HeaderType, Dict[str, int]]],
    payload: bytes = b"",
) -> bytes:
    """Build a packet from an ordered list of (type, values) plus payload."""
    chunks: List[bytes] = [pack_fields(t, v) for t, v in parts]
    chunks.append(payload)
    return b"".join(chunks)
