"""Standard protocol header definitions and well-known constants.

Single source of truth: both the example P4 programs and the packet
crafting API use these :class:`~repro.p4.program.HeaderType` definitions,
so crafted traffic always matches what the programs parse.

DNS and DHCP carry only their fixed-size prefixes — enough for the paper's
examples, which match on their presence and on UDP ports, never on variable
payload content.
"""

from __future__ import annotations

from typing import Dict

from repro.p4.program import HeaderField, HeaderType

# --- EtherTypes -------------------------------------------------------
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100

# --- IP protocol numbers ----------------------------------------------
IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17
IPPROTO_GRE = 47

# --- Well-known UDP ports ---------------------------------------------
UDP_PORT_DNS = 53
UDP_PORT_DHCP_SERVER = 67
UDP_PORT_DHCP_CLIENT = 68

#: TCP flag bits.
TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10


ETHERNET = HeaderType(
    name="ethernet_t",
    fields=(
        HeaderField("dstAddr", 48),
        HeaderField("srcAddr", 48),
        HeaderField("etherType", 16),
    ),
)

VLAN = HeaderType(
    name="vlan_t",
    fields=(
        HeaderField("pcp", 3),
        HeaderField("cfi", 1),
        HeaderField("vid", 12),
        HeaderField("etherType", 16),
    ),
)

IPV4 = HeaderType(
    name="ipv4_t",
    fields=(
        HeaderField("version", 4),
        HeaderField("ihl", 4),
        HeaderField("dscp", 8),
        HeaderField("totalLen", 16),
        HeaderField("identification", 16),
        HeaderField("flags", 3),
        HeaderField("fragOffset", 13),
        HeaderField("ttl", 8),
        HeaderField("protocol", 8),
        HeaderField("hdrChecksum", 16),
        HeaderField("srcAddr", 32),
        HeaderField("dstAddr", 32),
    ),
)

GRE = HeaderType(
    name="gre_t",
    fields=(
        HeaderField("flags", 16),
        HeaderField("protocol", 16),
    ),
)

UDP = HeaderType(
    name="udp_t",
    fields=(
        HeaderField("srcPort", 16),
        HeaderField("dstPort", 16),
        HeaderField("length", 16),
        HeaderField("checksum", 16),
    ),
)

TCP = HeaderType(
    name="tcp_t",
    fields=(
        HeaderField("srcPort", 16),
        HeaderField("dstPort", 16),
        HeaderField("seqNo", 32),
        HeaderField("ackNo", 32),
        HeaderField("dataOffset", 4),
        HeaderField("res", 4),
        HeaderField("flags", 8),
        HeaderField("window", 16),
        HeaderField("checksum", 16),
        HeaderField("urgentPtr", 16),
    ),
)

DNS = HeaderType(
    name="dns_t",
    fields=(
        HeaderField("id", 16),
        HeaderField("flags", 16),
        HeaderField("qdcount", 16),
        HeaderField("ancount", 16),
        HeaderField("nscount", 16),
        HeaderField("arcount", 16),
    ),
)

DHCP = HeaderType(
    name="dhcp_t",
    fields=(
        HeaderField("op", 8),
        HeaderField("htype", 8),
        HeaderField("hlen", 8),
        HeaderField("hops", 8),
        HeaderField("xid", 32),
    ),
)

#: All standard header types by name, for registering into programs.
STANDARD_HEADER_TYPES: Dict[str, HeaderType] = {
    t.name: t
    for t in (ETHERNET, VLAN, IPV4, GRE, UDP, TCP, DNS, DHCP)
}


def ip_to_int(dotted: str) -> int:
    """``"10.0.0.1"`` → 32-bit integer."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """32-bit integer → dotted quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_int(mac: str) -> int:
    """``"aa:bb:cc:dd:ee:ff"`` → 48-bit integer."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address {mac!r}")
    return int("".join(parts), 16)
