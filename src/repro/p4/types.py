"""Primitive value types for the P4 intermediate representation.

P4 values are fixed-width unsigned integers.  This module provides the small
amount of arithmetic the IR and the simulator need: masking to a bit width,
wrap-around addition/subtraction, and pretty formatting.
"""

from __future__ import annotations

from repro.exceptions import P4SemanticsError

#: Egress port value that marks a packet for dropping.  Mirrors the Tofino
#: convention of a reserved "drop" port; the paper's running example relies on
#: drop actions writing this special value (it is what makes the two ACL
#: tables action-dependent).
DROP_PORT = 511

#: Reserved egress port for packets redirected to the controller (CPU port).
CPU_PORT = 510


def mask(width: int) -> int:
    """Return the all-ones mask for a field of ``width`` bits."""
    if width <= 0:
        raise P4SemanticsError(f"field width must be positive, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (P4 wrap-around semantics)."""
    return value & mask(width)


def wrap_add(a: int, b: int, width: int) -> int:
    """Add two ``width``-bit values with wrap-around."""
    return (a + b) & mask(width)


def wrap_sub(a: int, b: int, width: int) -> int:
    """Subtract ``b`` from ``a`` with ``width``-bit wrap-around."""
    return (a - b) & mask(width)


def bytes_for_bits(bits: int) -> int:
    """Number of bytes needed to store ``bits`` bits."""
    if bits < 0:
        raise P4SemanticsError(f"bit count must be non-negative, got {bits}")
    return (bits + 7) // 8


def check_fits(value: int, width: int, what: str = "value") -> int:
    """Validate that ``value`` fits in ``width`` bits and return it."""
    if value < 0:
        raise P4SemanticsError(f"{what} must be non-negative, got {value}")
    if value > mask(width):
        raise P4SemanticsError(
            f"{what} {value:#x} does not fit in {width} bits"
        )
    return value


def format_value(value: int, width: int) -> str:
    """Format a value for display, using hex for wide fields."""
    if width > 16:
        return f"0x{value:x}"
    return str(value)
