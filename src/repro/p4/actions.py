"""Action primitives and compound actions.

An :class:`Action` is a named sequence of primitives, optionally taking
runtime parameters (action data supplied per table entry).  Each primitive
reports the fields it reads and writes and the registers it touches — the
inputs to dependency analysis (§2.1) and to the offload self-containment
check (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.exceptions import P4SemanticsError
from repro.p4.expressions import (
    Expr,
    FieldRef,
    fields_read,
    params_used,
    registers_referenced,
)

#: The intrinsic metadata header present in every program.
STANDARD_METADATA = "standard_metadata"

EGRESS_PORT = FieldRef(STANDARD_METADATA, "egress_port")
INGRESS_PORT = FieldRef(STANDARD_METADATA, "ingress_port")
DROP_FLAG = FieldRef(STANDARD_METADATA, "drop_flag")
TO_CONTROLLER = FieldRef(STANDARD_METADATA, "to_controller")
CONTROLLER_REASON = FieldRef(STANDARD_METADATA, "controller_reason")


class Primitive:
    """Base class for action primitives."""

    def reads(self) -> FrozenSet[FieldRef]:
        """Fields this primitive reads."""
        return frozenset()

    def writes(self) -> FrozenSet[FieldRef]:
        """Fields this primitive writes."""
        return frozenset()

    def registers_read(self) -> FrozenSet[str]:
        return frozenset()

    def registers_written(self) -> FrozenSet[str]:
        return frozenset()

    def params(self) -> FrozenSet[str]:
        """Action parameters this primitive references."""
        return frozenset()

    def headers_added(self) -> FrozenSet[str]:
        return frozenset()

    def headers_removed(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class ModifyField(Primitive):
    """``modify_field(dst, src)`` — assign an expression to a field."""

    dst: FieldRef
    src: Expr

    def reads(self) -> FrozenSet[FieldRef]:
        return fields_read(self.src)

    def writes(self) -> FrozenSet[FieldRef]:
        return frozenset({self.dst})

    def params(self) -> FrozenSet[str]:
        return params_used(self.src)

    def registers_read(self) -> FrozenSet[str]:
        return registers_referenced(self.src)

    def __str__(self) -> str:
        return f"modify_field({self.dst}, {self.src})"


@dataclass(frozen=True)
class AddToField(Primitive):
    """``add_to_field(dst, src)`` — dst += src with wrap-around."""

    dst: FieldRef
    src: Expr

    def reads(self) -> FrozenSet[FieldRef]:
        return fields_read(self.src) | frozenset({self.dst})

    def writes(self) -> FrozenSet[FieldRef]:
        return frozenset({self.dst})

    def params(self) -> FrozenSet[str]:
        return params_used(self.src)

    def __str__(self) -> str:
        return f"add_to_field({self.dst}, {self.src})"


@dataclass(frozen=True)
class SubtractFromField(Primitive):
    """``subtract_from_field(dst, src)`` — dst -= src with wrap-around."""

    dst: FieldRef
    src: Expr

    def reads(self) -> FrozenSet[FieldRef]:
        return fields_read(self.src) | frozenset({self.dst})

    def writes(self) -> FrozenSet[FieldRef]:
        return frozenset({self.dst})

    def params(self) -> FrozenSet[str]:
        return params_used(self.src)

    def __str__(self) -> str:
        return f"subtract_from_field({self.dst}, {self.src})"


@dataclass(frozen=True)
class Drop(Primitive):
    """Mark the packet for dropping.

    Dropping writes the egress port (to the reserved drop value) — this is
    what makes every pair of dropping tables action-dependent, exactly as the
    paper's example explains for ``IPv4`` and ``ACL_UDP`` (§2.1).
    """

    def writes(self) -> FrozenSet[FieldRef]:
        return frozenset({EGRESS_PORT, DROP_FLAG})

    def __str__(self) -> str:
        return "drop()"


@dataclass(frozen=True)
class SetEgressPort(Primitive):
    """``set_egress_port(port)`` — forward out of a port."""

    port: Expr

    def reads(self) -> FrozenSet[FieldRef]:
        return fields_read(self.port)

    def writes(self) -> FrozenSet[FieldRef]:
        return frozenset({EGRESS_PORT})

    def params(self) -> FrozenSet[str]:
        return params_used(self.port)

    def __str__(self) -> str:
        return f"set_egress_port({self.port})"


@dataclass(frozen=True)
class SendToController(Primitive):
    """Redirect the packet to the controller (CPU port) with a reason code."""

    reason: int = 0

    def writes(self) -> FrozenSet[FieldRef]:
        return frozenset({EGRESS_PORT, TO_CONTROLLER, CONTROLLER_REASON})

    def __str__(self) -> str:
        return f"send_to_controller({self.reason})"


@dataclass(frozen=True)
class RegisterRead(Primitive):
    """``register_read(dst, register, index)``."""

    dst: FieldRef
    register: str
    index: Expr

    def reads(self) -> FrozenSet[FieldRef]:
        return fields_read(self.index)

    def writes(self) -> FrozenSet[FieldRef]:
        return frozenset({self.dst})

    def registers_read(self) -> FrozenSet[str]:
        return frozenset({self.register}) | registers_referenced(self.index)

    def params(self) -> FrozenSet[str]:
        return params_used(self.index)

    def __str__(self) -> str:
        return f"register_read({self.dst}, {self.register}, {self.index})"


@dataclass(frozen=True)
class RegisterWrite(Primitive):
    """``register_write(register, index, value)``."""

    register: str
    index: Expr
    value: Expr

    def reads(self) -> FrozenSet[FieldRef]:
        return fields_read(self.index) | fields_read(self.value)

    def registers_written(self) -> FrozenSet[str]:
        return frozenset({self.register})

    def registers_read(self) -> FrozenSet[str]:
        return registers_referenced(self.index) | registers_referenced(self.value)

    def params(self) -> FrozenSet[str]:
        return params_used(self.index) | params_used(self.value)

    def __str__(self) -> str:
        return (
            f"register_write({self.register}, {self.index}, {self.value})"
        )


@dataclass(frozen=True)
class HashFields(Primitive):
    """``hash(dst, algorithm, inputs, modulo)``.

    ``modulo`` is typically ``RegisterSize(reg)`` so that index computation
    follows register resizing (see :class:`repro.p4.expressions.RegisterSize`).
    """

    dst: FieldRef
    algorithm: str
    inputs: Tuple[FieldRef, ...]
    modulo: Expr

    def __post_init__(self) -> None:
        if not self.inputs:
            raise P4SemanticsError("hash requires at least one input field")

    def reads(self) -> FrozenSet[FieldRef]:
        return frozenset(self.inputs) | fields_read(self.modulo)

    def writes(self) -> FrozenSet[FieldRef]:
        return frozenset({self.dst})

    def registers_read(self) -> FrozenSet[str]:
        return registers_referenced(self.modulo)

    def params(self) -> FrozenSet[str]:
        return params_used(self.modulo)

    def __str__(self) -> str:
        ins = ", ".join(str(i) for i in self.inputs)
        return f"hash({self.dst}, {self.algorithm}, [{ins}], {self.modulo})"


@dataclass(frozen=True)
class MinOf(Primitive):
    """``min(dst, left, right)`` — RMT stateful ALUs provide min/max.

    Used by Count-Min Sketches to combine row estimates (the paper's
    ``Sketch_Min`` table).
    """

    dst: FieldRef
    left: Expr
    right: Expr

    def reads(self) -> FrozenSet[FieldRef]:
        return fields_read(self.left) | fields_read(self.right)

    def writes(self) -> FrozenSet[FieldRef]:
        return frozenset({self.dst})

    def params(self) -> FrozenSet[str]:
        return params_used(self.left) | params_used(self.right)

    def __str__(self) -> str:
        return f"min({self.dst}, {self.left}, {self.right})"


@dataclass(frozen=True)
class AddHeader(Primitive):
    """``add_header(h)`` — make a header instance valid (zero-filled)."""

    header: str

    def headers_added(self) -> FrozenSet[str]:
        return frozenset({self.header})

    def __str__(self) -> str:
        return f"add_header({self.header})"


@dataclass(frozen=True)
class RemoveHeader(Primitive):
    """``remove_header(h)`` — make a header instance invalid."""

    header: str

    def headers_removed(self) -> FrozenSet[str]:
        return frozenset({self.header})

    def __str__(self) -> str:
        return f"remove_header({self.header})"


@dataclass(frozen=True)
class NoOp(Primitive):
    """Do nothing (explicit no-op action body)."""

    def __str__(self) -> str:
        return "no_op()"


@dataclass
class Action:
    """A named action: parameter list + primitive sequence."""

    name: str
    parameters: Tuple[str, ...] = ()
    primitives: Tuple[Primitive, ...] = ()

    def __post_init__(self) -> None:
        self.parameters = tuple(self.parameters)
        self.primitives = tuple(self.primitives)
        if len(set(self.parameters)) != len(self.parameters):
            raise P4SemanticsError(
                f"action {self.name!r} has duplicate parameters"
            )
        undeclared = self.params_referenced() - set(self.parameters)
        if undeclared:
            raise P4SemanticsError(
                f"action {self.name!r} references undeclared parameters "
                f"{sorted(undeclared)}"
            )

    def params_referenced(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for prim in self.primitives:
            out |= prim.params()
        return out

    def reads(self) -> FrozenSet[FieldRef]:
        out: FrozenSet[FieldRef] = frozenset()
        for prim in self.primitives:
            out |= prim.reads()
        return out

    def writes(self) -> FrozenSet[FieldRef]:
        out: FrozenSet[FieldRef] = frozenset()
        for prim in self.primitives:
            out |= prim.writes()
        return out

    def registers_read(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for prim in self.primitives:
            out |= prim.registers_read()
        return out

    def registers_written(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for prim in self.primitives:
            out |= prim.registers_written()
        return out

    def headers_added(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for prim in self.primitives:
            out |= prim.headers_added()
        return out

    def headers_removed(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for prim in self.primitives:
            out |= prim.headers_removed()
        return out

    def with_extra_primitives(self, extra: Sequence[Primitive],
                              new_name: Optional[str] = None) -> "Action":
        """Return a copy with ``extra`` primitives appended (used by the
        profiler's instrumentation, §3.1)."""
        return Action(
            name=new_name or self.name,
            parameters=self.parameters,
            primitives=self.primitives + tuple(extra),
        )

    def __str__(self) -> str:
        params = ", ".join(self.parameters)
        body = "; ".join(str(p) for p in self.primitives)
        return f"action {self.name}({params}) {{ {body} }}"
