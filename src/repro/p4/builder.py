"""Fluent builder for P4 programs.

The example programs in :mod:`repro.programs` use this API; it keeps them
readable while producing fully validated :class:`~repro.p4.program.Program`
objects.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from repro.exceptions import P4ValidationError
from repro.p4.actions import Action, Primitive
from repro.p4.control import ControlNode, Seq
from repro.p4.expressions import FieldRef
from repro.p4.parser_spec import ParserSpec, ParserState
from repro.p4.program import (
    HeaderField,
    HeaderInstance,
    HeaderType,
    Program,
)
from repro.p4.registers import RegisterArray
from repro.p4.tables import MatchKind, Table, TableKey


def _parse_match_kind(kind: Union[str, MatchKind]) -> MatchKind:
    if isinstance(kind, MatchKind):
        return kind
    try:
        return MatchKind(kind)
    except ValueError:
        raise P4ValidationError(f"unknown match kind {kind!r}") from None


class ProgramBuilder:
    """Accumulates program pieces and assembles a validated Program."""

    def __init__(self, name: str):
        self._name = name
        self._header_types: Dict[str, HeaderType] = {}
        self._headers: Dict[str, HeaderInstance] = {}
        self._registers: Dict[str, RegisterArray] = {}
        self._actions: Dict[str, Action] = {}
        self._tables: Dict[str, Table] = {}
        self._parser_states: Dict[str, ParserState] = {}
        self._parser_start: Optional[str] = None
        self._ingress: Optional[ControlNode] = None
        self._egress: Optional[ControlNode] = None

    # ------------------------------------------------------------------
    def header_type(
        self, name: str, fields: Sequence[Tuple[str, int]]
    ) -> "ProgramBuilder":
        if name in self._header_types:
            raise P4ValidationError(f"duplicate header type {name!r}")
        self._header_types[name] = HeaderType(
            name=name,
            fields=tuple(HeaderField(n, w) for n, w in fields),
        )
        return self

    def header(
        self, name: str, header_type: str, metadata: bool = False
    ) -> "ProgramBuilder":
        if name in self._headers:
            raise P4ValidationError(f"duplicate header instance {name!r}")
        self._headers[name] = HeaderInstance(
            name=name, header_type=header_type, metadata=metadata
        )
        return self

    def metadata(
        self, name: str, fields: Sequence[Tuple[str, int]]
    ) -> "ProgramBuilder":
        """Declare a metadata instance with an ad-hoc type in one call."""
        type_name = f"{name}_t"
        return self.header_type(type_name, fields).header(
            name, type_name, metadata=True
        )

    def register(self, name: str, width: int, size: int) -> "ProgramBuilder":
        if name in self._registers:
            raise P4ValidationError(f"duplicate register {name!r}")
        self._registers[name] = RegisterArray(name=name, width=width, size=size)
        return self

    def action(
        self,
        name: str,
        primitives: Sequence[Primitive],
        parameters: Sequence[str] = (),
    ) -> "ProgramBuilder":
        if name in self._actions:
            raise P4ValidationError(f"duplicate action {name!r}")
        self._actions[name] = Action(
            name=name,
            parameters=tuple(parameters),
            primitives=tuple(primitives),
        )
        return self

    def table(
        self,
        name: str,
        keys: Sequence[Tuple[Union[str, FieldRef], Union[str, MatchKind]]] = (),
        actions: Sequence[str] = (),
        default_action: str = "NoAction",
        default_action_args: Sequence[int] = (),
        size: int = 1024,
    ) -> "ProgramBuilder":
        if name in self._tables:
            raise P4ValidationError(f"duplicate table {name!r}")
        table_keys = []
        for field, kind in keys:
            ref = FieldRef.parse(field) if isinstance(field, str) else field
            table_keys.append(TableKey(field=ref, kind=_parse_match_kind(kind)))
        self._tables[name] = Table(
            name=name,
            keys=tuple(table_keys),
            actions=tuple(actions),
            default_action=default_action,
            default_action_args=tuple(default_action_args),
            size=size,
        )
        return self

    def parser_state(
        self,
        name: str,
        extracts: Sequence[str] = (),
        select: Optional[Union[str, FieldRef]] = None,
        transitions: Optional[Dict[int, str]] = None,
        default: str = "accept",
    ) -> "ProgramBuilder":
        if name in self._parser_states:
            raise P4ValidationError(f"duplicate parser state {name!r}")
        select_ref = (
            FieldRef.parse(select) if isinstance(select, str) else select
        )
        self._parser_states[name] = ParserState(
            name=name,
            extracts=tuple(extracts),
            select=select_ref,
            transitions=dict(transitions or {}),
            default=default,
        )
        if self._parser_start is None:
            self._parser_start = name
        return self

    def parser_start(self, name: str) -> "ProgramBuilder":
        self._parser_start = name
        return self

    def ingress(self, node: ControlNode) -> "ProgramBuilder":
        self._ingress = node
        return self

    def egress(self, node: ControlNode) -> "ProgramBuilder":
        self._egress = node
        return self

    # ------------------------------------------------------------------
    def build(self) -> Program:
        parser = None
        if self._parser_states:
            if self._parser_start is None:
                raise P4ValidationError("parser states without a start state")
            parser = ParserSpec(
                states=dict(self._parser_states), start=self._parser_start
            )
        program = Program(
            name=self._name,
            header_types=dict(self._header_types),
            headers=dict(self._headers),
            registers=dict(self._registers),
            actions=dict(self._actions),
            tables=dict(self._tables),
            parser=parser,
            ingress=self._ingress if self._ingress is not None else Seq([]),
            egress=self._egress if self._egress is not None else Seq([]),
        )
        program.validate()
        return program
