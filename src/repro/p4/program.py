"""The P4 program container.

A :class:`Program` bundles header types, header/metadata instances, register
arrays, actions, tables, a parser spec, and the ingress control AST, and
validates that every cross-reference resolves.  Programs are value objects:
P2GO's optimization phases never mutate a program in place — they build
modified clones, mirroring how the real system rewrites P4 source and
re-compiles it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import P4ValidationError
from repro.p4.actions import (
    Action,
    NoOp,
    STANDARD_METADATA,
)
from repro.p4.control import ControlNode, Seq, iter_applies, iter_nodes, If
from repro.p4.expressions import (
    Expr,
    FieldRef,
    fields_read,
    headers_tested_valid,
    registers_referenced,
)
from repro.p4.parser_spec import ParserSpec
from repro.p4.registers import RegisterArray
from repro.p4.tables import Table
from repro.p4.types import bytes_for_bits


@dataclass(frozen=True)
class HeaderField:
    """One field of a header type."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise P4ValidationError(
                f"field {self.name!r}: width must be positive"
            )


@dataclass
class HeaderType:
    """A named, ordered collection of bit fields."""

    name: str
    fields: Tuple[HeaderField, ...]

    def __post_init__(self) -> None:
        self.fields = tuple(self.fields)
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise P4ValidationError(
                f"header type {self.name!r} has duplicate fields"
            )
        # Widths are cached because pack/unpack sits on the simulator's
        # per-packet hot path; ``fields`` is treated as immutable after
        # construction.
        self._bit_width = sum(f.width for f in self.fields)
        self._byte_width = bytes_for_bits(self._bit_width)

    @property
    def bit_width(self) -> int:
        return self._bit_width

    @property
    def byte_width(self) -> int:
        return self._byte_width

    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field_width(self, name: str) -> int:
        for f in self.fields:
            if f.name == name:
                return f.width
        raise P4ValidationError(
            f"header type {self.name!r} has no field {name!r}"
        )

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)


@dataclass
class HeaderInstance:
    """An instance of a header type.

    ``metadata`` instances are always "valid", start zeroed, and are never
    serialized; packet headers become valid when the parser extracts them
    (or an action adds them) and are emitted by the deparser in declaration
    order.  ``auto_valid`` packet headers are added (zero-filled) by the
    parser for *every* packet — the shape profiling instrumentation uses
    for its appended header (§3.1), costing no match-action resources.
    """

    name: str
    header_type: str
    metadata: bool = False
    auto_valid: bool = False


def standard_metadata_type() -> HeaderType:
    """The intrinsic metadata header type every program carries."""
    return HeaderType(
        name="standard_metadata_t",
        fields=(
            HeaderField("ingress_port", 16),
            HeaderField("egress_port", 16),
            HeaderField("drop_flag", 1),
            HeaderField("to_controller", 1),
            HeaderField("controller_reason", 16),
        ),
    )


@dataclass
class Program:
    """A complete P4 program in IR form."""

    name: str
    header_types: Dict[str, HeaderType] = dc_field(default_factory=dict)
    headers: Dict[str, HeaderInstance] = dc_field(default_factory=dict)
    registers: Dict[str, RegisterArray] = dc_field(default_factory=dict)
    actions: Dict[str, Action] = dc_field(default_factory=dict)
    tables: Dict[str, Table] = dc_field(default_factory=dict)
    parser: Optional[ParserSpec] = None
    ingress: ControlNode = dc_field(default_factory=lambda: Seq([]))
    #: Egress pipeline (§2.1: "an ingress and egress pipeline").  Runs
    #: after the forwarding decision for packets that are neither dropped
    #: nor punted; its tables share the physical stages' memory with the
    #: ingress tables, as on RMT hardware.
    egress: ControlNode = dc_field(default_factory=lambda: Seq([]))

    def __post_init__(self) -> None:
        self._ensure_intrinsics()

    # ------------------------------------------------------------------
    # Intrinsics

    def _ensure_intrinsics(self) -> None:
        std_type = standard_metadata_type()
        self.header_types.setdefault(std_type.name, std_type)
        self.headers.setdefault(
            STANDARD_METADATA,
            HeaderInstance(
                name=STANDARD_METADATA,
                header_type=std_type.name,
                metadata=True,
            ),
        )
        self.actions.setdefault(
            "NoAction", Action(name="NoAction", primitives=(NoOp(),))
        )

    # ------------------------------------------------------------------
    # Lookup helpers

    def header_type_of(self, instance_name: str) -> HeaderType:
        inst = self.headers.get(instance_name)
        if inst is None:
            raise P4ValidationError(
                f"unknown header instance {instance_name!r}"
            )
        return self.header_types[inst.header_type]

    def field_width(self, ref: FieldRef) -> int:
        return self.header_type_of(ref.header).field_width(ref.field)

    def packet_headers(self) -> List[HeaderInstance]:
        """Non-metadata header instances in declaration order."""
        return [h for h in self.headers.values() if not h.metadata]

    def metadata_headers(self) -> List[HeaderInstance]:
        return [h for h in self.headers.values() if h.metadata]

    def tables_in_control_order(self) -> List[str]:
        """Ingress tables then egress tables, each in apply order."""
        return [a.table for a in iter_applies(self.ingress)] + [
            a.table for a in iter_applies(self.egress)
        ]

    def ingress_tables(self) -> List[str]:
        return [a.table for a in iter_applies(self.ingress)]

    def egress_tables(self) -> List[str]:
        return [a.table for a in iter_applies(self.egress)]

    # ------------------------------------------------------------------
    # Validation

    def validate(self) -> None:
        """Check every cross-reference; raise P4ValidationError on failure."""
        self._validate_headers()
        self._validate_actions()
        self._validate_tables()
        self._validate_parser()
        self._validate_control()

    def _validate_headers(self) -> None:
        for inst in self.headers.values():
            if inst.header_type not in self.header_types:
                raise P4ValidationError(
                    f"header instance {inst.name!r} uses undefined type "
                    f"{inst.header_type!r}"
                )

    def _check_field(self, ref: FieldRef, context: str) -> None:
        if ref.header not in self.headers:
            raise P4ValidationError(
                f"{context}: unknown header {ref.header!r} in {ref.path!r}"
            )
        htype = self.header_type_of(ref.header)
        if not htype.has_field(ref.field):
            raise P4ValidationError(
                f"{context}: header {ref.header!r} has no field {ref.field!r}"
            )

    def _check_expr(self, expr: Expr, context: str) -> None:
        for ref in fields_read(expr):
            self._check_field(ref, context)
        for header in headers_tested_valid(expr):
            if header not in self.headers:
                raise P4ValidationError(
                    f"{context}: valid() tests unknown header {header!r}"
                )
        for reg in registers_referenced(expr):
            if reg not in self.registers:
                raise P4ValidationError(
                    f"{context}: unknown register {reg!r}"
                )

    def _validate_actions(self) -> None:
        for action in self.actions.values():
            ctx = f"action {action.name!r}"
            for prim in action.primitives:
                for ref in prim.reads() | prim.writes():
                    self._check_field(ref, ctx)
                for reg in prim.registers_read() | prim.registers_written():
                    if reg not in self.registers:
                        raise P4ValidationError(
                            f"{ctx}: unknown register {reg!r}"
                        )
                for header in prim.headers_added() | prim.headers_removed():
                    if header not in self.headers:
                        raise P4ValidationError(
                            f"{ctx}: unknown header {header!r}"
                        )
                    if self.headers[header].metadata:
                        raise P4ValidationError(
                            f"{ctx}: cannot add/remove metadata {header!r}"
                        )

    def _validate_tables(self) -> None:
        for table in self.tables.values():
            ctx = f"table {table.name!r}"
            for key in table.keys:
                self._check_field(key.field, ctx)
            for action_name in table.all_action_names():
                if action_name not in self.actions:
                    raise P4ValidationError(
                        f"{ctx}: unknown action {action_name!r}"
                    )
            default = self.actions[table.default_action]
            if len(table.default_action_args) != len(default.parameters):
                raise P4ValidationError(
                    f"{ctx}: default action {table.default_action!r} takes "
                    f"{len(default.parameters)} args, got "
                    f"{len(table.default_action_args)}"
                )

    def _validate_parser(self) -> None:
        if self.parser is None:
            return
        self.parser.validate()
        for state in self.parser.states.values():
            ctx = f"parser state {state.name!r}"
            for header in state.extracts:
                if header not in self.headers:
                    raise P4ValidationError(
                        f"{ctx}: extracts unknown header {header!r}"
                    )
                if self.headers[header].metadata:
                    raise P4ValidationError(
                        f"{ctx}: cannot extract metadata {header!r}"
                    )
            if state.select is not None:
                self._check_field(state.select, ctx)

    def _validate_control(self) -> None:
        seen: Set[str] = set()
        for control in (self.ingress, self.egress):
            for apply_node in iter_applies(control):
                if apply_node.table not in self.tables:
                    raise P4ValidationError(
                        f"control applies unknown table "
                        f"{apply_node.table!r}"
                    )
                if apply_node.table in seen:
                    raise P4ValidationError(
                        f"table {apply_node.table!r} is applied more than "
                        "once"
                    )
                seen.add(apply_node.table)
            for node in iter_nodes(control):
                if isinstance(node, If):
                    self._check_expr(node.condition, "control condition")

    # ------------------------------------------------------------------
    # Cloning / derived programs

    def clone(self, new_name: Optional[str] = None) -> "Program":
        """Deep copy (the optimizer always works on clones)."""
        cloned = copy.deepcopy(self)
        if new_name is not None:
            cloned.name = new_name
        return cloned

    def with_table_size(self, table_name: str, new_size: int) -> "Program":
        """Clone with one table's entry capacity changed (§3.3)."""
        if table_name not in self.tables:
            raise P4ValidationError(f"unknown table {table_name!r}")
        out = self.clone()
        out.tables[table_name] = out.tables[table_name].resized(new_size)
        return out

    def with_register_size(self, register_name: str, new_size: int) -> "Program":
        """Clone with one register array's cell count changed (§3.3)."""
        if register_name not in self.registers:
            raise P4ValidationError(f"unknown register {register_name!r}")
        out = self.clone()
        out.registers[register_name] = out.registers[register_name].resized(
            new_size
        )
        return out

    def with_ingress(self, new_ingress: ControlNode) -> "Program":
        """Clone with a replaced ingress control tree."""
        out = self.clone()
        out.ingress = new_ingress
        return out

    # ------------------------------------------------------------------
    # Convenience queries used across the analysis layer

    def tables_accessing_register(self, register_name: str) -> List[str]:
        """Tables whose actions read or write the given register."""
        out = []
        for table in self.tables.values():
            for action_name in table.all_action_names():
                action = self.actions[action_name]
                touched = action.registers_read() | action.registers_written()
                if register_name in touched:
                    out.append(table.name)
                    break
        return out

    def action_for(self, table_name: str, action_name: str) -> Action:
        table = self.tables[table_name]
        if action_name not in table.all_action_names():
            raise P4ValidationError(
                f"table {table_name!r} does not use action {action_name!r}"
            )
        return self.actions[action_name]
