"""Expression nodes for the P4 intermediate representation.

Expressions appear in three places:

* action primitive operands (sources of ``modify_field`` etc.),
* ``if`` conditions in the ingress control flow,
* hash/index computations for register access.

Every expression node knows which fields it *reads* — this is the raw
material for dependency analysis (§2.1 of the paper: a table or control
statement depends on another table if it reads a field the latter modifies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Union

from repro.exceptions import P4SemanticsError


@dataclass(frozen=True)
class FieldRef:
    """A reference to ``header.field``.

    ``header`` names a header *instance* (packet header or metadata);
    ``field`` names a field of its header type.
    """

    header: str
    field: str

    @property
    def path(self) -> str:
        return f"{self.header}.{self.field}"

    def __str__(self) -> str:
        return self.path

    @staticmethod
    def parse(path: str) -> "FieldRef":
        """Parse ``"header.field"`` into a :class:`FieldRef`."""
        if path.count(".") != 1:
            raise P4SemanticsError(f"malformed field path {path!r}")
        header, fieldname = path.split(".")
        if not header or not fieldname:
            raise P4SemanticsError(f"malformed field path {path!r}")
        return FieldRef(header, fieldname)


@dataclass(frozen=True)
class Const:
    """A literal unsigned integer."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise P4SemanticsError(
                f"P4 constants are unsigned, got {self.value}"
            )

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ParamRef:
    """A reference to an action parameter (runtime action data).

    The value is supplied per table entry by the runtime configuration.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RegisterSize:
    """Resolves to the *current* number of cells of a register array.

    Hash computations use this as their modulus so that resizing a register
    (phase 3, §3.3) automatically changes the index distribution — exactly
    the mechanism by which shrinking a Count-Min Sketch causes extra
    collisions in the paper's running example.
    """

    register: str

    def __str__(self) -> str:
        return f"size({self.register})"


@dataclass(frozen=True)
class ValidExpr:
    """``valid(header)`` — true when the header instance was parsed."""

    header: str

    def __str__(self) -> str:
        return f"valid({self.header})"


#: Operand types usable inside action primitives and conditions.
Operand = Union[FieldRef, Const, ParamRef, RegisterSize]

COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "&", "|", "^")


@dataclass(frozen=True)
class BinOp:
    """A binary operation over operands or nested expressions."""

    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS + ARITHMETIC_OPS:
            raise P4SemanticsError(f"unknown operator {self.op!r}")

    @property
    def is_comparison(self) -> bool:
        return self.op in COMPARISON_OPS

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class LNot:
    """Logical negation of a boolean expression."""

    operand: "Expr"

    def __str__(self) -> str:
        return f"not {self.operand}"


@dataclass(frozen=True)
class LAnd:
    """Logical conjunction."""

    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class LOr:
    """Logical disjunction."""

    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


Expr = Union[FieldRef, Const, ParamRef, RegisterSize, ValidExpr, BinOp,
             LNot, LAnd, LOr]


def fields_read(expr: Expr) -> FrozenSet[FieldRef]:
    """All field references an expression reads."""
    if isinstance(expr, FieldRef):
        return frozenset({expr})
    if isinstance(expr, (Const, ParamRef, RegisterSize, ValidExpr)):
        return frozenset()
    if isinstance(expr, BinOp):
        return fields_read(expr.left) | fields_read(expr.right)
    if isinstance(expr, LNot):
        return fields_read(expr.operand)
    if isinstance(expr, (LAnd, LOr)):
        return fields_read(expr.left) | fields_read(expr.right)
    raise P4SemanticsError(f"unknown expression node {expr!r}")


def headers_tested_valid(expr: Expr) -> FrozenSet[str]:
    """All header names whose validity the expression tests."""
    if isinstance(expr, ValidExpr):
        return frozenset({expr.header})
    if isinstance(expr, BinOp):
        return headers_tested_valid(expr.left) | headers_tested_valid(expr.right)
    if isinstance(expr, LNot):
        return headers_tested_valid(expr.operand)
    if isinstance(expr, (LAnd, LOr)):
        return headers_tested_valid(expr.left) | headers_tested_valid(expr.right)
    return frozenset()


def params_used(expr: Expr) -> FrozenSet[str]:
    """All action parameter names an expression references."""
    if isinstance(expr, ParamRef):
        return frozenset({expr.name})
    if isinstance(expr, BinOp):
        return params_used(expr.left) | params_used(expr.right)
    if isinstance(expr, LNot):
        return params_used(expr.operand)
    if isinstance(expr, (LAnd, LOr)):
        return params_used(expr.left) | params_used(expr.right)
    return frozenset()


def registers_referenced(expr: Expr) -> FrozenSet[str]:
    """All register names an expression references (via RegisterSize)."""
    if isinstance(expr, RegisterSize):
        return frozenset({expr.register})
    if isinstance(expr, BinOp):
        return registers_referenced(expr.left) | registers_referenced(expr.right)
    if isinstance(expr, LNot):
        return registers_referenced(expr.operand)
    if isinstance(expr, (LAnd, LOr)):
        return registers_referenced(expr.left) | registers_referenced(expr.right)
    return frozenset()


def coerce_operand(value: Union[Expr, int, str]) -> Expr:
    """Convenience coercion used by the builder API.

    Integers become :class:`Const`; ``"header.field"`` strings become
    :class:`FieldRef`; bare identifiers become :class:`ParamRef`.
    """
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        if "." in value:
            return FieldRef.parse(value)
        return ParamRef(value)
    return value
