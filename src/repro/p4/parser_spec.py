"""Parser specification.

A parse graph: each state extracts header instances and selects the next
state on a field of the packet.  The parser determines which combinations of
headers can be simultaneously valid — the analysis layer exploits this to
prove static mutual exclusivity (e.g. a packet can never carry both a DNS
and a DHCP header because they live on different parser branches).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exceptions import P4ValidationError
from repro.p4.expressions import FieldRef

#: Pseudo-state name that terminates parsing.
ACCEPT = "accept"


@dataclass
class ParserState:
    """One parser state.

    ``extracts`` lists header instances extracted in order.  If ``select``
    is set, the next state is chosen by matching the field's value against
    ``transitions`` (exact values); otherwise ``default`` is taken.
    """

    name: str
    extracts: Tuple[str, ...] = ()
    select: Optional[FieldRef] = None
    transitions: Dict[int, str] = dc_field(default_factory=dict)
    default: str = ACCEPT

    def __post_init__(self) -> None:
        self.extracts = tuple(self.extracts)
        if self.select is None and self.transitions:
            raise P4ValidationError(
                f"parser state {self.name!r} has transitions but no select"
            )

    def next_states(self) -> Set[str]:
        out = set(self.transitions.values())
        out.add(self.default)
        return out


@dataclass
class ParserSpec:
    """The parse graph: states plus the start state name."""

    states: Dict[str, ParserState]
    start: str

    def validate(self) -> None:
        if self.start not in self.states:
            raise P4ValidationError(
                f"parser start state {self.start!r} is not defined"
            )
        for state in self.states.values():
            for nxt in state.next_states():
                if nxt != ACCEPT and nxt not in self.states:
                    raise P4ValidationError(
                        f"parser state {state.name!r} transitions to "
                        f"undefined state {nxt!r}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Reject cyclic parse graphs (no header stacks in this IR)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.states}

        def visit(name: str) -> None:
            color[name] = GRAY
            for nxt in self.states[name].next_states():
                if nxt == ACCEPT:
                    continue
                if color[nxt] == GRAY:
                    raise P4ValidationError(
                        f"parser has a cycle through state {nxt!r}"
                    )
                if color[nxt] == WHITE:
                    visit(nxt)
            color[name] = BLACK

        visit(self.start)

    def reachable_states(self) -> Set[str]:
        seen: Set[str] = set()
        stack = [self.start]
        while stack:
            name = stack.pop()
            if name in seen or name == ACCEPT:
                continue
            seen.add(name)
            stack.extend(self.states[name].next_states())
        return seen

    def valid_header_sets(self) -> List[FrozenSet[str]]:
        """Enumerate all header-validity sets the parser can produce.

        Each root-to-accept path yields the set of headers extracted along
        it.  These sets drive static mutual-exclusivity analysis: two headers
        never co-valid means conditions testing them are exclusive.
        """
        results: List[FrozenSet[str]] = []

        def walk(state_name: str, valid: Set[str]) -> None:
            if state_name == ACCEPT:
                results.append(frozenset(valid))
                return
            state = self.states[state_name]
            new_valid = valid | set(state.extracts)
            for nxt in sorted(state.next_states()):
                walk(nxt, new_valid)

        walk(self.start, set())
        # Deduplicate while keeping deterministic order.
        seen: Set[FrozenSet[str]] = set()
        unique: List[FrozenSet[str]] = []
        for s in results:
            if s not in seen:
                seen.add(s)
                unique.append(s)
        return unique

    def headers_extracted(self) -> Set[str]:
        out: Set[str] = set()
        for state in self.states.values():
            out.update(state.extracts)
        return out

    def may_both_be_valid(self, a: str, b: str) -> bool:
        """Can headers ``a`` and ``b`` both be valid on some parsed packet?"""
        if a == b:
            return True
        return any(
            a in s and b in s for s in self.valid_header_sets()
        )

    def implies_valid(self, a: str, b: str) -> bool:
        """Does ``valid(a)`` imply ``valid(b)`` for every parsed packet?

        Used by the dependency-removal rewrite (§3.2) to prove that moving a
        guarded apply into another table's miss branch cannot orphan it —
        e.g. every DHCP packet is also a UDP packet.
        """
        return all(
            b in s for s in self.valid_header_sets() if a in s
        )
