"""Recursive-descent parser: DSL source → :class:`~repro.p4.program.Program`.

The grammar mirrors P4_14's shape for the constructs the IR supports:

.. code-block:: text

    program      := decl*
    decl         := header_type | header | metadata | register
                  | action | table | parser_state | control
    header_type  := 'header_type' NAME '{' 'fields' '{' (NAME ':' NUM ';')* '}' '}'
    header       := 'header' TYPE NAME ';'
    metadata     := 'metadata' TYPE NAME ';'
    register     := 'register' NAME '{' 'width' ':' NUM ';'
                    'instance_count' ':' NUM ';' '}'
    action       := 'action' NAME '(' params? ')' '{' primitive* '}'
    table        := 'table' NAME '{' reads? actions_clause default? size? '}'
    parser_state := 'parser' NAME '{' ('extract' '(' NAME ')' ';')*
                    return_stmt '}'
    control      := 'control' ('ingress' | 'egress') '{' stmt* '}'
    stmt         := 'apply' '(' NAME ')' apply_blocks? ';'?
                  | 'if' '(' expr ')' '{' stmt* '}' ('else' '{' stmt* '}')?
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exceptions import DslSyntaxError
from repro.p4.actions import (
    Action,
    AddHeader,
    AddToField,
    Drop,
    HashFields,
    MinOf,
    ModifyField,
    NoOp,
    Primitive,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SendToController,
    SetEgressPort,
    SubtractFromField,
)
from repro.p4.control import Apply, ControlNode, If, Seq
from repro.p4.dsl.lexer import Token, TokenKind, tokenize
from repro.p4.expressions import (
    BinOp,
    Const,
    Expr,
    FieldRef,
    LAnd,
    LNot,
    LOr,
    ParamRef,
    RegisterSize,
    ValidExpr,
)
from repro.p4.parser_spec import ACCEPT, ParserSpec, ParserState
from repro.p4.program import (
    HeaderField,
    HeaderInstance,
    HeaderType,
    Program,
)
from repro.p4.registers import RegisterArray
from repro.p4.tables import MatchKind, Table, TableKey


class _Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind is not kind or (text is not None and token.text != text):
            want = text or kind.value
            raise DslSyntaxError(
                f"expected {want!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_ident(self, text: Optional[str] = None) -> str:
        return self.expect(TokenKind.IDENT, text).text

    def at_ident(self, text: str) -> bool:
        token = self.peek()
        return token.kind is TokenKind.IDENT and token.text == text

    def expect_number(self) -> int:
        token = self.expect(TokenKind.NUMBER)
        return int(token.text, 0)

    # ------------------------------------------------------------------
    # Program

    def parse_program(self, name: str) -> Program:
        header_types: Dict[str, HeaderType] = {}
        headers: Dict[str, HeaderInstance] = {}
        registers: Dict[str, RegisterArray] = {}
        actions: Dict[str, Action] = {}
        tables: Dict[str, Table] = {}
        parser_states: Dict[str, ParserState] = {}
        parser_start: Optional[str] = None
        ingress: ControlNode = Seq([])
        egress: ControlNode = Seq([])

        while self.peek().kind is not TokenKind.EOF:
            keyword = self.expect(TokenKind.IDENT).text
            if keyword == "header_type":
                htype = self._header_type()
                header_types[htype.name] = htype
            elif keyword == "header":
                type_name = self.expect_ident()
                inst_name = self.expect_ident()
                auto_valid = False
                if self.at_ident("auto"):
                    self.advance()
                    auto_valid = True
                self.expect(TokenKind.SEMI)
                headers[inst_name] = HeaderInstance(
                    name=inst_name,
                    header_type=type_name,
                    metadata=False,
                    auto_valid=auto_valid,
                )
            elif keyword == "metadata":
                type_name = self.expect_ident()
                inst_name = self.expect_ident()
                self.expect(TokenKind.SEMI)
                headers[inst_name] = HeaderInstance(
                    name=inst_name, header_type=type_name, metadata=True
                )
            elif keyword == "register":
                register = self._register()
                registers[register.name] = register
            elif keyword == "action":
                action = self._action()
                actions[action.name] = action
            elif keyword == "table":
                table = self._table()
                tables[table.name] = table
            elif keyword == "parser":
                state = self._parser_state()
                parser_states[state.name] = state
                if parser_start is None or state.name == "start":
                    parser_start = (
                        "start" if "start" in parser_states else state.name
                    )
            elif keyword == "control":
                control_name = self.expect_ident()
                if control_name == "ingress":
                    ingress = self._block()
                elif control_name == "egress":
                    egress = self._block()
                else:
                    raise DslSyntaxError(
                        f"only 'ingress' and 'egress' controls are "
                        f"supported, got {control_name!r}",
                        self.peek().line,
                        self.peek().column,
                    )
            else:
                token = self.peek()
                raise DslSyntaxError(
                    f"unknown declaration {keyword!r}",
                    token.line,
                    token.column,
                )

        parser_spec = None
        if parser_states:
            parser_spec = ParserSpec(
                states=parser_states, start=parser_start or "start"
            )
        program = Program(
            name=name,
            header_types=header_types,
            headers=headers,
            registers=registers,
            actions=actions,
            tables=tables,
            parser=parser_spec,
            ingress=ingress,
            egress=egress,
        )
        program.validate()
        return program

    # ------------------------------------------------------------------
    # Declarations

    def _header_type(self) -> HeaderType:
        name = self.expect_ident()
        self.expect(TokenKind.LBRACE)
        self.expect(TokenKind.IDENT, "fields")
        self.expect(TokenKind.LBRACE)
        fields: List[HeaderField] = []
        while self.peek().kind is not TokenKind.RBRACE:
            field_name = self.expect_ident()
            self.expect(TokenKind.COLON)
            width = self.expect_number()
            self.expect(TokenKind.SEMI)
            fields.append(HeaderField(field_name, width))
        self.expect(TokenKind.RBRACE)
        self.expect(TokenKind.RBRACE)
        return HeaderType(name=name, fields=tuple(fields))

    def _register(self) -> RegisterArray:
        name = self.expect_ident()
        self.expect(TokenKind.LBRACE)
        self.expect(TokenKind.IDENT, "width")
        self.expect(TokenKind.COLON)
        width = self.expect_number()
        self.expect(TokenKind.SEMI)
        self.expect(TokenKind.IDENT, "instance_count")
        self.expect(TokenKind.COLON)
        size = self.expect_number()
        self.expect(TokenKind.SEMI)
        self.expect(TokenKind.RBRACE)
        return RegisterArray(name=name, width=width, size=size)

    def _action(self) -> Action:
        name = self.expect_ident()
        self.expect(TokenKind.LPAREN)
        params: List[str] = []
        while self.peek().kind is not TokenKind.RPAREN:
            params.append(self.expect_ident())
            if self.peek().kind is TokenKind.COMMA:
                self.advance()
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.LBRACE)
        primitives: List[Primitive] = []
        while self.peek().kind is not TokenKind.RBRACE:
            primitives.append(self._primitive(set(params)))
        self.expect(TokenKind.RBRACE)
        return Action(
            name=name, parameters=tuple(params), primitives=tuple(primitives)
        )

    def _primitive(self, params: set) -> Primitive:
        name = self.expect_ident()
        self.expect(TokenKind.LPAREN)

        def finish() -> None:
            self.expect(TokenKind.RPAREN)
            self.expect(TokenKind.SEMI)

        if name == "modify_field":
            dst = self._field_ref()
            self.expect(TokenKind.COMMA)
            src = self._expr(params)
            finish()
            return ModifyField(dst, src)
        if name == "add_to_field":
            dst = self._field_ref()
            self.expect(TokenKind.COMMA)
            src = self._expr(params)
            finish()
            return AddToField(dst, src)
        if name == "subtract_from_field":
            dst = self._field_ref()
            self.expect(TokenKind.COMMA)
            src = self._expr(params)
            finish()
            return SubtractFromField(dst, src)
        if name == "drop":
            finish()
            return Drop()
        if name == "no_op":
            finish()
            return NoOp()
        if name == "set_egress_port":
            port = self._expr(params)
            finish()
            return SetEgressPort(port)
        if name == "send_to_controller":
            reason = self.expect_number()
            finish()
            return SendToController(reason)
        if name == "register_read":
            dst = self._field_ref()
            self.expect(TokenKind.COMMA)
            register = self.expect_ident()
            self.expect(TokenKind.COMMA)
            index = self._expr(params)
            finish()
            return RegisterRead(dst, register, index)
        if name == "register_write":
            register = self.expect_ident()
            self.expect(TokenKind.COMMA)
            index = self._expr(params)
            self.expect(TokenKind.COMMA)
            value = self._expr(params)
            finish()
            return RegisterWrite(register, index, value)
        if name == "hash":
            dst = self._field_ref()
            self.expect(TokenKind.COMMA)
            algorithm = self.expect_ident()
            self.expect(TokenKind.COMMA)
            self.expect(TokenKind.LBRACE)
            inputs: List[FieldRef] = []
            while self.peek().kind is not TokenKind.RBRACE:
                inputs.append(self._field_ref())
                if self.peek().kind is TokenKind.COMMA:
                    self.advance()
            self.expect(TokenKind.RBRACE)
            self.expect(TokenKind.COMMA)
            modulo = self._expr(params)
            finish()
            return HashFields(dst, algorithm, tuple(inputs), modulo)
        if name == "min":
            dst = self._field_ref()
            self.expect(TokenKind.COMMA)
            left = self._expr(params)
            self.expect(TokenKind.COMMA)
            right = self._expr(params)
            finish()
            return MinOf(dst, left, right)
        if name == "add_header":
            header = self.expect_ident()
            finish()
            return AddHeader(header)
        if name == "remove_header":
            header = self.expect_ident()
            finish()
            return RemoveHeader(header)
        token = self.peek()
        raise DslSyntaxError(
            f"unknown primitive {name!r}", token.line, token.column
        )

    def _table(self) -> Table:
        name = self.expect_ident()
        self.expect(TokenKind.LBRACE)
        keys: List[TableKey] = []
        actions: List[str] = []
        default_action = "NoAction"
        default_args: Tuple[int, ...] = ()
        size = 1024
        while self.peek().kind is not TokenKind.RBRACE:
            clause = self.expect_ident()
            if clause == "reads":
                self.expect(TokenKind.LBRACE)
                while self.peek().kind is not TokenKind.RBRACE:
                    ref = self._field_ref()
                    self.expect(TokenKind.COLON)
                    kind_name = self.expect_ident()
                    try:
                        kind = MatchKind(kind_name)
                    except ValueError:
                        token = self.peek()
                        raise DslSyntaxError(
                            f"unknown match kind {kind_name!r}",
                            token.line,
                            token.column,
                        ) from None
                    self.expect(TokenKind.SEMI)
                    keys.append(TableKey(field=ref, kind=kind))
                self.expect(TokenKind.RBRACE)
            elif clause == "actions":
                self.expect(TokenKind.LBRACE)
                while self.peek().kind is not TokenKind.RBRACE:
                    actions.append(self.expect_ident())
                    self.expect(TokenKind.SEMI)
                self.expect(TokenKind.RBRACE)
            elif clause == "default_action":
                self.expect(TokenKind.COLON)
                default_action = self.expect_ident()
                args: List[int] = []
                if self.peek().kind is TokenKind.LPAREN:
                    self.advance()
                    while self.peek().kind is not TokenKind.RPAREN:
                        args.append(self.expect_number())
                        if self.peek().kind is TokenKind.COMMA:
                            self.advance()
                    self.expect(TokenKind.RPAREN)
                default_args = tuple(args)
                self.expect(TokenKind.SEMI)
            elif clause == "size":
                self.expect(TokenKind.COLON)
                size = self.expect_number()
                self.expect(TokenKind.SEMI)
            else:
                token = self.peek()
                raise DslSyntaxError(
                    f"unknown table clause {clause!r}",
                    token.line,
                    token.column,
                )
        self.expect(TokenKind.RBRACE)
        return Table(
            name=name,
            keys=tuple(keys),
            actions=tuple(actions),
            default_action=default_action,
            default_action_args=default_args,
            size=size,
        )

    def _parser_state(self) -> ParserState:
        name = self.expect_ident()
        self.expect(TokenKind.LBRACE)
        extracts: List[str] = []
        select: Optional[FieldRef] = None
        transitions: Dict[int, str] = {}
        default = ACCEPT
        while self.peek().kind is not TokenKind.RBRACE:
            keyword = self.expect_ident()
            if keyword == "extract":
                self.expect(TokenKind.LPAREN)
                extracts.append(self.expect_ident())
                self.expect(TokenKind.RPAREN)
                self.expect(TokenKind.SEMI)
            elif keyword == "return":
                if self.at_ident("select"):
                    self.advance()
                    self.expect(TokenKind.LPAREN)
                    select = self._field_ref()
                    self.expect(TokenKind.RPAREN)
                    self.expect(TokenKind.LBRACE)
                    while self.peek().kind is not TokenKind.RBRACE:
                        if self.at_ident("default"):
                            self.advance()
                            self.expect(TokenKind.COLON)
                            default = self.expect_ident()
                        else:
                            value = self.expect_number()
                            self.expect(TokenKind.COLON)
                            transitions[value] = self.expect_ident()
                        self.expect(TokenKind.SEMI)
                    self.expect(TokenKind.RBRACE)
                else:
                    default = self.expect_ident()
                    self.expect(TokenKind.SEMI)
            else:
                token = self.peek()
                raise DslSyntaxError(
                    f"unknown parser statement {keyword!r}",
                    token.line,
                    token.column,
                )
        self.expect(TokenKind.RBRACE)
        return ParserState(
            name=name,
            extracts=tuple(extracts),
            select=select,
            transitions=transitions,
            default=default,
        )

    # ------------------------------------------------------------------
    # Control flow

    def _block(self) -> ControlNode:
        self.expect(TokenKind.LBRACE)
        nodes: List[ControlNode] = []
        while self.peek().kind is not TokenKind.RBRACE:
            nodes.append(self._statement())
        self.expect(TokenKind.RBRACE)
        if len(nodes) == 1:
            return nodes[0]
        return Seq(nodes)

    def _statement(self) -> ControlNode:
        keyword = self.expect_ident()
        if keyword == "apply":
            self.expect(TokenKind.LPAREN)
            table = self.expect_ident()
            self.expect(TokenKind.RPAREN)
            on_hit: Optional[ControlNode] = None
            on_miss: Optional[ControlNode] = None
            if self.peek().kind is TokenKind.LBRACE:
                self.advance()
                while self.peek().kind is not TokenKind.RBRACE:
                    branch = self.expect_ident()
                    if branch == "hit":
                        on_hit = self._block()
                    elif branch == "miss":
                        on_miss = self._block()
                    else:
                        token = self.peek()
                        raise DslSyntaxError(
                            f"expected 'hit' or 'miss', got {branch!r}",
                            token.line,
                            token.column,
                        )
                self.expect(TokenKind.RBRACE)
            else:
                self.expect(TokenKind.SEMI)
            return Apply(table, on_hit, on_miss)
        if keyword == "if":
            self.expect(TokenKind.LPAREN)
            condition = self._expr(set())
            self.expect(TokenKind.RPAREN)
            then_node = self._block()
            else_node: Optional[ControlNode] = None
            if self.at_ident("else"):
                self.advance()
                else_node = self._block()
            return If(condition, then_node, else_node)
        token = self.peek()
        raise DslSyntaxError(
            f"unknown statement {keyword!r}", token.line, token.column
        )

    # ------------------------------------------------------------------
    # Expressions (precedence: or < and < not < comparison < arith)

    def _expr(self, params: set) -> Expr:
        return self._or_expr(params)

    def _or_expr(self, params: set) -> Expr:
        left = self._and_expr(params)
        while self.at_ident("or"):
            self.advance()
            right = self._and_expr(params)
            left = LOr(left, right)
        return left

    def _and_expr(self, params: set) -> Expr:
        left = self._not_expr(params)
        while self.at_ident("and"):
            self.advance()
            right = self._not_expr(params)
            left = LAnd(left, right)
        return left

    def _not_expr(self, params: set) -> Expr:
        if self.at_ident("not"):
            self.advance()
            return LNot(self._not_expr(params))
        return self._comparison(params)

    def _comparison(self, params: set) -> Expr:
        left = self._arith(params)
        token = self.peek()
        if token.kind is TokenKind.OP and token.text in (
            "==", "!=", "<", "<=", ">", ">=",
        ):
            op = self.advance().text
            right = self._arith(params)
            return BinOp(op, left, right)
        return left

    def _arith(self, params: set) -> Expr:
        left = self._primary(params)
        while True:
            token = self.peek()
            if token.kind is TokenKind.OP and token.text in (
                "+", "-", "&", "|", "^",
            ):
                op = self.advance().text
                right = self._primary(params)
                left = BinOp(op, left, right)
            else:
                return left

    def _primary(self, params: set) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            return Const(self.expect_number())
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self._expr(params)
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            if token.text == "valid":
                self.advance()
                self.expect(TokenKind.LPAREN)
                header = self.expect_ident()
                self.expect(TokenKind.RPAREN)
                return ValidExpr(header)
            if token.text == "size":
                self.advance()
                self.expect(TokenKind.LPAREN)
                register = self.expect_ident()
                self.expect(TokenKind.RPAREN)
                return RegisterSize(register)
            name = self.expect_ident()
            if self.peek().kind is TokenKind.DOT:
                self.advance()
                field_name = self.expect_ident()
                return FieldRef(name, field_name)
            return ParamRef(name)
        raise DslSyntaxError(
            f"unexpected token {token.text!r} in expression",
            token.line,
            token.column,
        )

    def _field_ref(self) -> FieldRef:
        header = self.expect_ident()
        self.expect(TokenKind.DOT)
        field_name = self.expect_ident()
        return FieldRef(header, field_name)


def parse_program(source: str, name: str = "program") -> Program:
    """Parse DSL source into a validated :class:`Program`."""
    return _Parser(source).parse_program(name)
