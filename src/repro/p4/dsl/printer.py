"""Pretty-printer: :class:`~repro.p4.program.Program` → DSL source.

P2GO's output is "an optimized P4 program" the programmer reads and
reviews (§2.2), so every rewritten program can be rendered back to source.
``parse_program(print_program(p), p.name) == p`` is property-tested.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import ReproError
from repro.p4.actions import (
    AddHeader,
    AddToField,
    Drop,
    HashFields,
    MinOf,
    ModifyField,
    NoOp,
    Primitive,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SendToController,
    SetEgressPort,
    SubtractFromField,
    STANDARD_METADATA,
)
from repro.p4.control import Apply, ControlNode, If, Seq
from repro.p4.expressions import (
    BinOp,
    Const,
    Expr,
    FieldRef,
    LAnd,
    LNot,
    LOr,
    ParamRef,
    RegisterSize,
    ValidExpr,
)
from repro.p4.parser_spec import ParserSpec
from repro.p4.program import Program

_INTRINSIC_TYPES = {"standard_metadata_t"}
_INTRINSIC_HEADERS = {STANDARD_METADATA}
_INTRINSIC_ACTIONS = {"NoAction"}


def print_expr(expr: Expr) -> str:
    if isinstance(expr, FieldRef):
        return expr.path
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, ParamRef):
        return expr.name
    if isinstance(expr, RegisterSize):
        return f"size({expr.register})"
    if isinstance(expr, ValidExpr):
        return f"valid({expr.header})"
    if isinstance(expr, BinOp):
        return f"({print_expr(expr.left)} {expr.op} {print_expr(expr.right)})"
    if isinstance(expr, LNot):
        return f"not {print_expr(expr.operand)}"
    if isinstance(expr, LAnd):
        return f"({print_expr(expr.left)} and {print_expr(expr.right)})"
    if isinstance(expr, LOr):
        return f"({print_expr(expr.left)} or {print_expr(expr.right)})"
    raise ReproError(f"unknown expression {expr!r}")


def print_primitive(prim: Primitive) -> str:
    if isinstance(prim, ModifyField):
        return f"modify_field({prim.dst.path}, {print_expr(prim.src)});"
    if isinstance(prim, AddToField):
        return f"add_to_field({prim.dst.path}, {print_expr(prim.src)});"
    if isinstance(prim, SubtractFromField):
        return (
            f"subtract_from_field({prim.dst.path}, {print_expr(prim.src)});"
        )
    if isinstance(prim, Drop):
        return "drop();"
    if isinstance(prim, NoOp):
        return "no_op();"
    if isinstance(prim, SetEgressPort):
        return f"set_egress_port({print_expr(prim.port)});"
    if isinstance(prim, SendToController):
        return f"send_to_controller({prim.reason});"
    if isinstance(prim, RegisterRead):
        return (
            f"register_read({prim.dst.path}, {prim.register}, "
            f"{print_expr(prim.index)});"
        )
    if isinstance(prim, RegisterWrite):
        return (
            f"register_write({prim.register}, {print_expr(prim.index)}, "
            f"{print_expr(prim.value)});"
        )
    if isinstance(prim, HashFields):
        inputs = ", ".join(ref.path for ref in prim.inputs)
        return (
            f"hash({prim.dst.path}, {prim.algorithm}, {{{inputs}}}, "
            f"{print_expr(prim.modulo)});"
        )
    if isinstance(prim, MinOf):
        return (
            f"min({prim.dst.path}, {print_expr(prim.left)}, "
            f"{print_expr(prim.right)});"
        )
    if isinstance(prim, AddHeader):
        return f"add_header({prim.header});"
    if isinstance(prim, RemoveHeader):
        return f"remove_header({prim.header});"
    raise ReproError(f"unknown primitive {prim!r}")


def _print_control(node: ControlNode, indent: int, lines: List[str]) -> None:
    pad = "    " * indent
    if isinstance(node, Seq):
        for child in node.nodes:
            _print_control(child, indent, lines)
        return
    if isinstance(node, If):
        lines.append(f"{pad}if ({print_expr(node.condition)}) {{")
        _print_control(node.then_node, indent + 1, lines)
        if node.else_node is not None:
            lines.append(f"{pad}}} else {{")
            _print_control(node.else_node, indent + 1, lines)
        lines.append(f"{pad}}}")
        return
    if isinstance(node, Apply):
        if node.on_hit is None and node.on_miss is None:
            lines.append(f"{pad}apply({node.table});")
            return
        lines.append(f"{pad}apply({node.table}) {{")
        if node.on_hit is not None:
            lines.append(f"{pad}    hit {{")
            _print_control(node.on_hit, indent + 2, lines)
            lines.append(f"{pad}    }}")
        if node.on_miss is not None:
            lines.append(f"{pad}    miss {{")
            _print_control(node.on_miss, indent + 2, lines)
            lines.append(f"{pad}    }}")
        lines.append(f"{pad}}}")
        return
    raise ReproError(f"unknown control node {node!r}")


def _print_parser(parser: ParserSpec, lines: List[str]) -> None:
    # Emit the start state first so the parser round-trips its entry point.
    order = [parser.start] + [
        name for name in parser.states if name != parser.start
    ]
    for state_name in order:
        state = parser.states[state_name]
        lines.append(f"parser {state.name} {{")
        for header in state.extracts:
            lines.append(f"    extract({header});")
        if state.select is not None:
            lines.append(f"    return select({state.select.path}) {{")
            for value in sorted(state.transitions):
                lines.append(
                    f"        {value} : {state.transitions[value]};"
                )
            lines.append(f"        default : {state.default};")
            lines.append("    }")
        else:
            lines.append(f"    return {state.default};")
        lines.append("}")
        lines.append("")


def print_program(program: Program) -> str:
    """Render a program to DSL source (intrinsics are implicit)."""
    lines: List[str] = [f"// program: {program.name}", ""]

    for htype in program.header_types.values():
        if htype.name in _INTRINSIC_TYPES:
            continue
        lines.append(f"header_type {htype.name} {{")
        lines.append("    fields {")
        for field in htype.fields:
            lines.append(f"        {field.name} : {field.width};")
        lines.append("    }")
        lines.append("}")
        lines.append("")

    for inst in program.headers.values():
        if inst.name in _INTRINSIC_HEADERS:
            continue
        keyword = "metadata" if inst.metadata else "header"
        suffix = " auto" if (inst.auto_valid and not inst.metadata) else ""
        lines.append(f"{keyword} {inst.header_type} {inst.name}{suffix};")
    lines.append("")

    for register in program.registers.values():
        lines.append(f"register {register.name} {{")
        lines.append(f"    width : {register.width};")
        lines.append(f"    instance_count : {register.size};")
        lines.append("}")
        lines.append("")

    for action in program.actions.values():
        if action.name in _INTRINSIC_ACTIONS:
            continue
        params = ", ".join(action.parameters)
        lines.append(f"action {action.name}({params}) {{")
        for prim in action.primitives:
            lines.append(f"    {print_primitive(prim)}")
        lines.append("}")
        lines.append("")

    for table in program.tables.values():
        lines.append(f"table {table.name} {{")
        if table.keys:
            lines.append("    reads {")
            for key in table.keys:
                lines.append(
                    f"        {key.field.path} : {key.kind.value};"
                )
            lines.append("    }")
        if table.actions:
            lines.append("    actions {")
            for action_name in table.actions:
                lines.append(f"        {action_name};")
            lines.append("    }")
        args = ""
        if table.default_action_args:
            args = (
                "("
                + ", ".join(str(a) for a in table.default_action_args)
                + ")"
            )
        lines.append(f"    default_action : {table.default_action}{args};")
        lines.append(f"    size : {table.size};")
        lines.append("}")
        lines.append("")

    if program.parser is not None:
        _print_parser(program.parser, lines)

    lines.append("control ingress {")
    _print_control(program.ingress, 1, lines)
    lines.append("}")
    lines.append("")
    from repro.p4.control import tables_applied

    if tables_applied(program.egress):
        lines.append("control egress {")
        _print_control(program.egress, 1, lines)
        lines.append("}")
        lines.append("")
    return "\n".join(lines)
