"""Tokenizer for the P4-14-flavoured textual DSL."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.exceptions import DslSyntaxError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    COLON = ":"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    OP = "op"  # comparison/arithmetic operators
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


_SINGLE = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
}

#: Multi-char operators first so '>=' beats '>'.
_OPERATORS = ("==", "!=", "<=", ">=", "<", ">", "+", "-", "&", "|", "^")


def tokenize(source: str) -> List[Token]:
    """Turn DSL source into a token list (comments: ``//`` to end of line)."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line, col))
            i += 1
            col += 1
            continue
        matched_op = None
        for op in _OPERATORS:
            if source.startswith(op, i):
                matched_op = op
                break
        if matched_op is not None:
            tokens.append(Token(TokenKind.OP, matched_op, line, col))
            i += len(matched_op)
            col += len(matched_op)
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and (source[i].isdigit() or source[i].lower() in "abcdef"):
                    i += 1
            else:
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token(TokenKind.NUMBER, text, line, col))
            col += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            tokens.append(Token(TokenKind.IDENT, text, line, col))
            col += i - start
            continue
        raise DslSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
