"""Textual P4-14-flavoured DSL: lexer, parser, pretty-printer."""

from repro.p4.dsl.lexer import Token, TokenKind, tokenize
from repro.p4.dsl.parser import parse_program
from repro.p4.dsl.printer import print_expr, print_primitive, print_program

__all__ = [
    "Token",
    "TokenKind",
    "parse_program",
    "print_expr",
    "print_primitive",
    "print_program",
    "tokenize",
]
