"""Match-action tables.

Tables map parsed header fields to actions.  Their declared ``size`` (entry
capacity) drives memory accounting in the target model and is the second
knob phase 3 (§3.3) resizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Tuple

from repro.exceptions import P4SemanticsError
from repro.p4.expressions import FieldRef


class MatchKind(enum.Enum):
    """How a key field is matched.

    Exact keys live in SRAM; ternary and LPM keys need TCAM on RMT targets.
    """

    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"

    @property
    def needs_tcam(self) -> bool:
        return self is not MatchKind.EXACT


@dataclass(frozen=True)
class TableKey:
    """One match key: a field and its match kind."""

    field: FieldRef
    kind: MatchKind

    def __str__(self) -> str:
        return f"{self.field}: {self.kind.value}"


@dataclass
class Table:
    """A match-action table.

    ``actions`` are names of actions declared in the program.  The
    ``default_action`` runs on a miss (with compile-time arguments).
    A table with no keys always misses and thus always executes its default
    action — the shape the offload phase uses for its ``To_Ctl`` table.
    """

    name: str
    keys: Tuple[TableKey, ...] = ()
    actions: Tuple[str, ...] = ()
    default_action: str = "NoAction"
    default_action_args: Tuple[int, ...] = ()
    size: int = 1024

    def __post_init__(self) -> None:
        self.keys = tuple(self.keys)
        self.actions = tuple(self.actions)
        self.default_action_args = tuple(self.default_action_args)
        if self.size <= 0:
            raise P4SemanticsError(
                f"table {self.name!r}: size must be positive"
            )
        if len(set(self.actions)) != len(self.actions):
            raise P4SemanticsError(
                f"table {self.name!r}: duplicate action references"
            )

    @property
    def is_ternary(self) -> bool:
        """True if any key needs TCAM."""
        return any(k.kind.needs_tcam for k in self.keys)

    @property
    def match_fields(self) -> Tuple[FieldRef, ...]:
        return tuple(k.field for k in self.keys)

    def resized(self, new_size: int) -> "Table":
        """Return a copy with a different entry capacity (phase 3)."""
        return Table(
            name=self.name,
            keys=self.keys,
            actions=self.actions,
            default_action=self.default_action,
            default_action_args=self.default_action_args,
            size=new_size,
        )

    def all_action_names(self) -> Tuple[str, ...]:
        """Hit actions plus the default action, deduplicated, hit first."""
        names = list(self.actions)
        if self.default_action not in names:
            names.append(self.default_action)
        return tuple(names)

    def __str__(self) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        acts = ", ".join(self.actions)
        return (
            f"table {self.name} {{ keys: [{keys}]; actions: [{acts}]; "
            f"default: {self.default_action}; size: {self.size}; }}"
        )
