"""Stateful register arrays.

Register arrays are the stateful memory of RMT pipelines.  The paper's
examples use them for Count-Min Sketches (Ex. 1, Failure Detection) and a
Bloom Filter (Sourceguard).  Their size is one of the two knobs phase 3
(§3.3) resizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import P4SemanticsError
from repro.p4.types import bytes_for_bits


@dataclass
class RegisterArray:
    """A register array of ``size`` cells, each ``width`` bits wide."""

    name: str
    width: int
    size: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise P4SemanticsError(
                f"register {self.name!r}: width must be positive"
            )
        if self.size <= 0:
            raise P4SemanticsError(
                f"register {self.name!r}: size must be positive"
            )

    @property
    def memory_bytes(self) -> int:
        """Total SRAM footprint in bytes (cells are byte-aligned)."""
        return bytes_for_bits(self.width) * self.size

    def resized(self, new_size: int) -> "RegisterArray":
        """Return a copy with a different cell count (phase 3 resizing)."""
        return RegisterArray(name=self.name, width=self.width, size=new_size)

    def __str__(self) -> str:
        return f"register {self.name} {{ width: {self.width}; size: {self.size}; }}"
