"""Control-flow AST for the ingress pipeline.

A control body is a tree of three node kinds:

* :class:`Seq` — sequential composition,
* :class:`Apply` — apply a table, with optional hit/miss branches,
* :class:`If` — conditional on a boolean expression.

P2GO's program rewrites (§3.2 dependency removal, §3.4 offloading) are tree
transformations over this AST, so the module also provides traversal and
surgical-replacement utilities.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field as dc_field
from typing import Iterator, List, Optional, Tuple, Union

from repro.exceptions import P4ValidationError
from repro.p4.expressions import Expr


@dataclass
class Apply:
    """Apply a table; optionally branch on hit/miss."""

    table: str
    on_hit: Optional["ControlNode"] = None
    on_miss: Optional["ControlNode"] = None

    def children(self) -> Tuple["ControlNode", ...]:
        out: List[ControlNode] = []
        if self.on_hit is not None:
            out.append(self.on_hit)
        if self.on_miss is not None:
            out.append(self.on_miss)
        return tuple(out)


@dataclass
class If:
    """Conditional execution."""

    condition: Expr
    then_node: "ControlNode"
    else_node: Optional["ControlNode"] = None

    def children(self) -> Tuple["ControlNode", ...]:
        if self.else_node is None:
            return (self.then_node,)
        return (self.then_node, self.else_node)


@dataclass
class Seq:
    """Sequential composition of control nodes."""

    nodes: Tuple["ControlNode", ...] = ()

    def __init__(self, nodes=()):
        self.nodes = tuple(nodes)

    def children(self) -> Tuple["ControlNode", ...]:
        return self.nodes


ControlNode = Union[Apply, If, Seq]


def clone(node: ControlNode) -> ControlNode:
    """Deep-copy a control subtree."""
    return copy.deepcopy(node)


def iter_nodes(node: ControlNode) -> Iterator[ControlNode]:
    """Pre-order traversal of a control subtree."""
    yield node
    for child in node.children():
        yield from iter_nodes(child)


def iter_applies(node: ControlNode) -> Iterator[Apply]:
    """All :class:`Apply` nodes in pre-order."""
    for n in iter_nodes(node):
        if isinstance(n, Apply):
            yield n


def tables_applied(node: ControlNode) -> List[str]:
    """Table names applied anywhere in the subtree, in pre-order."""
    return [a.table for a in iter_applies(node)]


def find_apply(root: ControlNode, table: str) -> Optional[Apply]:
    """The unique :class:`Apply` node for ``table``, or ``None``.

    Raises :class:`P4ValidationError` if the table is applied more than once
    (P4_14 forbids multiple applications of the same table).
    """
    matches = [a for a in iter_applies(root) if a.table == table]
    if not matches:
        return None
    if len(matches) > 1:
        raise P4ValidationError(
            f"table {table!r} is applied {len(matches)} times"
        )
    return matches[0]


def remove_subtree(root: ControlNode, target: ControlNode) -> ControlNode:
    """Return a copy of ``root`` with the subtree ``target`` (matched by
    object identity) removed."""
    result = _remove_by_identity(root, target)
    if result is _SENTINEL_NOT_FOUND:
        raise P4ValidationError("subtree to remove not found in control tree")
    if result is None:
        return Seq([])
    return result


_SENTINEL_NOT_FOUND = object()


def _remove_by_identity(node, target):
    if node is target:
        return None
    if isinstance(node, Seq):
        changed = False
        new_children = []
        for child in node.nodes:
            result = _remove_by_identity(child, target)
            if result is not _SENTINEL_NOT_FOUND:
                changed = True
                if result is not None:
                    new_children.append(result)
            else:
                new_children.append(child)
        if changed:
            return Seq(new_children)
        return _SENTINEL_NOT_FOUND
    if isinstance(node, If):
        result = _remove_by_identity(node.then_node, target)
        if result is not _SENTINEL_NOT_FOUND:
            then_node = result if result is not None else Seq([])
            return If(node.condition, then_node, node.else_node)
        if node.else_node is not None:
            result = _remove_by_identity(node.else_node, target)
            if result is not _SENTINEL_NOT_FOUND:
                return If(node.condition, node.then_node, result)
        return _SENTINEL_NOT_FOUND
    if isinstance(node, Apply):
        for attr in ("on_hit", "on_miss"):
            branch = getattr(node, attr)
            if branch is None:
                continue
            result = _remove_by_identity(branch, target)
            if result is not _SENTINEL_NOT_FOUND:
                new = Apply(node.table, node.on_hit, node.on_miss)
                setattr(new, attr, result)
                return new
        return _SENTINEL_NOT_FOUND
    raise P4ValidationError(f"unknown control node {node!r}")


def replace_subtree(
    root: ControlNode, target: ControlNode, replacement: ControlNode
) -> ControlNode:
    """Return a copy of ``root`` with ``target`` (by identity) replaced."""
    result = _replace_by_identity(root, target, replacement)
    if result is _SENTINEL_NOT_FOUND:
        raise P4ValidationError("subtree to replace not found in control tree")
    return result


def _replace_by_identity(node, target, replacement):
    if node is target:
        return replacement
    if isinstance(node, Seq):
        for i, child in enumerate(node.nodes):
            result = _replace_by_identity(child, target, replacement)
            if result is not _SENTINEL_NOT_FOUND:
                new_children = list(node.nodes)
                new_children[i] = result
                return Seq(new_children)
        return _SENTINEL_NOT_FOUND
    if isinstance(node, If):
        result = _replace_by_identity(node.then_node, target, replacement)
        if result is not _SENTINEL_NOT_FOUND:
            return If(node.condition, result, node.else_node)
        if node.else_node is not None:
            result = _replace_by_identity(node.else_node, target, replacement)
            if result is not _SENTINEL_NOT_FOUND:
                return If(node.condition, node.then_node, result)
        return _SENTINEL_NOT_FOUND
    if isinstance(node, Apply):
        for attr in ("on_hit", "on_miss"):
            branch = getattr(node, attr)
            if branch is None:
                continue
            result = _replace_by_identity(branch, target, replacement)
            if result is not _SENTINEL_NOT_FOUND:
                new = Apply(node.table, node.on_hit, node.on_miss)
                setattr(new, attr, result)
                return new
        return _SENTINEL_NOT_FOUND
    raise P4ValidationError(f"unknown control node {node!r}")


def normalize(node: ControlNode) -> ControlNode:
    """Canonical form: flatten nested Seqs and unwrap singleton Seqs.

    The DSL printer/parser round-trip preserves semantics but may differ
    in Seq nesting; comparing normalized trees with :func:`control_equal`
    gives the structural equivalence that matters.
    """
    if isinstance(node, Seq):
        flattened: List[ControlNode] = []
        for child in node.nodes:
            result = normalize(child)
            if isinstance(result, Seq):
                flattened.extend(result.nodes)
            else:
                flattened.append(result)
        if len(flattened) == 1:
            return flattened[0]
        return Seq(flattened)
    if isinstance(node, If):
        return If(
            node.condition,
            normalize(node.then_node),
            normalize(node.else_node) if node.else_node is not None else None,
        )
    if isinstance(node, Apply):
        return Apply(
            node.table,
            normalize(node.on_hit) if node.on_hit is not None else None,
            normalize(node.on_miss) if node.on_miss is not None else None,
        )
    raise P4ValidationError(f"unknown control node {node!r}")


def control_equal(a: ControlNode, b: ControlNode) -> bool:
    """Structural equality of two control subtrees."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Apply):
        if a.table != b.table:
            return False
        for x, y in ((a.on_hit, b.on_hit), (a.on_miss, b.on_miss)):
            if (x is None) != (y is None):
                return False
            if x is not None and not control_equal(x, y):
                return False
        return True
    if isinstance(a, If):
        if a.condition != b.condition:
            return False
        if not control_equal(a.then_node, b.then_node):
            return False
        if (a.else_node is None) != (b.else_node is None):
            return False
        if a.else_node is not None:
            return control_equal(a.else_node, b.else_node)
        return True
    if isinstance(a, Seq):
        if len(a.nodes) != len(b.nodes):
            return False
        return all(control_equal(x, y) for x, y in zip(a.nodes, b.nodes))
    raise P4ValidationError(f"unknown control node {a!r}")
