"""Controller-side execution of offloaded code segments.

Phase 4 replaces a segment with a redirect table and "informs the
programmer of the removed tables that need to be implemented elsewhere"
(§3.4).  This module *is* that elsewhere: it derives a segment program
(the original program with only the offloaded subtree as its ingress) and
interprets redirected packets against controller-side state, so the
switch + controller combination reproduces the original data-plane
behaviour end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.phase_offload import SegmentCandidate
from repro.exceptions import ControllerError
from repro.p4.control import ControlNode, clone
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.sim.switch import BehavioralSwitch, SwitchResult


def segment_program(
    original: Program, subtree: ControlNode, name: Optional[str] = None
) -> Program:
    """The original program restricted to one control subtree.

    Keeps the full parser, header, action, register, and table space (the
    controller has the source program) but only executes the segment.
    """
    out = original.clone(
        new_name=name or f"{original.name}__controller_segment"
    )
    out.ingress = clone(subtree)
    # Offloaded segments come from the ingress; the original egress stays
    # on the switch.
    from repro.p4.control import Seq

    out.egress = Seq([])
    out.validate()
    return out


@dataclass
class ControllerStats:
    """Load accounting for the software path."""

    packets_processed: int = 0
    packets_dropped: int = 0
    notifications: int = 0


class OffloadController:
    """Runs an offloaded segment in software.

    The controller owns its own register state (the data-plane state of
    the segment moved with it) and processes every redirected packet
    through the same semantics the switch used — §3.4's behaviour
    preservation, demonstrated rather than assumed.
    """

    def __init__(
        self,
        original: Program,
        segment: SegmentCandidate,
        config: RuntimeConfig,
        notification_reason: Optional[int] = None,
    ):
        self.segment_tables = tuple(segment.tables)
        program = segment_program(original, segment.subtree)
        restricted = config.restricted_to(self.segment_tables)
        self._switch = BehavioralSwitch(program, restricted)
        self.stats = ControllerStats()
        self._notification_reason = notification_reason

    def handle_packet(self, data: bytes, ingress_port: int = 0) -> SwitchResult:
        """Process one redirected packet; returns the software verdict."""
        try:
            result = self._switch.process(data, ingress_port)
        except Exception as exc:  # pragma: no cover - defensive
            raise ControllerError(
                f"controller failed to process packet: {exc}"
            ) from exc
        self.stats.packets_processed += 1
        if result.dropped:
            self.stats.packets_dropped += 1
        if result.to_controller and (
            self._notification_reason is None
            or result.controller_reason == self._notification_reason
        ):
            self.stats.notifications += 1
        return result

    def handle_trace(
        self, packets: Sequence[bytes]
    ) -> List[SwitchResult]:
        return [self.handle_packet(p) for p in packets]

    def reset(self) -> None:
        self._switch.reset_state()
        self.stats = ControllerStats()

    def register_snapshot(self) -> Dict[str, List[int]]:
        return self._switch.state.snapshot()
