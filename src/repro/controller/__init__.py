"""Software controller: offloaded-segment runtime and equivalence checks."""

from repro.controller.equivalence import (
    EquivalenceReport,
    compare_behavior,
    compare_with_offload,
)
from repro.controller.offload_runtime import (
    ControllerStats,
    OffloadController,
    segment_program,
)

__all__ = [
    "ControllerStats",
    "EquivalenceReport",
    "OffloadController",
    "compare_behavior",
    "compare_with_offload",
    "segment_program",
]
