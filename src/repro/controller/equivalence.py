"""End-to-end equivalence checking: original switch vs optimized switch
plus controller.

The paper's phases 2 and 3 must preserve behaviour exactly on the trace;
phase 4 changes *where* packets are processed, not *how*: a redirected
packet must receive the same verdict from the controller that the original
data plane would have given it.  These checkers turn that contract into a
testable predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import List, Sequence, Tuple

from repro.controller.offload_runtime import OffloadController
from repro.core.phase_offload import SegmentCandidate
from repro.p4.program import Program
from repro.sim.runtime import RuntimeConfig
from repro.sim.switch import BehavioralSwitch
from repro.traffic.generators import TracePacket

Decision = Tuple[int, bool, bool]  # (egress_port, dropped, to_controller)


@dataclass
class EquivalenceReport:
    """Outcome of a behavioural comparison over a trace."""

    total: int
    mismatches: List[int] = dc_field(default_factory=list)
    redirected: int = 0

    @property
    def equivalent(self) -> bool:
        return not self.mismatches


def compare_behavior(
    program_a: Program,
    config_a: RuntimeConfig,
    program_b: Program,
    config_b: RuntimeConfig,
    trace: Sequence[TracePacket],
) -> EquivalenceReport:
    """Strict per-packet forwarding-decision comparison (phases 2/3)."""
    switch_a = BehavioralSwitch(program_a, config_a)
    switch_b = BehavioralSwitch(program_b, config_b)
    results_a = switch_a.process_trace(trace)
    results_b = switch_b.process_trace(trace)
    report = EquivalenceReport(total=len(results_a))
    for ra, rb in zip(results_a, results_b):
        if ra.forwarding_decision() != rb.forwarding_decision():
            report.mismatches.append(ra.index)
    return report


def compare_with_offload(
    original: Program,
    original_config: RuntimeConfig,
    optimized: Program,
    optimized_config: RuntimeConfig,
    segment: SegmentCandidate,
    trace: Sequence[TracePacket],
) -> EquivalenceReport:
    """Phase-4 contract: the optimized switch + controller combination
    gives every packet the verdict the original switch gave it.

    For each packet: if the optimized switch redirects it, the
    controller's verdict (drop / notify) must match the original data
    plane's; otherwise the optimized switch's own decision must match.
    """
    switch_orig = BehavioralSwitch(original, original_config)
    switch_opt = BehavioralSwitch(optimized, optimized_config)
    controller = OffloadController(original, segment, original_config)

    report = EquivalenceReport(total=0)
    for entry in trace:
        data, port = (
            entry if isinstance(entry, tuple) else (entry, 0)
        )
        r_orig = switch_orig.process(data, port)
        r_opt = switch_opt.process(data, port)
        report.total += 1
        if r_opt.to_controller:
            report.redirected += 1
            r_ctl = controller.handle_packet(data, port)
            # The original's verdict on this packet must be reproduced by
            # the controller: same drop decision, same notification.
            if r_ctl.dropped != r_orig.dropped:
                report.mismatches.append(r_orig.index)
                continue
            if r_ctl.to_controller != r_orig.to_controller:
                report.mismatches.append(r_orig.index)
        else:
            if r_opt.forwarding_decision() != r_orig.forwarding_decision():
                report.mismatches.append(r_orig.index)
    return report
