"""Table dependency graph (TDG) construction.

Implements the dependency taxonomy the paper's example explains (§2.1,
Fig. 1):

* **MATCH** — a table matches (via its keys or a guarding condition) on a
  field another table's action modifies; the consumer must be in a strictly
  later stage.
* **ACTION** — two tables' actions modify the same field (e.g. two drop
  actions both writing the egress port), or one's action reads what the
  other's wrote, or both touch the same register; they need different
  stages unless proven mutually exclusive.
* **REVERSE** — a later table writes a field an earlier one matches on or
  reads (anti-dependency); both may share a stage (matches and action
  reads see the stage's input PHV) but the writer must never land in an
  earlier stage.
* **SUCCESSOR** — a table is applied inside another's hit/miss branch;
  RMT predication lets them share a stage, only ordering is constrained.

Dependencies are derived *per action pair* along feasible execution paths,
so a program where conflicting actions can never co-execute (e.g. one table
applied only on the other's miss) genuinely has no ACTION dependency —
that's the property phase 2's rewrite exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.control_graph import CondEvent, ControlGraph
from repro.analysis.graph import Digraph
from repro.p4.control import iter_applies
from repro.p4.expressions import FieldRef
from repro.p4.program import Program


class DependencyKind(enum.Enum):
    MATCH = "match"
    ACTION = "action"
    #: Anti-dependency: the later table *writes* what the earlier one
    #: matches on or reads.  Same-stage placement is legal (within a
    #: stage, every match and action read sees the stage's input PHV),
    #: but the writer must never land in an earlier stage than the
    #: reader.
    REVERSE = "reverse"
    SUCCESSOR = "successor"

    @property
    def min_stage_separation(self) -> int:
        """Minimum stage distance between the two tables' placements."""
        if self in (DependencyKind.SUCCESSOR, DependencyKind.REVERSE):
            return 0
        return 1

    @property
    def aligns_to_first_stage(self) -> bool:
        """REVERSE deps constrain against the reader's *first* stage (its
        match executes there); the others against the source's last."""
        return self is DependencyKind.REVERSE

    @property
    def rank(self) -> int:
        """Strength order for picking a pair's dominant kind."""
        return {"match": 3, "action": 2, "reverse": 1, "successor": 0}[
            self.value
        ]


@dataclass(frozen=True)
class DependencyCause:
    """Why a dependency exists: the concrete action pair and fields.

    ``dst_action`` is ``None`` for MATCH causes (the consumer's match phase,
    not a specific action, reads the field).
    """

    kind: DependencyKind
    src_action: str
    dst_action: Optional[str]
    fields: FrozenSet[str]
    registers: FrozenSet[str] = frozenset()


@dataclass
class Dependency:
    """An edge of the TDG: ``src`` must precede ``dst``."""

    src: str
    dst: str
    kind: DependencyKind
    causes: Tuple[DependencyCause, ...]

    @property
    def min_stage_separation(self) -> int:
        return self.kind.min_stage_separation


class DependencyGraph:
    """The TDG plus the query API the compiler and optimizer use."""

    def __init__(self, program: Program, dependencies: Dict[Tuple[str, str], Dependency]):
        self.program = program
        self.dependencies = dependencies
        self.digraph: Digraph[str] = Digraph()
        for table in program.tables:
            self.digraph.add_node(table)
        for (src, dst), dep in dependencies.items():
            self.digraph.add_edge(src, dst, weight=dep.min_stage_separation)

    def edges(self) -> List[Dependency]:
        return list(self.dependencies.values())

    def between(self, src: str, dst: str) -> Optional[Dependency]:
        return self.dependencies.get((src, dst))

    def predecessors_of(self, table: str) -> List[Dependency]:
        return [d for d in self.dependencies.values() if d.dst == table]

    def longest_path(self) -> Tuple[int, List[str]]:
        return self.digraph.longest_path()

    def critical_dependencies(self) -> List[Dependency]:
        """Dependencies on some maximum-weight path — phase 2's candidate
        pool (§3.2: only those can shorten the pipeline)."""
        critical = self.digraph.critical_edges()
        return [
            dep
            for (src, dst), dep in self.dependencies.items()
            if (src, dst) in critical
        ]


def _actions_for_outcome(program: Program, table_name: str, hit: bool) -> Tuple[str, ...]:
    table = program.tables[table_name]
    if hit:
        return table.actions
    return (table.default_action,)


def build_dependency_graph(
    program: Program,
    control_graph: Optional[ControlGraph] = None,
    control=None,
) -> DependencyGraph:
    """Construct the TDG from feasible paths (plus structural successors).

    Analyzes the ingress by default; pass ``control=program.egress`` (or
    a prebuilt ``control_graph``) for the egress pipeline's TDG.
    """
    cg = (
        control_graph
        if control_graph is not None
        else ControlGraph(program, control)
    )
    causes: Dict[Tuple[str, str], Set[DependencyCause]] = {}

    def record(src: str, dst: str, cause: DependencyCause) -> None:
        causes.setdefault((src, dst), set()).add(cause)

    action_writes: Dict[str, FrozenSet[FieldRef]] = {}
    action_reads: Dict[str, FrozenSet[FieldRef]] = {}
    action_regs: Dict[str, FrozenSet[str]] = {}
    for name, action in program.actions.items():
        action_writes[name] = action.writes()
        action_reads[name] = action.reads()
        action_regs[name] = action.registers_read() | action.registers_written()

    for path in cg.paths:
        applies = path.apply_events()
        for ai in range(len(applies)):
            i, ev_a = applies[ai]
            a_actions = _actions_for_outcome(program, ev_a.table, ev_a.hit)
            for bi in range(ai + 1, len(applies)):
                j, ev_b = applies[bi]
                if ev_a.table == ev_b.table:
                    continue
                b_table = program.tables[ev_b.table]
                b_actions = _actions_for_outcome(
                    program, ev_b.table, ev_b.hit
                )
                # Fields B's match phase consumes: its keys plus any guard
                # condition evaluated after A on this path.
                match_reads: Set[FieldRef] = set(b_table.match_fields)
                for pos in ev_b.guard_positions:
                    if pos > i:
                        cond = path.events[pos]
                        assert isinstance(cond, CondEvent)
                        match_reads.update(cond.reads)
                a_table = program.tables[ev_a.table]
                a_match_reads = set(a_table.match_fields)
                for a_name in a_actions:
                    w_a = action_writes[a_name]
                    overlap_match = w_a & match_reads
                    if overlap_match:
                        record(
                            ev_a.table,
                            ev_b.table,
                            DependencyCause(
                                kind=DependencyKind.MATCH,
                                src_action=a_name,
                                dst_action=None,
                                fields=frozenset(
                                    f.path for f in overlap_match
                                ),
                            ),
                        )
                    for b_name in b_actions:
                        overlap_fields = w_a & (
                            action_writes[b_name] | action_reads[b_name]
                        )
                        overlap_regs = action_regs[a_name] & action_regs[b_name]
                        if overlap_fields or overlap_regs:
                            record(
                                ev_a.table,
                                ev_b.table,
                                DependencyCause(
                                    kind=DependencyKind.ACTION,
                                    src_action=a_name,
                                    dst_action=b_name,
                                    fields=frozenset(
                                        f.path for f in overlap_fields
                                    ),
                                    registers=frozenset(overlap_regs),
                                ),
                            )
                        # Anti-dependency: the later table writes what
                        # the earlier one matches on or reads; the writer
                        # must not land in an earlier stage.
                        overlap_anti = action_writes[b_name] & (
                            a_match_reads | action_reads[a_name]
                        )
                        if overlap_anti:
                            record(
                                ev_a.table,
                                ev_b.table,
                                DependencyCause(
                                    kind=DependencyKind.REVERSE,
                                    src_action=a_name,
                                    dst_action=b_name,
                                    fields=frozenset(
                                        f.path for f in overlap_anti
                                    ),
                                ),
                            )

    # Structural successor dependencies: applied inside a hit/miss branch.
    for apply_node in iter_applies(cg.control):
        for branch in (apply_node.on_hit, apply_node.on_miss):
            if branch is None:
                continue
            for inner in iter_applies(branch):
                key = (apply_node.table, inner.table)
                causes.setdefault(key, set()).add(
                    DependencyCause(
                        kind=DependencyKind.SUCCESSOR,
                        src_action="<apply>",
                        dst_action=None,
                        fields=frozenset(),
                    )
                )

    dependencies: Dict[Tuple[str, str], Dependency] = {}
    for (src, dst), cause_set in causes.items():
        dominant = max(cause_set, key=lambda c: c.kind.rank).kind
        ordered = tuple(
            sorted(
                cause_set,
                key=lambda c: (
                    -c.kind.rank,
                    c.src_action,
                    c.dst_action or "",
                    sorted(c.fields),
                ),
            )
        )
        dependencies[(src, dst)] = Dependency(
            src=src, dst=dst, kind=dominant, causes=ordered
        )
    return DependencyGraph(program, dependencies)


@dataclass(frozen=True)
class FigureEdge:
    """A display edge for dependency-graph figures (paper Fig. 1 style)."""

    src: str
    dst: str
    kind: str  # "action" (violet dash-dotted), "match" (blue dashed),
    #            "control" (black)


def figure_edges(program: Program) -> List[FigureEdge]:
    """Render the TDG the way Fig. 1 draws it.

    Conditions appear as their own nodes: a table writing a field a
    condition reads yields ``table -> cond`` (blue dashed in the paper), and
    the condition points at the tables it guards (black arrows).
    """
    graph = build_dependency_graph(program)
    edges: List[FigureEdge] = []
    seen: Set[Tuple[str, str, str]] = set()

    def emit(src: str, dst: str, kind: str) -> None:
        key = (src, dst, kind)
        if key not in seen:
            seen.add(key)
            edges.append(FigureEdge(src=src, dst=dst, kind=kind))

    # Condition nodes: guards that read table-written fields.
    cond_nodes: Dict[str, str] = {}
    cg = ControlGraph(program)
    for path in cg.paths:
        for i, ev in path.apply_events():
            for pos in ev.guard_positions:
                cond = path.events[pos]
                assert isinstance(cond, CondEvent)
                if not cond.reads:
                    continue  # validity guards are not data dependencies
                label = str(cond.expr)
                cond_nodes[label] = label
                emit(label, ev.table, "control")

    for dep in graph.edges():
        has_cond_route = False
        if dep.kind is DependencyKind.MATCH:
            # If the match dependency flows through a guarding condition,
            # draw src -> cond instead of src -> dst (Fig. 1 shows
            # Sketch_Min -> condition -> DNS_Drop).
            for path in cg.paths:
                for i, ev in path.apply_events():
                    if ev.table != dep.dst:
                        continue
                    for pos in ev.guard_positions:
                        cond = path.events[pos]
                        assert isinstance(cond, CondEvent)
                        reads = {f.path for f in cond.reads}
                        if any(
                            reads & cause.fields for cause in dep.causes
                        ):
                            emit(dep.src, str(cond.expr), "match")
                            has_cond_route = True
            if not has_cond_route:
                emit(dep.src, dep.dst, "match")
        elif dep.kind is DependencyKind.ACTION:
            emit(dep.src, dep.dst, "action")
        elif dep.kind is DependencyKind.REVERSE:
            emit(dep.src, dep.dst, "reverse")
        else:
            emit(dep.src, dep.dst, "control")
    return edges
