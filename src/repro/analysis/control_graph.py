"""Control-graph analysis: execution paths and static mutual exclusivity.

The compiler output the paper relies on includes "the control graph,
containing all possible execution paths packets may take through the
program" (§2.1).  This module enumerates those paths with *table outcomes*
(hit/miss) attached, filters out paths the parser makes impossible (e.g. a
packet that is simultaneously DNS and DHCP), and answers the exclusivity
queries dependency analysis and phase 2 need.

Paths are exponential in branch count, which is fine at the scale of real
pipeline programs (tens of tables); a safety cap guards against pathological
inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exceptions import ReproError
from repro.p4.control import Apply, ControlNode, If, Seq
from repro.p4.expressions import (
    Expr,
    FieldRef,
    LNot,
    ValidExpr,
    fields_read,
)
from repro.p4.program import Program

#: Hard cap on enumerated paths (programs here have < a dozen branches).
MAX_PATHS = 200_000


@dataclass(frozen=True)
class CondEvent:
    """A condition evaluated along a path."""

    expr: Expr
    taken: bool

    @property
    def reads(self) -> FrozenSet[FieldRef]:
        return fields_read(self.expr)


@dataclass(frozen=True)
class ApplyEvent:
    """A table applied along a path, with its outcome and active guards.

    ``guard_positions`` indexes this path's event list: the CondEvents whose
    branch encloses this apply.  Hit/miss context does not appear here; it
    is visible through preceding ApplyEvents.
    """

    table: str
    hit: bool
    guard_positions: Tuple[int, ...]


@dataclass
class ExecutionPath:
    """One feasible root-to-end traversal of the ingress control tree."""

    events: List[object] = dc_field(default_factory=list)
    validity: Dict[str, bool] = dc_field(default_factory=dict)

    def fork(self) -> "ExecutionPath":
        return ExecutionPath(
            events=list(self.events), validity=dict(self.validity)
        )

    def apply_events(self) -> List[Tuple[int, ApplyEvent]]:
        return [
            (i, e) for i, e in enumerate(self.events)
            if isinstance(e, ApplyEvent)
        ]

    def tables(self) -> List[str]:
        return [e.table for _i, e in self.apply_events()]


def _validity_literal(expr: Expr) -> Optional[Tuple[str, bool]]:
    """If ``expr`` is valid(h) or not valid(h), return (h, polarity)."""
    if isinstance(expr, ValidExpr):
        return (expr.header, True)
    if isinstance(expr, LNot) and isinstance(expr.operand, ValidExpr):
        return (expr.operand.header, False)
    return None


def _literals_when_true(expr: Expr) -> Tuple[Tuple[str, bool], ...]:
    """Validity facts implied by the expression evaluating to true.

    A conjunction implies every conjunct's facts (``not valid(udp) and
    ttl == 1`` implies udp is invalid); other shapes imply nothing
    beyond a bare literal.  Used on the taken branch only — the untaken
    branch of a conjunction implies nothing.
    """
    from repro.p4.expressions import LAnd

    literal = _validity_literal(expr)
    if literal is not None:
        return (literal,)
    if isinstance(expr, LAnd):
        return _literals_when_true(expr.left) + _literals_when_true(
            expr.right
        )
    return ()


class ControlGraph:
    """Enumerated, parser-feasible execution paths of one control
    pipeline (the ingress by default)."""

    def __init__(self, program: Program, control: Optional[ControlNode] = None):
        self.program = program
        self.control = control if control is not None else program.ingress
        self._valid_sets = (
            program.parser.valid_header_sets() if program.parser else []
        )
        self.paths: List[ExecutionPath] = []
        self._count = 0
        self._enumerate()

    # ------------------------------------------------------------------
    def _feasible(self, validity: Dict[str, bool]) -> bool:
        """Is this validity assignment producible by the parser?

        With no parser (fragment analysis) everything is feasible.
        """
        if not self._valid_sets:
            return True
        for header_set in self._valid_sets:
            if all(
                (header in header_set) == required
                for header, required in validity.items()
            ):
                return True
        return False

    def _enumerate(self) -> None:
        frontier = self._walk(self.control, ExecutionPath(), ())
        self.paths = [p for p in frontier if self._feasible(p.validity)]

    def _bump(self) -> None:
        self._count += 1
        if self._count > MAX_PATHS:
            raise ReproError(
                f"control graph exceeds {MAX_PATHS} paths; "
                "program too branchy for exhaustive analysis"
            )

    def _walk(
        self,
        node: ControlNode,
        path: ExecutionPath,
        guards: Tuple[int, ...],
    ) -> List[ExecutionPath]:
        """Extend one partial path through ``node``; returns completions.

        ``guards`` holds indices into *this path's* event list for the
        conditions currently enclosing the walk position.  Sequencing after
        a fork re-walks each completion independently, so indices stay
        consistent per path.
        """
        if isinstance(node, Seq):
            paths = [path]
            for child in node.nodes:
                next_paths: List[ExecutionPath] = []
                for p in paths:
                    next_paths.extend(self._walk(child, p, guards))
                paths = next_paths
            return paths
        if isinstance(node, If):
            literal = _validity_literal(node.condition)
            taken_literals = _literals_when_true(node.condition)
            out: List[ExecutionPath] = []
            for taken in (True, False):
                branch = path.fork()
                if taken and taken_literals:
                    contradiction = False
                    for header, required in taken_literals:
                        prior = branch.validity.get(header)
                        if prior is not None and prior != required:
                            contradiction = True
                            break
                        branch.validity[header] = required
                    if contradiction:
                        continue  # contradictory branch, prune
                elif not taken and literal is not None:
                    header, polarity = literal
                    required = not polarity
                    prior = branch.validity.get(header)
                    if prior is not None and prior != required:
                        continue  # contradictory branch, prune
                    branch.validity[header] = required
                branch.events.append(
                    CondEvent(expr=node.condition, taken=taken)
                )
                self._bump()
                cond_pos = len(branch.events) - 1
                if taken:
                    out.extend(
                        self._walk(
                            node.then_node, branch, guards + (cond_pos,)
                        )
                    )
                elif node.else_node is not None:
                    out.extend(
                        self._walk(
                            node.else_node, branch, guards + (cond_pos,)
                        )
                    )
                else:
                    out.append(branch)
            return out
        if isinstance(node, Apply):
            table = self.program.tables[node.table]
            # A keyless table can never hold entries, so it always misses.
            outcomes = (False,) if not table.keys else (True, False)
            out: List[ExecutionPath] = []
            for hit in outcomes:
                branch = path.fork()
                branch.events.append(
                    ApplyEvent(
                        table=node.table, hit=hit, guard_positions=guards
                    )
                )
                self._bump()
                if hit and node.on_hit is not None:
                    out.extend(self._walk(node.on_hit, branch, guards))
                elif not hit and node.on_miss is not None:
                    out.extend(self._walk(node.on_miss, branch, guards))
                else:
                    out.append(branch)
            return out
        raise ReproError(f"unknown control node {node!r}")

    # ------------------------------------------------------------------
    # Queries

    def may_coexecute(self, table_a: str, table_b: str) -> bool:
        """Can both tables be applied to the same packet?"""
        for path in self.paths:
            tables = set(path.tables())
            if table_a in tables and table_b in tables:
                return True
        return False

    def statically_exclusive(self, table_a: str, table_b: str) -> bool:
        """No feasible path applies both tables."""
        return not self.may_coexecute(table_a, table_b)

    def tables_reached(self) -> Set[str]:
        out: Set[str] = set()
        for path in self.paths:
            out.update(path.tables())
        return out

    def path_count(self) -> int:
        return len(self.paths)

    def table_pairs_in_order(self) -> Set[Tuple[str, str]]:
        """(A, B) pairs where A is applied before B on some feasible path."""
        out: Set[Tuple[str, str]] = set()
        for path in self.paths:
            tables = path.tables()
            for i, a in enumerate(tables):
                for b in tables[i + 1 :]:
                    out.add((a, b))
        return out
