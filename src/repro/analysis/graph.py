"""Generic directed-graph algorithms used by the analysis layer.

Small, dependency-free implementations over hashable node ids: topological
sort, cycle detection, and weighted longest paths in DAGs (the critical-path
computation behind phase 2's candidate selection, §3.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Hashable, List, Set, Tuple, TypeVar

from repro.exceptions import ReproError

N = TypeVar("N", bound=Hashable)


class CycleError(ReproError):
    """The graph unexpectedly contains a cycle."""


class Digraph(Generic[N]):
    """A directed graph with optional integer edge weights."""

    def __init__(self) -> None:
        self._succ: Dict[N, Dict[N, int]] = defaultdict(dict)
        self._pred: Dict[N, Set[N]] = defaultdict(set)
        self._nodes: Set[N] = set()

    # ------------------------------------------------------------------
    def add_node(self, node: N) -> None:
        self._nodes.add(node)

    def add_edge(self, src: N, dst: N, weight: int = 1) -> None:
        self._nodes.add(src)
        self._nodes.add(dst)
        existing = self._succ[src].get(dst)
        # Keep the heaviest parallel edge.
        if existing is None or weight > existing:
            self._succ[src][dst] = weight
        self._pred[dst].add(src)

    def nodes(self) -> Set[N]:
        return set(self._nodes)

    def edges(self) -> List[Tuple[N, N, int]]:
        return [
            (src, dst, w)
            for src, targets in self._succ.items()
            for dst, w in targets.items()
        ]

    def successors(self, node: N) -> Dict[N, int]:
        return dict(self._succ.get(node, {}))

    def predecessors(self, node: N) -> Set[N]:
        return set(self._pred.get(node, set()))

    def has_edge(self, src: N, dst: N) -> bool:
        return dst in self._succ.get(src, {})

    def weight(self, src: N, dst: N) -> int:
        try:
            return self._succ[src][dst]
        except KeyError:
            raise ReproError(f"no edge {src!r} -> {dst!r}") from None

    # ------------------------------------------------------------------
    def topological_order(self) -> List[N]:
        """Kahn's algorithm; raises CycleError on cycles."""
        indegree: Dict[N, int] = {n: 0 for n in self._nodes}
        for _src, dst, _w in self.edges():
            indegree[dst] += 1
        ready = sorted(
            (n for n, d in indegree.items() if d == 0), key=repr
        )
        order: List[N] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(self._succ.get(node, {}), key=repr):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._nodes):
            raise CycleError("graph contains a cycle")
        return order

    def longest_path_lengths(self) -> Dict[N, int]:
        """Longest weighted path *ending* at each node (DAG only)."""
        lengths: Dict[N, int] = {n: 0 for n in self._nodes}
        for node in self.topological_order():
            for succ, weight in self._succ.get(node, {}).items():
                candidate = lengths[node] + weight
                if candidate > lengths[succ]:
                    lengths[succ] = candidate
        return lengths

    def longest_path(self) -> Tuple[int, List[N]]:
        """(total weight, node sequence) of one maximal-weight path."""
        lengths = self.longest_path_lengths()
        if not lengths:
            return (0, [])
        end = max(lengths, key=lambda n: (lengths[n], repr(n)))
        path = [end]
        current = end
        while lengths[current] > 0:
            for pred in sorted(self._pred.get(current, set()), key=repr):
                weight = self._succ[pred].get(current)
                if weight is not None and lengths[pred] + weight == lengths[current]:
                    path.append(pred)
                    current = pred
                    break
            else:
                break
        path.reverse()
        return (lengths[end], path)

    def critical_edges(self) -> Set[Tuple[N, N]]:
        """Edges lying on at least one maximum-weight path.

        These are phase 2's removal candidates: only dependencies on the
        longest path can shorten the pipeline when removed (§3.2).
        """
        lengths = self.longest_path_lengths()
        if not lengths:
            return set()
        total = max(lengths.values())
        # Longest path *starting* at each node, computed on the reverse DAG.
        suffix: Dict[N, int] = {n: 0 for n in self._nodes}
        for node in reversed(self.topological_order()):
            for succ, weight in self._succ.get(node, {}).items():
                candidate = suffix[succ] + weight
                if candidate > suffix[node]:
                    suffix[node] = candidate
        critical: Set[Tuple[N, N]] = set()
        for src, dst, weight in self.edges():
            if lengths[src] + weight + suffix[dst] == total:
                critical.add((src, dst))
        return critical
