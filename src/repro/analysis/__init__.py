"""Static analysis: control graph, mutual exclusivity, dependency graph."""

from repro.analysis.control_graph import (
    ApplyEvent,
    CondEvent,
    ControlGraph,
    ExecutionPath,
)
from repro.analysis.dependencies import (
    Dependency,
    DependencyCause,
    DependencyGraph,
    DependencyKind,
    FigureEdge,
    build_dependency_graph,
    figure_edges,
)
from repro.analysis.graph import CycleError, Digraph

__all__ = [
    "ApplyEvent",
    "CondEvent",
    "ControlGraph",
    "CycleError",
    "Dependency",
    "DependencyCause",
    "DependencyGraph",
    "DependencyKind",
    "Digraph",
    "ExecutionPath",
    "FigureEdge",
    "build_dependency_graph",
    "figure_edges",
]
